"""Walkthrough of the paper's Fig. 1 and §3.1 examples.

Shows phase symbolization at work: Pauli faults accumulate as symbolic
expressions in the stabilizer phases, and measurement outcomes become
GF(2) expressions over the fault symbols.

Run:  python examples/fig1_walkthrough.py
"""

import numpy as np

from repro import Circuit, SymPhaseSimulator


def show_tableau(sim: SymPhaseSimulator, title: str) -> None:
    print(f"\n{title}")
    n = sim.n
    for i in range(n):
        row = n + i  # stabilizer half
        pauli = "".join(
            "IXZY"[int(x) + 2 * int(z)]
            for x, z in zip(sim.xs[row], sim.zs[row])
        )
        support = sim.phases.row_support(row)
        phase = " ^ ".join(sim.symbols.label(int(s)) for s in support) or "0"
        print(f"  (-1)^({phase})  {pauli}")


# --- Fig. 1: GHZ preparation with one Z fault and three X faults ---------
print("=" * 64)
print("Fig. 1: faults accumulate in stabilizer phases")
print("=" * 64)

prep = Circuit.from_text("""
    H 0
    CNOT 0 1
    CNOT 1 2
    CNOT 2 3
""")
sim = SymPhaseSimulator.from_circuit(prep)
show_tableau(sim, "|psi1> after GHZ preparation (no faults yet):")

faults = Circuit.from_text("""
    Z_ERROR(0.5) 0
    X_ERROR(0.5) 1
    X_ERROR(0.5) 2
    X_ERROR(0.5) 3
""")
sim.run(faults)
show_tableau(sim, "|psi2> after Z^s1 X^s2 X^s3 X^s4 (paper's phase table):")

# --- §3.1: the 2-qubit worked example ------------------------------------
print()
print("=" * 64)
print("§3.1: measurement outcomes as symbolic expressions")
print("=" * 64)

circuit = Circuit.from_text("""
    H 0
    CNOT 0 1
    X_ERROR(0.5) 0
    X_ERROR(0.5) 1
    M 0 1
""")
sim = SymPhaseSimulator.from_circuit(circuit)
print("\ncircuit:")
print("  |0> -H-.--X^s1--M   ")
print("  |0> ---X--X^s2--M   ")
print("\nsymbolic outcomes (s3 is the collapse coin of the first M):")
for k in range(sim.num_measurements):
    print(f"  m{k + 1} = {sim.measurement_expression(k)}")

print("\nsubstituting concrete fault values reproduces concrete runs:")
from repro.core import concrete_replay, substituted_record

for s1 in (0, 1):
    for s2 in (0, 1):
        assignment = np.array([1, s1, s2, 0], dtype=np.uint8)  # coin = 0
        symbolic = substituted_record(sim, assignment)
        concrete = concrete_replay(circuit, sim, assignment)
        status = "ok" if np.array_equal(symbolic, concrete) else "MISMATCH"
        print(f"  s1={s1} s2={s2} coin=0 ->  m = {symbolic}   [{status}]")
