"""Dynamic circuits: classically-controlled Paulis under symbolization.

The paper's §6 observes that symbolic measurement expressions make
feed-forward natural: a conditional Pauli ``X^e`` just XORs the whole
expression ``e`` into the anticommuting phases.  This example runs
quantum teleportation — whose correction step is feed-forward — and
shows (a) the teleported qubit arrives exactly, (b) the symbolic
expressions of the Bell measurement, and (c) an entanglement-swapping
chain teleporting through several hops in one compiled sampler.

Run:  python examples/dynamic_circuits.py
"""

from repro import Circuit, SymPhaseSimulator
from repro.circuit import RecTarget

# ------------------------------------------------------------ teleport --
teleport = Circuit.from_text("""
    # prepare |-> on qubit 0 (the state to teleport)
    X 0
    H 0
    # Bell pair on qubits 1, 2
    H 1
    CX 1 2
    # Bell measurement of 0 and 1
    CX 0 1
    H 0
    M 0 1
    # feed-forward corrections onto qubit 2
    CX rec[-1] 2
    CZ rec[-2] 2
    # verify: |-> must read 1 in the X basis
    MX 2
""")

sim = SymPhaseSimulator.from_circuit(teleport)
print("teleportation — symbolic measurement expressions:")
for k in range(sim.num_measurements):
    print(f"  m{k} = {sim.measurement_expression(k)}")

records = teleport.compile().sample(5000, 0)
print(f"\nBell outcomes uniform:   {records[:, 0].mean():.3f}, "
      f"{records[:, 1].mean():.3f}")
print(f"teleported |-> reads 1:  {records[:, 2].mean():.3f}  (exact)")
assert records[:, 2].all()

# ------------------------------------------------- entanglement swapping --
# A 3-hop repeater: teleport one half of a Bell pair down a chain, with
# feed-forward at every station, then check the end-to-end correlation.
hops = 3
chain = Circuit()
chain.h(0)
chain.cx(0, 1)
for hop in range(hops):
    a = 2 * hop + 1      # qubit holding the travelling half
    b = a + 1            # new Bell pair (b, b+1)
    chain.h(b)
    chain.cx(b, b + 1)
    chain.cx(a, b)
    chain.h(a)
    chain.m(a, b)
    chain.append("CX", [RecTarget(-1), b + 1])
    chain.append("CZ", [RecTarget(-2), b + 1])
end = 2 * hops + 1
chain.m(0, end)

records = chain.compile().sample(5000, 1)
anchor, far = records[:, -2], records[:, -1]
print(f"\nentanglement swapping over {hops} stations "
      f"({chain.n_qubits} qubits, {chain.num_measurements} measurements):")
print(f"  end-to-end agreement: {(anchor == far).mean():.3f}  "
      "(1.000 = perfect Bell correlation survived every hop)")
assert (anchor == far).all()
