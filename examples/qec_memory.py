"""QEC memory experiments: the workload the paper's introduction motivates.

Samples repetition-code and surface-code memory circuits at several noise
strengths, showing (a) mid-circuit detector rates, (b) decoded logical
error rates for the repetition code (majority vote), and (c) that one
compiled sampler serves every batch without re-traversing the circuit.

Run:  python examples/qec_memory.py
"""

import numpy as np

from repro.qec import repetition_code_memory, surface_code_memory

SHOTS = 20_000
rng = np.random.default_rng(0)

# ------------------------------------------------ repetition code sweep --
# Any registered backend serves this loop unchanged — swap "frame" for
# "symbolic" (or "tableau" at tiny sizes) to trade compile/sampling cost.
print("repetition code memory: majority-vote logical error rate")
print(f"{'p':>8} {'d=3':>10} {'d=5':>10} {'d=7':>10}")
for p in (0.01, 0.03, 0.05, 0.10):
    row = []
    for d in (3, 5, 7):
        circuit = repetition_code_memory(
            d, rounds=3, data_flip_probability=p
        )
        records = circuit.compile(sampler="frame").sample(SHOTS, rng)
        data = records[:, -d:]  # final transversal data readout
        logical = (data.sum(axis=1) > d // 2).astype(np.uint8)
        row.append(logical.mean())
    print(f"{p:>8} {row[0]:>10.4f} {row[1]:>10.4f} {row[2]:>10.4f}")
print("(higher distance suppresses the logical error rate below threshold)")

# ------------------------------------------------- surface code detectors --
print("\nsurface code memory: detector fire rate and sampler stats")
print(f"{'d':>4} {'rounds':>7} {'symbols':>8} {'avg|m|':>7} "
      f"{'strategy':>9} {'det rate':>9}")
for d in (3, 5):
    circuit = surface_code_memory(
        d, rounds=d,
        after_clifford_depolarization=0.005,
        before_measure_flip_probability=0.005,
    )
    compiled = circuit.compile()  # symbolic backend by default
    sampler = compiled.sampler
    detectors, observables = compiled.detect(SHOTS, rng)
    print(f"{d:>4} {d:>7} {sampler.symbols.n_symbols:>8} "
          f"{sampler.average_support():>7.1f} "
          f"{sampler.choose_strategy():>9} {detectors.mean():>9.4f}")

print("\nNote the small average measurement support |m|: QEC circuits are")
print("the sparse regime where Table 1's O(n_smp * n_m) sampling applies.")
