"""Quickstart: build a noisy stabilizer circuit, compile it once, sample many.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Circuit, FrameSimulator, SymPhaseSimulator, CompiledSampler

# ---------------------------------------------------------------- build --
# Circuits can be built programmatically ...
circuit = (
    Circuit()
    .h(0)
    .cx(0, 1)
    .depolarize1(0.05, 0, 1)
    .m(0, 1)
)

# ... or parsed from Stim-dialect text.
same_circuit = Circuit.from_text("""
    H 0
    CNOT 0 1
    DEPOLARIZE1(0.05) 0 1
    M 0 1
""")
assert circuit == same_circuit
print(f"circuit: {circuit!r}")

# ----------------------------------------------------------- symbolize --
# One forward traversal turns every measurement into a symbolic
# expression over fault symbols and measurement coins (Algorithm 1).
simulator = SymPhaseSimulator.from_circuit(circuit)
for k in range(simulator.num_measurements):
    print(f"  m{k} = {simulator.measurement_expression(k)}")

# -------------------------------------------------------------- sample --
# Sampling is a GF(2) matrix product — the circuit is never re-traversed.
sampler = CompiledSampler(simulator)
rng = np.random.default_rng(0)
records = sampler.sample(100_000, rng)
print(f"sampled {records.shape[0]} shots of {records.shape[1]} bits")
print(f"  marginals:            {records.mean(axis=0)}")
print(f"  Bell-pair mismatch:   {(records[:, 0] ^ records[:, 1]).mean():.4f}"
      "  (theory: 2*(2*0.05/3 + ...) ~ 0.0644)")

# ------------------------------------------------------------ baseline --
# The Pauli-frame baseline (Stim's algorithm) agrees; its circuit is
# lowered once into a fused vectorized op list and replayed per batch.
frame = FrameSimulator(circuit)
frame_records = frame.sample(100_000, rng)
print(f"  frame-baseline mismatch rate: "
      f"{(frame_records[:, 0] ^ frame_records[:, 1]).mean():.4f}")

# ------------------------------------------------------------ backends --
# Every sampler lives behind one protocol: compile(circuit) -> sampler,
# selected by name.  `frame` and `frame-interp` share an RNG stream, so
# their samples are bitwise identical for the same seed.
from repro.backends import available_backends, compile_backend

print(f"registered backends: {', '.join(available_backends())}")
a = compile_backend(circuit, "frame").sample(256, np.random.default_rng(7))
b = compile_backend(circuit, "frame-interp").sample(
    256, np.random.default_rng(7)
)
assert np.array_equal(a, b)
print("frame == frame-interp (bitwise):", bool(np.array_equal(a, b)))
