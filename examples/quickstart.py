"""Quickstart: build a circuit, compile it once, sample / decode / sweep.

The whole public API in one sitting:

1. ``Circuit`` — build programmatically or parse Stim-dialect text.
2. ``circuit.compile(sampler=..., decoder=...)`` — one handle whose
   backend sampler, detector error model and decoder are built lazily
   and cached by circuit fingerprint.
3. ``Sweep(...).collect(ExecutionOptions(...))`` — a declarative grid
   of (code, distance, noise) points run through the parallel
   collection engine into a typed result table.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Circuit, ExecutionOptions, Sweep

# ---------------------------------------------------------------- build --
# Circuits can be built programmatically ...
circuit = (
    Circuit()
    .h(0)
    .cx(0, 1)
    .depolarize1(0.05, 0, 1)
    .m(0, 1)
)

# ... or parsed from Stim-dialect text.
same_circuit = Circuit.from_text("""
    H 0
    CNOT 0 1
    DEPOLARIZE1(0.05) 0 1
    M 0 1
""")
assert circuit == same_circuit
print(f"circuit: {circuit!r}")

# -------------------------------------------------------------- compile --
# One handle, compiled once: the default sampler is the paper's
# symbolic Algorithm 1 (analysis once, sampling is a GF(2) matmul).
compiled = circuit.compile()
records = compiled.sample(100_000, 0)  # int seed, Generator, or None
print(f"sampled {records.shape[0]} shots of {records.shape[1]} bits")
print(f"  marginals:            {records.mean(axis=0)}")
print(f"  Bell-pair mismatch:   {(records[:, 0] ^ records[:, 1]).mean():.4f}"
      "  (theory: 2*(2*0.05/3 + ...) ~ 0.0644)")

# Swapping the backend is one keyword; `frame` and `frame-interp`
# share an RNG stream, so their samples are bitwise identical.
a = circuit.compile(sampler="frame").sample(256, np.random.default_rng(7))
b = circuit.compile(sampler="frame-interp").sample(
    256, np.random.default_rng(7)
)
assert np.array_equal(a, b)
print("frame == frame-interp (bitwise):", bool(np.array_equal(a, b)))

# ------------------------------------------------------ sample -> decode --
# A QEC memory circuit: the same handle carries the decoder choice.
# `.detect()` samples detectors, `.decode()` also runs the compiled
# decoder, `.logical_error_rate()` scores the whole loop through the
# collection engine (identical counts to a `Sweep` over the same seed).
from repro.qec import repetition_code_memory

memory = repetition_code_memory(
    5, rounds=3, data_flip_probability=0.05, measure_flip_probability=0.05
).compile(sampler="frame", decoder="compiled-matching")
detectors, observables = memory.detect(4_000, 0)
print(f"\nd=5 repetition memory: detector fire rate "
      f"{detectors.mean():.4f} over {detectors.shape[1]} detectors")
print(f"  logical error rate:   "
      f"{memory.logical_error_rate(4_000, seed=0):.4f}  (MWPM-decoded)")

# --------------------------------------------------------------- sweep --
# The same pipeline as a declarative grid: each (code, distance, p)
# point becomes an engine task with derived per-chunk seeds, so counts
# are independent of worker scheduling and resumable via a store.
result = Sweep(
    codes="repetition",
    distances=(3, 5),
    probabilities=(0.02, 0.08),
    rounds=3,
    max_shots=2_000,
).collect(ExecutionOptions(base_seed=0))

print("\nrepetition-code sweep (compiled-matching decoder):")
print(result.table())
print("\nfiltering is typed, not dict-plumbing: "
      f"d=5 rows -> {[f'{s.error_rate:.4f}' for s in result.by(distance=5)]}")
