"""Fault analysis: reading the fault-to-detector map off the symbolic
expressions — no extra simulation needed.

Phase symbolization makes every measurement (and detector) an explicit
GF(2) expression over fault symbols, so questions like "which faults does
this detector see?" and "which faults are *undetectable* but corrupt the
logical observable?" reduce to reading bit-vectors.

Run:  python examples/fault_analysis.py
"""

import numpy as np

from repro.core import CompiledSampler, SymPhaseSimulator
from repro.gf2 import bitops
from repro.qec import repetition_code_memory

circuit = repetition_code_memory(
    3, rounds=2, data_flip_probability=0.01, measure_flip_probability=0.01
)
simulator = SymPhaseSimulator.from_circuit(circuit)
sampler = CompiledSampler(simulator)

width = simulator.symbols.width
detector_bits = bitops.unpack_rows(sampler.detector_matrix, width)
observable_bits = bitops.unpack_rows(sampler.observable_matrix, width)

noise_symbols = simulator.symbols.noise_symbol_indices()
print(f"{len(noise_symbols)} fault symbols, "
      f"{sampler.n_detectors} detectors, "
      f"{sampler.n_observables} observable(s)\n")

# ------------------------------------------ per-fault detector signature --
print("fault symbol -> detectors it flips -> flips observable?")
for symbol in noise_symbols:
    hit_detectors = np.nonzero(detector_bits[:, symbol])[0]
    hits_observable = bool(observable_bits[:, symbol].any())
    label = simulator.symbols.label(int(symbol))
    detector_list = ",".join(f"D{d}" for d in hit_detectors) or "-"
    flag = " <-- LOGICAL" if hits_observable and not len(hit_detectors) else ""
    print(f"  {label:<12} -> {detector_list:<16} obs={hits_observable}{flag}")

# --------------------------------------------------- undetectable faults --
undetectable = [
    int(s) for s in noise_symbols
    if not detector_bits[:, s].any() and observable_bits[:, s].any()
]
print(f"\nsingle faults that corrupt the observable silently: "
      f"{len(undetectable)}")
print("(a distance-3 code has none; only multi-fault combinations can)")

# ------------------------------------------- minimum logical fault weight --
# Brute-force small fault sets to find the code distance certificate.
from itertools import combinations

def is_silent_logical(symbols):
    det = np.zeros(sampler.n_detectors, dtype=np.uint8)
    obs = np.zeros(sampler.n_observables, dtype=np.uint8)
    for s in symbols:
        det ^= detector_bits[:, s]
        obs ^= observable_bits[:, s]
    return not det.any() and obs.any()

found = None
for weight in (1, 2, 3):
    for combo in combinations(noise_symbols.tolist(), weight):
        if is_silent_logical(combo):
            found = combo
            break
    if found:
        break

labels = [simulator.symbols.label(s) for s in (found or ())]
print(f"minimum-weight silent logical fault set: {labels} "
      f"(weight {len(labels)}) — matches the code distance 3"
      if found else "no silent logical fault up to weight 3")
