"""Closing the loop the paper motivates: sample millions of syndromes
fast, decode them, estimate logical error rates.

The detector error model is extracted straight from the symbolic phases
(no Monte-Carlo probing), then decoded with minimum-weight perfect
matching.  The repetition-code sweep exhibits the textbook threshold
behaviour: below threshold, higher distance exponentially suppresses the
logical error rate; above it, higher distance hurts.

Both sweeps run through :mod:`repro.engine` — each (distance, p) point
is a declarative Task, the engine compiles each circuit once, chunks the
shot budget with derived per-chunk seeds, and reports Wilson-interval
logical error rates.  Set ``WORKERS`` > 1 to fan chunks out across
processes; the counts are bitwise identical either way.

Decoders are picked by registry name, exactly like sampler backends:
``decoder="compiled-matching"`` is MWPM lowered once into flat arrays
(all-pairs shortest paths precomputed), whose predictions are bitwise
identical to the per-shot ``"matching"`` reference — so swapping one
for the other changes wall time, never the counts.

Run:  python examples/decoding_threshold.py
"""

from repro.engine import Task, collect
from repro.qec import repetition_code_memory, surface_code_memory

SHOTS = 4000
SEED = 0
WORKERS = 1  # any value yields the same counts (derived chunk seeds)

rep_tasks = [
    Task(
        repetition_code_memory(
            d, rounds=3,
            data_flip_probability=p,
            measure_flip_probability=p,
        ),
        decoder="compiled-matching",
        max_shots=SHOTS,
        metadata={"d": d, "p": p},
    )
    for p in (0.02, 0.05, 0.10, 0.20, 0.35)
    for d in (3, 5, 7)
]
rep_stats = collect(rep_tasks, base_seed=SEED, workers=WORKERS)
rates = {
    (s.metadata["d"], s.metadata["p"]): s.error_rate for s in rep_stats
}

print("repetition code, MWPM decoding, logical error rate")
print(f"{'p':>7} | " + " ".join(f"{'d=' + str(d):>9}" for d in (3, 5, 7)))
print("-" * 42)
for p in (0.02, 0.05, 0.10, 0.20, 0.35):
    row = [rates[(d, p)] for d in (3, 5, 7)]
    marker = "  <- crossover region" if 0.3 < row[0] < 0.6 else ""
    print(f"{p:>7} | " + " ".join(f"{r:>9.4f}" for r in row) + marker)

print("""
Below threshold the columns decrease left to right (distance helps);
near p ~ 0.35 the ordering inverts — the code stops helping.
""")

# Tasks select their sampler backend by registry name; the compiled
# frame program is the batch-throughput workhorse for wide, shallow
# surface-code rounds (`sampler="symbolic"` wins on deep circuits).
surface_tasks = [
    Task(
        surface_code_memory(
            3, rounds=3,
            after_clifford_depolarization=p,
            before_measure_flip_probability=p,
        ),
        decoder="compiled-matching",
        sampler="frame",
        max_shots=SHOTS,
        metadata={"p": p},
    )
    for p in (0.001, 0.003, 0.01)
]
surface_stats = collect(surface_tasks, base_seed=SEED, workers=WORKERS)

print("surface code d=3, circuit-level depolarizing noise")
print(f"{'p':>8} {'LER (MWPM)':>11} {'wilson 95% CI':>24}")
for stats in surface_stats:
    low, high = stats.wilson()
    print(f"{stats.metadata['p']:>8} {stats.error_rate:>11.4f} "
          f"[{low:.4f}, {high:.4f}]")

print("\n(The surface-code DEM has hyperedge mechanisms from DEPOLARIZE2;")
print("MWPM decodes its graphlike restriction, the standard practice.)")
