"""Closing the loop the paper motivates: sample millions of syndromes
fast, decode them, estimate logical error rates.

The detector error model is extracted straight from the symbolic phases
(no Monte-Carlo probing), then decoded with minimum-weight perfect
matching.  The repetition-code sweep exhibits the textbook threshold
behaviour: below threshold, higher distance exponentially suppresses the
logical error rate; above it, higher distance hurts.

Run:  python examples/decoding_threshold.py
"""

import numpy as np

from repro.decoders import MatchingDecoder, logical_error_rate
from repro.dem import extract_dem
from repro.qec import repetition_code_memory, surface_code_memory

SHOTS = 4000
rng_seed = 0

print("repetition code, MWPM decoding, logical error rate")
print(f"{'p':>7} | " + " ".join(f"{'d=' + str(d):>9}" for d in (3, 5, 7)))
print("-" * 42)
for p in (0.02, 0.05, 0.10, 0.20, 0.35):
    rates = []
    for d in (3, 5, 7):
        circuit = repetition_code_memory(
            d, rounds=3,
            data_flip_probability=p,
            measure_flip_probability=p,
        )
        decoder = MatchingDecoder(extract_dem(circuit))
        rate = logical_error_rate(
            circuit, decoder, SHOTS, np.random.default_rng(rng_seed)
        )
        rates.append(rate)
    marker = "  <- crossover region" if 0.3 < rates[0] < 0.6 else ""
    print(f"{p:>7} | " + " ".join(f"{r:>9.4f}" for r in rates) + marker)

print("""
Below threshold the columns decrease left to right (distance helps);
near p ~ 0.35 the ordering inverts — the code stops helping.
""")

print("surface code d=3, circuit-level depolarizing noise")
print(f"{'p':>8} {'detector rate':>14} {'LER (MWPM)':>11}")
for p in (0.001, 0.003, 0.01):
    circuit = surface_code_memory(
        3, rounds=3,
        after_clifford_depolarization=p,
        before_measure_flip_probability=p,
    )
    dem = extract_dem(circuit)
    decoder = MatchingDecoder(dem)
    from repro.core import compile_sampler

    sampler = compile_sampler(circuit)
    detectors, observables = sampler.sample_detectors(
        SHOTS, np.random.default_rng(rng_seed)
    )
    predictions = decoder.decode_batch(detectors)
    failures = (predictions != observables).any(axis=1).mean()
    print(f"{p:>8} {detectors.mean():>14.4f} {failures:>11.4f}")

print("\n(The surface-code DEM has hyperedge mechanisms from DEPOLARIZE2;")
print("MWPM decodes its graphlike restriction, the standard practice.)")
