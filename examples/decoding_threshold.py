"""Closing the loop the paper motivates: sample millions of syndromes
fast, decode them, estimate logical error rates — and read the
threshold off the curves.

The detector error model is extracted straight from the symbolic phases
(no Monte-Carlo probing), then decoded with minimum-weight perfect
matching.  The repetition-code sweep exhibits the textbook threshold
behaviour: below threshold, higher distance exponentially suppresses the
logical error rate; above it, higher distance hurts.

Both sweeps are declarative :class:`repro.study.Sweep` grids — each
(distance, p) point becomes an engine task, the engine compiles each
circuit once, chunks the shot budget with derived per-chunk seeds, and
reports Wilson-interval logical error rates.  Set ``--workers`` > 1 to
fan chunks out across processes; the counts are bitwise identical
either way.  ``SweepResult.threshold_estimate()`` then locates where
the lowest- and highest-distance curves cross.

Run:  python examples/decoding_threshold.py [--fast] [--workers N]
"""

import argparse

from repro.study import ExecutionOptions, Sweep

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument(
    "--fast", action="store_true",
    help="CI-sized budgets (fewer shots per point)",
)
parser.add_argument("--workers", type=int, default=1)
parser.add_argument("--seed", type=int, default=0)
args = parser.parse_args()

SHOTS = 800 if args.fast else 4000
options = ExecutionOptions(base_seed=args.seed, workers=args.workers)

# ------------------------------------------------- repetition-code sweep --
REP_PROBABILITIES = (0.02, 0.05, 0.10, 0.20, 0.35)
REP_DISTANCES = (3, 5, 7)
rep_result = Sweep(
    codes="repetition",
    distances=REP_DISTANCES,
    probabilities=REP_PROBABILITIES,
    rounds=3,
    decoders="compiled-matching",
    max_shots=SHOTS,
).collect(options)

rates = {
    (s.metadata["distance"], s.metadata["p"]): s.error_rate
    for s in rep_result
}

print("repetition code, MWPM decoding, logical error rate")
print(f"{'p':>7} | "
      + " ".join(f"{'d=' + str(d):>9}" for d in REP_DISTANCES))
print("-" * 42)
for p in REP_PROBABILITIES:
    row = [rates[(d, p)] for d in REP_DISTANCES]
    marker = "  <- crossover region" if 0.3 < row[0] < 0.6 else ""
    print(f"{p:>7} | " + " ".join(f"{r:>9.4f}" for r in row) + marker)

estimate = rep_result.threshold_estimate()
if estimate is not None:
    print(f"\nthreshold estimate (d=3 x d=7 curve crossing): "
          f"p ~ {estimate:.3f}")

print("""
Below threshold the columns decrease left to right (distance helps);
near p ~ 0.35 the ordering inverts — the code stops helping.
""")

# --------------------------------------------------- surface-code sweep --
# Tasks select their sampler backend by registry name; the compiled
# frame program is the batch-throughput workhorse for wide, shallow
# surface-code rounds (`samplers="symbolic"` wins on deep circuits).
surface_result = Sweep(
    codes="surface",
    distances=3,
    probabilities=(0.001, 0.003, 0.01),
    rounds=3,
    decoders="compiled-matching",
    samplers="frame",
    max_shots=SHOTS,
).collect(options)

print("surface code d=3, circuit-level depolarizing noise")
print(f"{'p':>8} {'LER (MWPM)':>11} {'wilson 95% CI':>24}")
for stats in surface_result:
    low, high = stats.wilson()
    print(f"{stats.metadata['p']:>8} {stats.error_rate:>11.4f} "
          f"[{low:.4f}, {high:.4f}]")

print("\n(The surface-code DEM has hyperedge mechanisms from DEPOLARIZE2;")
print("MWPM decodes its graphlike restriction, the standard practice.)")
