"""Shim for legacy editable installs (environments without the wheel package)."""

from setuptools import setup

setup()
