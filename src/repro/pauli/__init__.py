"""Pauli-string algebra.

:class:`PauliString` is the exact, phase-tracked algebra used to derive
Clifford conjugation tables and to express noise channels;
:mod:`repro.pauli.dense` converts to dense matrices for numerical
validation.
"""

from repro.pauli.dense import PAULI_MATRICES, dense_pauli
from repro.pauli.pauli_string import PauliString

__all__ = ["PauliString", "dense_pauli", "PAULI_MATRICES"]
