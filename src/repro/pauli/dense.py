"""Dense (2^n x 2^n) matrices for Pauli strings.

Only used at import time (deriving gate conjugation tables) and in tests;
never on the hot simulation path.
"""

from __future__ import annotations

import numpy as np

from repro.pauli.pauli_string import PauliString

PAULI_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def dense_pauli(pauli: PauliString) -> np.ndarray:
    """Dense matrix of a Pauli string, including its exact phase."""
    out = np.array([[1]], dtype=complex)
    x_mat, z_mat = PAULI_MATRICES["X"], PAULI_MATRICES["Z"]
    for x, z in zip(pauli.xs, pauli.zs):
        factor = np.eye(2, dtype=complex)
        if x:
            factor = factor @ x_mat
        if z:
            factor = factor @ z_mat
        out = np.kron(out, factor)
    return (1j ** pauli.phase_exponent) * out
