"""Phase-exact Pauli strings.

A Pauli string is stored as ``i^k * X^{x} Z^{z}`` with per-qubit bits
``x``, ``z`` and a global phase exponent ``k`` mod 4.  In this
convention ``Y = i * X Z`` (so a Y has ``x = z = 1`` and contributes one
unit to ``k`` when written from the {I,X,Y,Z} alphabet).

The tableau algorithms only ever hold *Hermitian* Pauli strings (real
sign ±1); :attr:`PauliString.sign_bit` converts the internal exponent to
the tableau's phase bit and raises if the string is not Hermitian.
"""

from __future__ import annotations

import numpy as np

_CHAR_TO_XZ = {"I": (0, 0), "_": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}
_XZ_TO_CHAR = {(0, 0): "_", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}
_PHASE_STR = {0: "+", 1: "+i", 2: "-", 3: "-i"}


class PauliString:
    """An n-qubit Pauli string with exact phase tracking."""

    __slots__ = ("xs", "zs", "phase_exponent")

    def __init__(self, xs: np.ndarray, zs: np.ndarray, phase_exponent: int = 0):
        self.xs = np.asarray(xs, dtype=np.uint8) & 1
        self.zs = np.asarray(zs, dtype=np.uint8) & 1
        if self.xs.shape != self.zs.shape or self.xs.ndim != 1:
            raise ValueError("xs and zs must be 1-D arrays of equal length")
        self.phase_exponent = phase_exponent % 4

    # -- construction ----------------------------------------------------

    @classmethod
    def identity(cls, n_qubits: int) -> "PauliString":
        """The identity string on ``n_qubits`` qubits."""
        zeros = np.zeros(n_qubits, dtype=np.uint8)
        return cls(zeros, zeros.copy())

    @classmethod
    def from_str(cls, text: str) -> "PauliString":
        """Parse strings like ``"+XYZ_"``, ``"-ZZ"``, ``"iY"``."""
        phase = 0
        body = text.strip()
        if body.startswith("+"):
            body = body[1:]
        elif body.startswith("-"):
            phase = 2
            body = body[1:]
        if body.startswith("i"):
            phase += 1
            body = body[1:]
        xs, zs = [], []
        extra_phase = 0
        for ch in body:
            if ch.upper() not in _CHAR_TO_XZ:
                raise ValueError(f"invalid Pauli character {ch!r} in {text!r}")
            x, z = _CHAR_TO_XZ[ch.upper()]
            xs.append(x)
            zs.append(z)
            extra_phase += x & z  # Y = i * XZ contributes one i.
        return cls(np.array(xs or [0][:0], dtype=np.uint8),
                   np.array(zs or [0][:0], dtype=np.uint8),
                   phase + extra_phase)

    @classmethod
    def single(cls, n_qubits: int, qubit: int, kind: str) -> "PauliString":
        """A single-qubit X/Y/Z on ``qubit``, identity elsewhere."""
        p = cls.identity(n_qubits)
        x, z = _CHAR_TO_XZ[kind.upper()]
        p.xs[qubit] = x
        p.zs[qubit] = z
        p.phase_exponent = x & z
        return p

    # -- basic queries -----------------------------------------------------

    @property
    def n_qubits(self) -> int:
        return self.xs.size

    @property
    def weight(self) -> int:
        """Number of non-identity tensor factors."""
        return int(np.count_nonzero(self.xs | self.zs))

    @property
    def is_hermitian(self) -> bool:
        """True when the overall sign is real (±1 in the {I,X,Y,Z} alphabet)."""
        y_count = int(np.count_nonzero(self.xs & self.zs))
        return (self.phase_exponent - y_count) % 2 == 0

    @property
    def sign_bit(self) -> int:
        """Tableau phase bit: 0 for ``+P``, 1 for ``-P`` (P in {I,X,Y,Z}^n)."""
        y_count = int(np.count_nonzero(self.xs & self.zs))
        k = (self.phase_exponent - y_count) % 4
        if k % 2:
            raise ValueError(f"{self!r} is not Hermitian")
        return k // 2

    def commutes_with(self, other: "PauliString") -> bool:
        """True when the two strings commute (symplectic product is 0)."""
        if self.n_qubits != other.n_qubits:
            raise ValueError("qubit counts differ")
        cross = (self.xs & other.zs).sum() + (self.zs & other.xs).sum()
        return int(cross) % 2 == 0

    # -- algebra ----------------------------------------------------------

    def __mul__(self, other: "PauliString") -> "PauliString":
        if self.n_qubits != other.n_qubits:
            raise ValueError("qubit counts differ")
        # Moving other's X block through self's Z block: (-1)^{z1 . x2}.
        anti = int((self.zs & other.xs).sum())
        return PauliString(
            self.xs ^ other.xs,
            self.zs ^ other.zs,
            self.phase_exponent + other.phase_exponent + 2 * anti,
        )

    def inverse(self) -> "PauliString":
        """Group inverse (equals the adjoint for unitary Paulis)."""
        anti = int((self.zs & self.xs).sum())
        return PauliString(self.xs, self.zs, -self.phase_exponent + 2 * anti)

    def tensor(self, other: "PauliString") -> "PauliString":
        """Tensor product ``self (x) other``."""
        return PauliString(
            np.concatenate([self.xs, other.xs]),
            np.concatenate([self.zs, other.zs]),
            self.phase_exponent + other.phase_exponent,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return (
            self.phase_exponent == other.phase_exponent
            and np.array_equal(self.xs, other.xs)
            and np.array_equal(self.zs, other.zs)
        )

    def __hash__(self) -> int:
        return hash((self.phase_exponent, self.xs.tobytes(), self.zs.tobytes()))

    # -- formatting ---------------------------------------------------------

    def __str__(self) -> str:
        y_count = int(np.count_nonzero(self.xs & self.zs))
        k = (self.phase_exponent - y_count) % 4
        chars = "".join(
            _XZ_TO_CHAR[(int(x), int(z))] for x, z in zip(self.xs, self.zs)
        )
        return _PHASE_STR[k] + chars

    def __repr__(self) -> str:
        return f"PauliString({str(self)!r})"
