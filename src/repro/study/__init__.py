"""The public study API: circuit -> compiled handle -> sweep -> curve.

The paper's whole evaluation is one pipeline — build a circuit family,
compile each circuit's sampler once, stream samples through a decoder
into an error-rate table — and this package is that pipeline as four
small composable objects:

:class:`CompiledCircuit`
    ``Circuit.compile(sampler=..., decoder=...)`` — one handle that
    lazily builds and caches the backend sampler, the merged DEM and
    the compiled decoder, with ``.sample()``, ``.detect()``,
    ``.decode()``, their packed-domain twins ``.detect_packed()`` /
    ``.decode_packed()`` and ``.logical_error_rate()``.
:class:`Sweep`
    A declarative (code x distance x probability x ...) grid of engine
    tasks with consistent metadata, plus ``.add_task()`` for custom
    circuits.
:class:`ExecutionOptions`
    The execution policy (workers, chunk size, base seed, early-stop
    default, store, progress hook) threaded through the engine.
:class:`SweepResult`
    Typed statistics rows: filtering (``.by(code=...)``), grouping,
    Wilson intervals, ASCII tables, JSON export and
    ``.threshold_estimate()``.

Typical use::

    from repro.qec import surface_code_memory
    from repro.study import ExecutionOptions, Sweep

    # one circuit, end to end
    rate = surface_code_memory(3, 3,
        after_clifford_depolarization=0.004,
        before_measure_flip_probability=0.004,
    ).compile().logical_error_rate(100_000, seed=0)

    # a threshold sweep
    result = Sweep(codes="repetition", distances=(3, 5, 7),
                   probabilities=(0.02, 0.05, 0.1, 0.2),
                   max_shots=50_000).collect(
        ExecutionOptions(base_seed=0, workers=4, store="results.jsonl"))
    print(result.table())
    print("threshold ~", result.threshold_estimate())

The CLI (``python -m repro collect``/``decode``), the experiments
harness and the examples are thin layers over these objects.
"""

from repro.engine.options import ExecutionOptions
from repro.study.compiled import CompiledCircuit
from repro.study.result import SweepResult
from repro.study.sweep import CODE_BUILDERS, Sweep, run

__all__ = [
    "CODE_BUILDERS",
    "CompiledCircuit",
    "ExecutionOptions",
    "Sweep",
    "SweepResult",
    "run",
]
