"""Declarative sweep grids: from parameter lists to engine tasks.

:class:`Sweep` replaces every hand-rolled ``for code / for distance /
for p`` task loop (the CLI's, the harness's, the examples') with one
grid builder that always emits the same circuits, the same metadata
keys (``code``, ``distance``, ``p``, ``rounds``) and therefore the same
content-based ``strong_id``s — a sweep described here resumes a result
store written by ``python -m repro collect`` and vice versa.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.engine.options import UNSET, ExecutionOptions
from repro.engine.tasks import Task
from repro.study.result import SweepResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuit.circuit import Circuit


def _repetition(distance: int, rounds: int, p: float) -> "Circuit":
    from repro.qec import repetition_code_memory

    return repetition_code_memory(
        distance,
        rounds=rounds,
        data_flip_probability=p,
        measure_flip_probability=p,
    )


def _surface(distance: int, rounds: int, p: float) -> "Circuit":
    from repro.qec import surface_code_memory

    return surface_code_memory(
        distance,
        rounds=rounds,
        after_clifford_depolarization=p,
        before_measure_flip_probability=p,
    )


#: Code families the grid knows how to build:
#: ``builder(distance, rounds, p) -> Circuit``.
CODE_BUILDERS: dict[str, Callable[[int, int, float], "Circuit"]] = {
    "repetition": _repetition,
    "surface": _surface,
}


def _as_tuple(value: Any) -> tuple:
    """Normalize a scalar-or-iterable grid axis to a tuple."""
    if value is None:
        return ()
    if isinstance(value, (str, bytes)):
        return (value,)
    if isinstance(value, Iterable):
        return tuple(value)
    return (value,)


class Sweep:
    """A declarative (code x distance x probability x ...) task grid.

    Every constructor argument is a grid axis and accepts a scalar or an
    iterable; the defaults reproduce ``python -m repro collect``'s
    default sweep exactly (identical ``strong_id``s, so stores written
    by either side resume the other).  ``codes`` may include ``"both"``
    as shorthand for repetition + surface.

    Custom circuits join the grid through :meth:`add_task`.  The grid is
    materialized by :meth:`tasks` and executed by :meth:`collect`::

        result = Sweep(codes="repetition", distances=(3, 5, 7),
                       probabilities=(0.02, 0.05, 0.1),
                       max_shots=20_000).collect(
            ExecutionOptions(base_seed=0, workers=4))
        print(result.table())
    """

    def __init__(
        self,
        *,
        codes: Any = ("repetition", "surface"),
        distances: Any = (3, 5),
        probabilities: Any = (0.005, 0.01, 0.02),
        rounds: Any = 3,
        decoders: Any = "compiled-matching",
        samplers: Any = "symbolic",
        max_shots: int = 10_000,
        max_errors: int | None = None,
    ):
        codes_tuple: tuple = ()
        for code in _as_tuple(codes):
            if code == "both":
                codes_tuple += ("repetition", "surface")
            elif code in CODE_BUILDERS:
                codes_tuple += (code,)
            else:
                raise ValueError(
                    f"unknown code family {code!r}; "
                    f"expected one of {sorted(CODE_BUILDERS)} or 'both' "
                    f"(use add_task() for custom circuits)"
                )
        self.codes = codes_tuple
        self.distances = tuple(int(d) for d in _as_tuple(distances))
        self.probabilities = tuple(float(p) for p in _as_tuple(probabilities))
        self.rounds = tuple(int(r) for r in _as_tuple(rounds))
        self.decoders = _as_tuple(decoders)
        self.samplers = _as_tuple(samplers)
        self.max_shots = max_shots
        self.max_errors = max_errors
        self._extra: list[Task] = []

    # -- building --------------------------------------------------------

    def add_task(
        self,
        circuit: "Circuit",
        *,
        decoder: str = UNSET,
        sampler: str = UNSET,
        max_shots: int = UNSET,
        max_errors: int | None = UNSET,
        metadata: dict[str, Any] | None = None,
    ) -> "Sweep":
        """Append one custom-circuit task to the grid; returns ``self``.

        Arguments not passed inherit the sweep's (first) decoder/sampler
        and shot budget, so a custom circuit rides the grid's settings;
        an explicit value — including ``max_errors=None`` for "no early
        stop" — always wins.
        """
        if decoder is UNSET:
            decoder = (self.decoders or ("compiled-matching",))[0]
        if sampler is UNSET:
            sampler = (self.samplers or ("symbolic",))[0]
        self._extra.append(
            Task(
                circuit,
                decoder=decoder,
                sampler=sampler,
                max_shots=self.max_shots if max_shots is UNSET else max_shots,
                max_errors=(
                    self.max_errors if max_errors is UNSET else max_errors
                ),
                metadata=dict(metadata or {}),
            )
        )
        return self

    def tasks(self) -> list[Task]:
        """The grid as engine tasks, built fresh from the current axis
        attributes (mutate-then-collect always sees the mutation; task
        identity is content-based, so rebuilt tasks keep their
        ``strong_id``s).

        Grid order is code, then distance, then probability (then
        rounds, decoder, sampler), matching the CLI's historical sweep
        order; custom :meth:`add_task` circuits follow in insertion
        order.
        """
        built: list[Task] = []
        for code in self.codes:
            builder = CODE_BUILDERS[code]
            for distance in self.distances:
                for p in self.probabilities:
                    for rounds in self.rounds:
                        circuit = builder(distance, rounds, p)
                        for decoder in self.decoders:
                            for sampler in self.samplers:
                                built.append(
                                    Task(
                                        circuit,
                                        decoder=decoder,
                                        sampler=sampler,
                                        max_shots=self.max_shots,
                                        max_errors=self.max_errors,
                                        metadata={
                                            "code": code,
                                            "distance": distance,
                                            "p": p,
                                            "rounds": rounds,
                                        },
                                    )
                                )
        return built + list(self._extra)

    def __len__(self) -> int:
        # Pure arithmetic — sizing a sweep must not build its circuits.
        grid = (
            len(self.codes)
            * len(self.distances)
            * len(self.probabilities)
            * len(self.rounds)
            * len(self.decoders)
            * len(self.samplers)
        )
        return grid + len(self._extra)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks())

    # -- execution -------------------------------------------------------

    def collect(
        self,
        options: ExecutionOptions | None = None,
        **overrides: Any,
    ) -> SweepResult:
        """Run the grid through the collection engine.

        ``options`` carries the execution policy (workers, chunk size,
        base seed, store, transport, adaptive sizing, ...); keyword
        ``overrides`` patch it in place
        (``sweep.collect(workers=4, store="out.jsonl")``).  Pooled runs
        warm every worker per distinct circuit before its chunks flow
        (one broadcast compile), and the parent-worker wire follows
        ``options.transport`` — counts are bitwise identical under
        every transport and worker count.  Returns a
        :class:`~repro.study.result.SweepResult` over one
        ``TaskStats`` per task.
        """
        import repro.obs as obs
        from repro.engine.collector import collect as engine_collect

        options = ExecutionOptions.resolve(options, **overrides)
        tasks = self.tasks()
        with obs.span(
            "sweep.collect", tasks=len(tasks), workers=options.workers
        ):
            return SweepResult(engine_collect(tasks, options=options))


def run(
    sweep: Sweep | Iterable[Task],
    options: ExecutionOptions | None = None,
    **overrides: Any,
) -> SweepResult:
    """Collect a :class:`Sweep` (or any iterable of engine tasks).

    The functional spelling of :meth:`Sweep.collect`, accepting raw task
    lists too so ad-hoc task sets share the same execution path.
    """
    if isinstance(sweep, Sweep):
        return sweep.collect(options, **overrides)
    import repro.obs as obs
    from repro.engine.collector import collect as engine_collect

    options = ExecutionOptions.resolve(options, **overrides)
    tasks = list(sweep)
    with obs.span(
        "sweep.collect", tasks=len(tasks), workers=options.workers
    ):
        return SweepResult(engine_collect(tasks, options=options))
