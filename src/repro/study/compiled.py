"""One handle from circuit to logical error rate.

:class:`CompiledCircuit` is the object the paper's workflow wants:
``Circuit.compile()`` names a sampler backend and a decoder once, and
everything behind that choice — the compiled backend sampler, the
merged detector error model, the compiled decoder — is built lazily on
first use and memoized through the engine's fingerprint-keyed
:class:`~repro.engine.cache.SamplerCache`.  Two handles over equal
circuits (same canonical text) therefore share one compiled sampler,
and a handle warmed interactively shares its artifacts with any
in-process engine run that touches the same circuit, because both sides
use the same cache keys.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.engine.cache import shared_cache
from repro.engine.options import UNSET, ExecutionOptions, explicit_kwargs
from repro.engine.tasks import (
    NO_DECODER,
    Task,
    resolve_decoder_name,
    resolve_sampler_name,
)
from repro.rng import as_generator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuit.circuit import Circuit
    from repro.engine.collector import TaskStats


class CompiledCircuit:
    """A circuit bound to a sampler backend and a decoder, compiled once.

    Construction is cheap: it only resolves the ``sampler`` and
    ``decoder`` names to their canonical registry spellings (aliases
    like ``"symphase"`` or ``"mwpm"`` share one cache entry and one
    ``strong_id`` with their canonical names).  The heavy artifacts are
    built on first use:

    * :attr:`sampler` — the compiled backend sampler,
    * :attr:`dem` — the merged detector error model,
    * :attr:`decoder` — the compiled decoder over that DEM,

    each memoized in the process-global sampler cache under the same
    keys the engine's workers use.

    Every sampling method accepts ``seed_or_rng``: ``None`` (fresh OS
    entropy), an int seed, a ``SeedSequence``, or a ``Generator``.
    """

    def __init__(
        self,
        circuit: "Circuit",
        *,
        sampler: str = "symbolic",
        decoder: str = "compiled-matching",
    ):
        self.circuit = circuit
        self.sampler_name = resolve_sampler_name(sampler)
        self.decoder_name = resolve_decoder_name(decoder)
        self._fingerprint: str | None = None

    def __repr__(self) -> str:
        return (
            f"CompiledCircuit({self.fingerprint[:12]}, "
            f"sampler={self.sampler_name!r}, decoder={self.decoder_name!r})"
        )

    # -- lazily built, cache-shared artifacts ----------------------------

    @property
    def fingerprint(self) -> str:
        """The circuit's content fingerprint (cached; do not mutate the
        circuit after compiling it)."""
        if self._fingerprint is None:
            self._fingerprint = self.circuit.fingerprint()
        return self._fingerprint

    @property
    def sampler(self):
        """The compiled backend sampler (built on first access)."""
        from repro.backends import compile_backend

        return shared_cache().get_or_build(
            ("sampler", self.fingerprint, self.sampler_name),
            lambda: compile_backend(self.circuit, self.sampler_name),
        )

    def symbolic(self):
        """The circuit's symbolic-phase analysis (Algorithm 1's Init).

        A :class:`~repro.core.simulator.SymPhaseSimulator` exposing the
        per-measurement symbolic expressions
        (``measurement_expression``, ``measurement_support``) that the
        compiled sampler's packed matrices no longer carry.  Built on
        first access and memoized by circuit fingerprint, independent of
        the chosen sampler backend.
        """
        from repro.core import SymPhaseSimulator

        return shared_cache().get_or_build(
            ("symbolic-analysis", self.fingerprint),
            lambda: SymPhaseSimulator.from_circuit(self.circuit),
        )

    @property
    def dem(self):
        """The merged detector error model (built on first access)."""
        from repro.dem import extract_dem

        return shared_cache().get_or_build(
            ("dem", self.fingerprint), lambda: extract_dem(self.circuit)
        )

    @property
    def decoder(self):
        """The compiled decoder over :attr:`dem` (built on first access)."""
        from repro.decoders import compile_decoder

        if self.decoder_name == NO_DECODER:
            raise ValueError(
                "this circuit was compiled with decoder='none'; "
                "re-compile with a registered decoder to decode"
            )
        return shared_cache().get_or_build(
            ("decoder", self.fingerprint, self.decoder_name),
            lambda: compile_decoder(self.dem, self.decoder_name),
        )

    # -- sampling --------------------------------------------------------

    def sample(self, shots: int, seed_or_rng=None) -> np.ndarray:
        """Measurement records, one row per shot."""
        return self.sampler.sample(shots, as_generator(seed_or_rng))

    def detect(self, shots: int, seed_or_rng=None):
        """``(detectors, observables)`` sample arrays, one row per shot."""
        return self.sampler.sample_detectors(shots, as_generator(seed_or_rng))

    def detect_packed(self, shots: int, seed_or_rng=None):
        """``(detectors, observables)`` in the packed wire format.

        Shot-major uint64 rows — ``(shots, words_for(n))`` per side,
        little-endian bit order, padding bits zero.  For any seed this
        is bit-for-bit the packed view of :meth:`detect`: frame backends
        produce it natively without ever materializing uint8 matrices,
        the others (including externally registered samplers that
        predate the packed protocol) pack an unpacked sample.
        """
        from repro.backends.protocol import packed_detector_samples

        return packed_detector_samples(
            self.sampler, shots, as_generator(seed_or_rng)
        )

    def decode_packed(self, shots: int, seed_or_rng=None):
        """Sample and decode one batch entirely in the packed domain.

        Returns packed ``(predictions, observables)``.  Requires a
        decoder that speaks the packed wire format (the registry's
        ``packed`` capability, e.g. ``compiled-matching``); predictions
        are bitwise identical to packing :meth:`decode`'s output.
        """
        from repro.decoders import get_decoder

        if not get_decoder(self.decoder_name).info.packed:
            raise ValueError(
                f"decoder {self.decoder_name!r} has no packed batch "
                f"path; use decode() or compile with a packed-capable "
                f"decoder such as 'compiled-matching'"
            )
        detectors, observables = self.detect_packed(shots, seed_or_rng)
        return self.decoder.decode_batch_packed(detectors), observables

    def decode(self, shots: int, seed_or_rng=None):
        """Sample ``shots`` detector rows and decode them in one batch.

        Returns ``(predictions, observables)``: the decoder's predicted
        observable flips next to the true ones.  Bitwise identical to
        running the manual pipeline — ``sample_detectors`` on the same
        backend and generator, ``extract_dem``, ``compile_decoder``,
        ``decode_batch`` — because that is exactly what it does.
        """
        detectors, observables = self.detect(shots, seed_or_rng)
        return self.decoder.decode_batch(detectors), observables

    # -- engine integration ----------------------------------------------

    def task(
        self,
        *,
        max_shots: int = 10_000,
        max_errors: int | None = None,
        metadata: dict[str, Any] | None = None,
    ) -> Task:
        """An engine :class:`~repro.engine.tasks.Task` for this handle."""
        return Task(
            self.circuit,
            decoder=self.decoder_name,
            sampler=self.sampler_name,
            max_shots=max_shots,
            max_errors=max_errors,
            metadata=dict(metadata or {}),
        )

    def collect(
        self,
        options: ExecutionOptions | None = None,
        *,
        max_shots: int = 10_000,
        max_errors: int | None = None,
        metadata: dict[str, Any] | None = None,
        **overrides: Any,
    ) -> "TaskStats":
        """Estimate this circuit's logical error rate through the engine.

        The shot budget streams through the collection engine in
        derived-seed chunks (optionally across ``options.workers``
        processes); counts are independent of the worker count.  Extra
        keyword ``overrides`` patch ``options`` (e.g. ``workers=4``).
        """
        import repro.obs as obs
        from repro.engine.collector import collect as engine_collect

        options = ExecutionOptions.resolve(options, **overrides)
        task = self.task(
            max_shots=max_shots, max_errors=max_errors, metadata=metadata
        )
        with obs.span(
            "circuit.collect",
            sampler=self.sampler_name,
            decoder=self.decoder_name,
            max_shots=max_shots,
        ):
            return engine_collect([task], options=options)[0]

    def logical_error_rate(
        self,
        shots: int,
        seed=None,
        *,
        max_errors: int | None = UNSET,
        workers: int = UNSET,
        chunk_shots: int = UNSET,
    ) -> float:
        """Fraction of ``shots`` where decoding fails to predict the
        observable flips.

        With an int seed (or ``None``), the budget runs through the
        collection engine's derived-seed chunking, so the counts are
        bitwise identical to ``collect([self.task(...)],
        base_seed=seed)`` — interactive estimates and batch sweeps agree
        shot for shot.  With an explicit ``Generator`` or
        ``SeedSequence`` (whose state cannot be threaded into
        independent per-chunk streams), the shots are drawn as one
        in-process batch from that stream instead.

        With ``decoder="none"`` there is no decoding: an "error" is any
        raw observable flip (the engine's ``none`` semantics), on both
        paths.
        """
        passed = explicit_kwargs(
            max_errors=max_errors, workers=workers, chunk_shots=chunk_shots
        )
        if isinstance(seed, (np.random.Generator, np.random.SeedSequence)):
            if passed:
                raise ValueError(
                    f"{'/'.join(sorted(passed))} require an int seed (or "
                    f"None): an explicit Generator/SeedSequence stream "
                    f"samples one in-process batch, outside the engine's "
                    f"chunked early-stopping path"
                )
            # The in-process batch stays in the packed domain end to
            # end when it can (same hot path the engine workers run);
            # the packed and unpacked views of one stream are bitwise
            # identical, so the estimate is unchanged either way.
            from repro.decoders import get_decoder
            from repro.gf2 import bitops

            if self.decoder_name == NO_DECODER:
                _, observables = self.detect_packed(shots, seed)
                return float(
                    bitops.nonzero_rows_packed(observables).size / shots
                )
            if get_decoder(self.decoder_name).info.packed:
                predictions, observables = self.decode_packed(shots, seed)
                failures = bitops.xor_rows_any(predictions, observables)
                return float(failures.mean())
            predictions, observables = self.decode(shots, seed)
            failures = (predictions != observables).any(axis=1)
            return float(failures.mean())
        stats = self.collect(
            ExecutionOptions(base_seed=seed).replace(
                **{k: v for k, v in passed.items() if k != "max_errors"}
            ),
            max_shots=shots,
            max_errors=passed.get("max_errors"),
        )
        return stats.error_rate
