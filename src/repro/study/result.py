"""Typed results of a sweep: filtering, grouping, tables, thresholds.

:class:`SweepResult` wraps the engine's per-task
:class:`~repro.engine.collector.TaskStats` rows with the operations an
analysis actually performs — select the repetition-code rows, group by
distance, print an ASCII table, export JSON, estimate where the
threshold sits — so consumers never reach into raw dict rows.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Callable, Iterable, Iterator

from repro.engine.collector import TaskStats

# Canonical sweep metadata keys, in display order; other keys follow
# alphabetically and `decoder`/`sampler` match TaskStats fields.
_LEAD_KEYS = ("code", "distance", "p", "rounds")


def _canonical_filter_value(key: str, value: Any) -> Any:
    """Resolve decoder/sampler filter values to their canonical registry
    names, so ``by(decoder="mwpm")`` matches rows stored as
    ``"matching"`` (stats always carry canonical names — Task resolves
    aliases at construction).  Unknown names pass through unchanged (and
    simply match nothing)."""
    try:
        if key == "decoder" and value != "none":
            from repro.decoders.registry import canonical_name

            return canonical_name(value)
        if key == "sampler":
            from repro.backends import canonical_name

            return canonical_name(value)
    except (KeyError, TypeError):
        pass
    return value


class SweepResult:
    """An ordered collection of finished-task statistics."""

    def __init__(self, stats: Iterable[TaskStats]):
        self.stats: list[TaskStats] = list(stats)

    def __len__(self) -> int:
        return len(self.stats)

    def __iter__(self) -> Iterator[TaskStats]:
        return iter(self.stats)

    def __getitem__(self, index):
        picked = self.stats[index]
        return SweepResult(picked) if isinstance(index, slice) else picked

    def __repr__(self) -> str:
        return f"SweepResult({len(self.stats)} rows)"

    # -- selection -------------------------------------------------------

    def by(self, **filters: Any) -> "SweepResult":
        """Rows matching every filter.

        ``decoder=`` and ``sampler=`` match the stats fields (registry
        aliases like ``"mwpm"`` resolve to their canonical names first);
        any other keyword matches a metadata key (``by(code="repetition",
        distance=5)``).  A tuple/list/set filter value matches any of
        its members.
        """

        def matches(stats: TaskStats, key: str, wanted: Any) -> bool:
            if key in ("decoder", "sampler"):
                value = getattr(stats, key)
                if isinstance(wanted, (tuple, list, set, frozenset)):
                    wanted = [_canonical_filter_value(key, w) for w in wanted]
                else:
                    wanted = _canonical_filter_value(key, wanted)
            elif key in stats.metadata:
                value = stats.metadata[key]
            else:
                return False
            if isinstance(wanted, (tuple, list, set, frozenset)):
                return value in wanted
            return value == wanted

        return SweepResult(
            s for s in self.stats
            if all(matches(s, k, v) for k, v in filters.items())
        )

    def group(self, key: str) -> dict[Any, "SweepResult"]:
        """Rows grouped by one metadata key (or ``decoder``/``sampler``),
        keyed by that value, in sorted order; rows without it are
        dropped."""
        values = self.values(key)
        return {value: self.by(**{key: value}) for value in values}

    def values(self, key: str) -> list[Any]:
        """Sorted distinct values of a metadata key (or
        ``decoder``/``sampler``) across the rows."""
        found = set()
        for stats in self.stats:
            if key in ("decoder", "sampler"):
                found.add(getattr(stats, key))
            elif key in stats.metadata:
                found.add(stats.metadata[key])
        return sorted(found)

    # -- export ----------------------------------------------------------

    def to_rows(self) -> list[dict[str, Any]]:
        """One plain dict per row (the result-store row format)."""
        return [stats.to_row() for stats in self.stats]

    def to_json(self, indent: int | None = 2) -> str:
        """The rows as one JSON array."""
        return json.dumps(self.to_rows(), indent=indent)

    def save(self, path: str | os.PathLike) -> None:
        """Write :meth:`to_json` to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    def table(self, keys: tuple[str, ...] | None = None) -> str:
        """An ASCII table of the rows: metadata columns, then counts,
        rate and the Wilson 95% interval.

        ``keys`` overrides the columns and may name metadata keys or the
        ``decoder``/``sampler`` stats fields.  By default: the union of
        metadata keys across rows (canonical sweep keys first), plus a
        ``decoder``/``sampler`` column whenever the rows differ on it —
        a multi-decoder sweep's rows stay distinguishable.
        """
        if keys is None:
            seen: dict[str, None] = {}
            for stats in self.stats:
                for key in stats.metadata:
                    seen[key] = None
            keys = tuple(k for k in _LEAD_KEYS if k in seen) + tuple(
                sorted(k for k in seen if k not in _LEAD_KEYS)
            )
            keys += tuple(
                field for field in ("decoder", "sampler")
                if len(self.values(field)) > 1
            )

        def cell(stats: TaskStats, key: str) -> str:
            if key in ("decoder", "sampler"):
                return str(getattr(stats, key))
            return str(stats.metadata.get(key, "-"))

        headers = [*keys, "shots", "errors", "rate", "wilson 95% CI"]
        rows = []
        for stats in self.stats:
            low, high = stats.wilson()
            rows.append(
                [cell(stats, k) for k in keys]
                + [
                    str(stats.shots),
                    str(stats.errors),
                    f"{stats.error_rate:.3e}",
                    f"[{low:.3e}, {high:.3e}]",
                ]
            )
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    # -- analysis --------------------------------------------------------

    def totals(self) -> tuple[int, int]:
        """``(shots, errors)`` summed over all rows."""
        return (
            sum(s.shots for s in self.stats),
            sum(s.errors for s in self.stats),
        )

    def rate_curve(
        self, x: str = "p", series: str = "distance"
    ) -> dict[Any, list[tuple[Any, float]]]:
        """Error-rate curves: ``{series_value: [(x_value, rate), ...]}``,
        each curve sorted by ``x``.

        Raises :class:`ValueError` when two rows share one ``(series,
        x)`` grid point (e.g. a sweep over several decoders or rounds):
        a curve mixing those silently would be wrong — narrow the
        result first, ``result.by(decoder=...).rate_curve()``.
        """
        curves: dict[Any, dict[Any, float]] = {}
        for stats in self.stats:
            sv = stats.metadata.get(series)
            xv = stats.metadata.get(x)
            if sv is None or xv is None:
                continue
            points = curves.setdefault(sv, {})
            if xv in points:
                raise ValueError(
                    f"multiple rows share {series}={sv!r}, {x}={xv!r} "
                    f"(a sweep over several codes, decoders, samplers or "
                    f"rounds?); narrow first, e.g. "
                    f".by(code=...).rate_curve() or .by(decoder=...)"
                )
            points[xv] = stats.error_rate
        return {
            sv: sorted(points.items()) for sv, points in sorted(curves.items())
        }

    def threshold_estimate(
        self, x: str = "p", series: str = "distance"
    ) -> float | None:
        """Estimate the threshold: the ``x`` where the largest-``series``
        error-rate curve crosses the smallest one.

        Below threshold larger distance suppresses the logical error
        rate; above it, it amplifies.  The crossing of the extreme
        distance curves is located on their common ``x`` grid and
        refined by linear interpolation in ``log10(x)``.  Returns
        ``None`` when fewer than two curves share two or more grid
        points, or when no crossing lies inside the sampled range.
        Like :meth:`rate_curve`, raises :class:`ValueError` when the
        rows hold more than one entry per ``(series, x)`` point (a
        sweep over decoders/samplers/rounds) — narrow with
        :meth:`by` first.
        """
        curves = self.rate_curve(x=x, series=series)
        if len(curves) < 2:
            return None
        low_series = dict(curves[min(curves)])
        high_series = dict(curves[max(curves)])
        grid = sorted(set(low_series) & set(high_series))
        if len(grid) < 2:
            return None
        # diff < 0: larger distance is winning (below threshold).
        diffs = [high_series[g] - low_series[g] for g in grid]
        for (x0, f0), (x1, f1) in zip(
            zip(grid, diffs), zip(grid[1:], diffs[1:])
        ):
            if f0 == 0.0:
                return float(x0)
            if f0 < 0.0 <= f1:
                t = -f0 / (f1 - f0)
                if x0 > 0 and x1 > 0:
                    return float(
                        10.0
                        ** (math.log10(x0) + t * (math.log10(x1) - math.log10(x0)))
                    )
                return float(x0 + t * (x1 - x0))
        if diffs[-1] == 0.0:
            return float(grid[-1])
        return None

    # -- misc ------------------------------------------------------------

    def sort(self, key: Callable[[TaskStats], Any]) -> "SweepResult":
        """A copy sorted by ``key(stats)``."""
        return SweepResult(sorted(self.stats, key=key))
