"""Seed normalization and the engine's derived-seed scheme.

Every sampling entry point in this package accepts ``seed_or_rng``:
either ``None`` (fresh OS entropy), an ``int`` seed, a
``numpy.random.SeedSequence``, or an already-constructed
``numpy.random.Generator``.  :func:`as_generator` performs the
normalization in one place.

Derived-seed scheme (used by :mod:`repro.engine`)
-------------------------------------------------

A collection run splits every task's shot budget into fixed-size chunks
that may execute on any worker process in any order.  Reproducibility
must therefore not depend on scheduling.  Chunk ``i`` of a task with
fingerprint entropy ``t`` under base seed ``s`` draws its randomness
from::

    np.random.SeedSequence(entropy=(s, t, i))

where ``t`` is the first 64 bits of the task circuit's
:meth:`~repro.circuit.circuit.Circuit.fingerprint` (see
:func:`entropy_from_hex`).  Properties:

* chunk ``i`` of task ``t`` is reproducible *in isolation* — a worker
  needs only ``(s, t, i)``, never the RNG state left behind by other
  chunks;
* distinct chunks, distinct tasks, and distinct base seeds get
  independent streams (SeedSequence hashes the whole entropy tuple);
* aggregate counts are bitwise identical for serial and pooled
  execution of the same task list.
"""

from __future__ import annotations

import numpy as np


def as_generator(
    seed_or_rng: int | np.random.SeedSequence | np.random.Generator | None = None,
) -> np.random.Generator:
    """Normalize ``None`` / int seed / SeedSequence / Generator to a Generator."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def entropy_from_hex(fingerprint: str) -> int:
    """First 64 bits of a hex digest as an int (task-level entropy word)."""
    return int(fingerprint[:16], 16)


def chunk_seed_sequence(
    base_seed: int, task_entropy: int, chunk_index: int
) -> np.random.SeedSequence:
    """The SeedSequence for chunk ``chunk_index`` of a task (scheme above)."""
    return np.random.SeedSequence(entropy=(base_seed, task_entropy, chunk_index))


def chunk_generator(
    base_seed: int, task_entropy: int, chunk_index: int
) -> np.random.Generator:
    """A Generator seeded per the derived-seed scheme (scheme above)."""
    return np.random.default_rng(
        chunk_seed_sequence(base_seed, task_entropy, chunk_index)
    )
