"""Circuit-level noise transformers.

A :class:`NoiseModel` rewrites a *clean* circuit into a noisy one by
inserting Pauli channels around operations.  Detector/observable
definitions survive unchanged (noise adds no measurement records).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import Circuit
from repro.circuit.instructions import Instruction, RepeatBlock


@dataclass(frozen=True)
class NoiseModel:
    """Uniform circuit-level depolarizing noise.

    * ``after_1q`` — DEPOLARIZE1 after every single-qubit unitary;
    * ``after_2q`` — DEPOLARIZE2 after every two-qubit unitary;
    * ``before_measure`` — X_ERROR before every measurement
      (Z_ERROR for X-basis measurements);
    * ``after_reset`` — X_ERROR after every reset.
    """

    after_1q: float = 0.0
    after_2q: float = 0.0
    before_measure: float = 0.0
    after_reset: float = 0.0

    def apply(self, circuit: Circuit) -> Circuit:
        """Return a noisy copy of ``circuit``."""
        noisy = Circuit()
        for entry in circuit.entries:
            if isinstance(entry, RepeatBlock):
                noisy.entries.append(
                    RepeatBlock(entry.count, self.apply(entry.body))
                )
                continue
            self._emit(entry, noisy)
        return noisy

    def _emit(self, instruction: Instruction, out: Circuit) -> None:
        gate = instruction.gate
        targets = [t for t in instruction.targets if isinstance(t, int)]
        if gate.kind in ("measure", "measure_reset") and self.before_measure > 0:
            flip = "Z_ERROR" if gate.basis == "X" else "X_ERROR"
            out.append(flip, targets, self.before_measure)
        out.entries.append(instruction)
        if gate.is_unitary and gate.name != "I":
            if gate.targets_per_op == 1 and self.after_1q > 0:
                out.append("DEPOLARIZE1", targets, self.after_1q)
            elif gate.targets_per_op == 2 and self.after_2q > 0:
                out.append("DEPOLARIZE2", targets, self.after_2q)
        if gate.kind in ("reset", "measure_reset") and self.after_reset > 0:
            flip = "Z_ERROR" if gate.basis == "X" else "X_ERROR"
            out.append(flip, targets, self.after_reset)


def with_noise(circuit: Circuit, p: float) -> Circuit:
    """Shorthand: uniform strength-``p`` circuit-level noise."""
    model = NoiseModel(
        after_1q=p, after_2q=p, before_measure=p, after_reset=p
    )
    return model.apply(circuit)
