"""Repetition-code memory experiment (bit-flip code).

``distance`` data qubits protected against X errors by ``distance - 1``
ZZ checks, measured for ``rounds`` rounds with mid-circuit ancilla
measure-reset.  Detectors compare consecutive syndrome rounds; the
logical observable is the first data qubit's final measurement.
"""

from __future__ import annotations

from repro.circuit.circuit import Circuit


def repetition_code_memory(
    distance: int,
    rounds: int,
    data_flip_probability: float = 0.0,
    measure_flip_probability: float = 0.0,
) -> Circuit:
    """Build a repetition-code memory circuit.

    Qubits ``0 .. d-1`` are data, ``d .. 2d-2`` are ancillas (ancilla
    ``i`` checks data pair ``(i, i+1)``).  Noise is phenomenological:
    ``X_ERROR(data_flip_probability)`` on every data qubit each round and
    ``X_ERROR(measure_flip_probability)`` on each ancilla right before
    its measurement.
    """
    if distance < 2:
        raise ValueError("distance must be at least 2")
    if rounds < 1:
        raise ValueError("rounds must be at least 1")
    d = distance
    data = list(range(d))
    ancillas = [d + i for i in range(d - 1)]

    circuit = Circuit()
    circuit.r(*data, *ancillas)

    for round_index in range(rounds):
        if data_flip_probability > 0:
            circuit.x_error(data_flip_probability, *data)
        for i, ancilla in enumerate(ancillas):
            circuit.cx(data[i], ancilla)
        for i, ancilla in enumerate(ancillas):
            circuit.cx(data[i + 1], ancilla)
        if measure_flip_probability > 0:
            circuit.x_error(measure_flip_probability, *ancillas)
        circuit.mr(*ancillas)
        n_anc = len(ancillas)
        if round_index == 0:
            # First round: |0...0> makes every check deterministic.
            for i in range(n_anc):
                circuit.detector(-n_anc + i)
        else:
            for i in range(n_anc):
                circuit.detector(-n_anc + i, -2 * n_anc + i)
        circuit.tick()

    circuit.m(*data)
    n_anc = len(ancillas)
    # Boundary detectors: final data parities against the last syndrome.
    for i in range(n_anc):
        circuit.detector(-d + i, -d + i + 1, -d - n_anc + i)
    circuit.observable_include(0, -d)
    return circuit
