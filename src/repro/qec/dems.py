"""One-call detector error models for the standard QEC workloads.

Thin conveniences over ``extract_dem(<memory circuit>)`` so decoder
tests and benchmarks can ask for "the d=7 surface-code DEM" without
restating the noise-model plumbing every time.
"""

from __future__ import annotations

from repro.dem.extract import extract_dem
from repro.dem.model import DetectorErrorModel
from repro.qec.repetition import repetition_code_memory
from repro.qec.surface import surface_code_memory


def repetition_code_dem(
    distance: int,
    rounds: int,
    probability: float,
    merge: bool = True,
) -> DetectorErrorModel:
    """DEM of a repetition-code memory with symmetric data/measure
    flip probability ``probability``."""
    return extract_dem(
        repetition_code_memory(
            distance,
            rounds=rounds,
            data_flip_probability=probability,
            measure_flip_probability=probability,
        ),
        merge=merge,
    )


def surface_code_dem(
    distance: int,
    rounds: int,
    probability: float,
    merge: bool = True,
) -> DetectorErrorModel:
    """DEM of a rotated surface-code memory under circuit-level noise
    (DEPOLARIZE2 after every CX plus measurement flips, both at
    ``probability``)."""
    return extract_dem(
        surface_code_memory(
            distance,
            rounds=rounds,
            after_clifford_depolarization=probability,
            before_measure_flip_probability=probability,
        ),
        merge=merge,
    )
