"""Rotated surface-code memory experiment.

Layout follows the standard rotated code picture in doubled coordinates:
data qubits at odd ``(x, y)``, ancilla (measure) qubits at even
``(x, y)``, X- and Z-type plaquettes checkerboarded, with weight-2
checks on the boundary.  The four-step CX schedule uses the standard
"Z"/"ᴎ" orders so that all checks commute through each round.

``basis="Z"`` protects/measures logical Z (a horizontal data row);
``basis="X"`` the dual.
"""

from __future__ import annotations

from repro.circuit.circuit import Circuit

# Data-qubit offsets visited by each ancilla type, in time order.
_X_SCHEDULE = ((1, 1), (1, -1), (-1, 1), (-1, -1))
_Z_SCHEDULE = ((1, 1), (-1, 1), (1, -1), (-1, -1))


def _build_layout(distance: int):
    """Coordinates of data and ancilla qubits for the rotated code."""
    d = distance
    data_coords = [(2 * x + 1, 2 * y + 1) for x in range(d) for y in range(d)]
    x_ancillas: list[tuple[int, int]] = []
    z_ancillas: list[tuple[int, int]] = []
    for x in range(d + 1):
        for y in range(d + 1):
            coord = (2 * x, 2 * y)
            on_left = x == 0
            on_right = x == d
            on_bottom = y == 0
            on_top = y == d
            is_x_type = (x + y) % 2 == 1
            if is_x_type:
                # X checks span columns; they may not sit on left/right edges.
                if on_left or on_right:
                    continue
                x_ancillas.append(coord)
            else:
                if on_bottom or on_top:
                    continue
                z_ancillas.append(coord)
    return data_coords, x_ancillas, z_ancillas


def surface_code_memory(
    distance: int,
    rounds: int,
    after_clifford_depolarization: float = 0.0,
    before_measure_flip_probability: float = 0.0,
    basis: str = "Z",
) -> Circuit:
    """Build a rotated surface-code memory circuit with detectors.

    Noise (both optional): DEPOLARIZE2 after every CX, and X_ERROR before
    every measurement.  Detectors compare consecutive rounds of same-type
    checks; the observable is one logical operator of ``basis``.
    """
    if distance < 2:
        raise ValueError("distance must be at least 2")
    if rounds < 1:
        raise ValueError("rounds must be at least 1")
    if basis not in ("Z", "X"):
        raise ValueError("basis must be 'Z' or 'X'")

    data_coords, x_anc, z_anc = _build_layout(distance)
    coord_to_index: dict[tuple[int, int], int] = {}
    for coord in data_coords + x_anc + z_anc:
        coord_to_index[coord] = len(coord_to_index)
    data = [coord_to_index[c] for c in data_coords]
    x_idx = [coord_to_index[c] for c in x_anc]
    z_idx = [coord_to_index[c] for c in z_anc]
    all_anc = x_idx + z_idx
    p2 = after_clifford_depolarization
    pm = before_measure_flip_probability

    def neighbors(coord, schedule, step):
        dx, dy = schedule[step]
        target = (coord[0] + dx, coord[1] + dy)
        return coord_to_index.get(target)

    circuit = Circuit()
    for coord, index in coord_to_index.items():
        circuit.append("QUBIT_COORDS", [index], list(map(float, coord)))
    circuit.r(*data, *all_anc)
    if basis == "X":
        circuit.h(*data)

    def syndrome_round() -> Circuit:
        block = Circuit()
        block.h(*x_idx)
        for step in range(4):
            pairs: list[int] = []
            for coord in x_anc:
                other = neighbors(coord, _X_SCHEDULE, step)
                if other is not None:
                    pairs.extend([coord_to_index[coord], other])
            for coord in z_anc:
                other = neighbors(coord, _Z_SCHEDULE, step)
                if other is not None:
                    pairs.extend([other, coord_to_index[coord]])
            if pairs:
                block.cx(*pairs)
                if p2 > 0:
                    block.depolarize2(p2, *pairs)
        block.h(*x_idx)
        if pm > 0:
            block.x_error(pm, *all_anc)
        block.mr(*all_anc)
        return block

    n_anc = len(all_anc)
    n_x = len(x_idx)

    # Round 1: only same-basis checks are deterministic.
    circuit += syndrome_round()
    if basis == "Z":
        for i in range(len(z_idx)):
            circuit.detector(-len(z_idx) + i)
    else:
        for i in range(n_x):
            circuit.detector(-n_anc + i)
    circuit.tick()

    for _ in range(rounds - 1):
        circuit += syndrome_round()
        for i in range(n_anc):
            circuit.detector(-n_anc + i, -2 * n_anc + i)
        circuit.tick()

    # Final transversal data measurement in the memory basis.
    if basis == "X":
        circuit.h(*data)
    if pm > 0:
        circuit.x_error(pm, *data)
    circuit.m(*data)
    n_data = len(data)

    def data_lookback(coord):
        return -n_data + data_coords.index(coord)

    # Boundary detectors: each same-basis plaquette's data product must
    # match its last syndrome measurement.
    check_anc = z_anc if basis == "Z" else x_anc
    check_offset = (len(x_idx) if basis == "Z" else 0)
    schedule = _Z_SCHEDULE if basis == "Z" else _X_SCHEDULE
    for i, coord in enumerate(check_anc):
        lookbacks = []
        for dx, dy in schedule:
            neighbor = (coord[0] + dx, coord[1] + dy)
            if neighbor in coord_to_index and neighbor in data_coords:
                lookbacks.append(data_lookback(neighbor))
        anc_lookback = -n_data - n_anc + check_offset + i
        circuit.detector(*lookbacks, anc_lookback)

    # Logical operator: a straight line of data qubits crossing the code.
    if basis == "Z":
        line = [(2 * x + 1, 1) for x in range(distance)]
    else:
        line = [(1, 2 * y + 1) for y in range(distance)]
    circuit.observable_include(0, *[data_lookback(c) for c in line])
    return circuit
