"""QEC workload generators: memory experiments with detectors/observables.

These produce the *sparse* circuits the paper's Table 1 footnote targets
(each detector depends on a handful of fault symbols), plus the noise
model machinery to turn clean circuits into circuit-level-noise ones.
"""

from repro.qec.dems import repetition_code_dem, surface_code_dem
from repro.qec.noise_models import NoiseModel, with_noise
from repro.qec.repetition import repetition_code_memory
from repro.qec.surface import surface_code_memory

__all__ = [
    "NoiseModel",
    "repetition_code_dem",
    "repetition_code_memory",
    "surface_code_dem",
    "surface_code_memory",
    "with_noise",
]
