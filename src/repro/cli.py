"""Command-line interface: sample, analyze and inspect circuits.

Usage::

    repro sample circuit.stim --shots 1000 [--simulator symbolic|frame]
    repro detect circuit.stim --shots 1000
    repro analyze circuit.stim          # symbolic measurement expressions
    repro stats circuit.stim            # operation counts
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.circuit import Circuit
from repro.core import CompiledSampler, SymPhaseSimulator
from repro.frame import FrameSimulator


def _load(path: str) -> Circuit:
    with open(path) as handle:
        return Circuit.from_text(handle.read())


def _cmd_sample(args: argparse.Namespace) -> int:
    circuit = _load(args.circuit)
    rng = np.random.default_rng(args.seed)
    if args.simulator == "symbolic":
        sampler = CompiledSampler(SymPhaseSimulator.from_circuit(circuit))
        records = sampler.sample(args.shots, rng)
    else:
        records = FrameSimulator(circuit).sample(args.shots, rng)
    for row in records:
        print("".join(map(str, row)))
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    circuit = _load(args.circuit)
    rng = np.random.default_rng(args.seed)
    if args.simulator == "symbolic":
        sampler = CompiledSampler(SymPhaseSimulator.from_circuit(circuit))
        detectors, observables = sampler.sample_detectors(args.shots, rng)
    else:
        detectors, observables = FrameSimulator(circuit).sample_detectors(
            args.shots, rng
        )
    for det_row, obs_row in zip(detectors, observables):
        suffix = (" " + "".join(map(str, obs_row))) if obs_row.size else ""
        print("".join(map(str, det_row)) + suffix)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    circuit = _load(args.circuit)
    sim = SymPhaseSimulator.from_circuit(circuit)
    print(f"# {sim.num_measurements} measurements, "
          f"{sim.symbols.n_symbols} symbols")
    for k in range(sim.num_measurements):
        print(f"m{k} = {sim.measurement_expression(k)}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    circuit = _load(args.circuit)
    stats = circuit.count_operations()
    print(f"qubits:        {circuit.n_qubits}")
    for key, value in stats.items():
        print(f"{key + ':':<14} {value}")
    print(f"detectors:     {circuit.num_detectors}")
    print(f"observables:   {circuit.num_observables}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="SymPhase-reproduction stabilizer tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, needs_shots in (
        ("sample", True), ("detect", True), ("analyze", False), ("stats", False)
    ):
        p = sub.add_parser(name)
        p.add_argument("circuit", help="path to a .stim-dialect circuit file")
        if needs_shots:
            p.add_argument("--shots", type=int, default=10)
            p.add_argument("--seed", type=int, default=None)
            p.add_argument(
                "--simulator", choices=["symbolic", "frame"], default="symbolic"
            )

    args = parser.parse_args(argv)
    handlers = {
        "sample": _cmd_sample,
        "detect": _cmd_detect,
        "analyze": _cmd_analyze,
        "stats": _cmd_stats,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
