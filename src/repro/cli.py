"""Command-line interface: sample, analyze, inspect, and batch-collect.

Usage::

    repro sample circuit.stim --shots 1000 [--simulator symbolic|frame]
    repro detect circuit.stim --shots 1000
    repro analyze circuit.stim          # symbolic measurement expressions
    repro stats circuit.stim            # operation counts
    repro collect --code both --distances 3,5 --probabilities 0.01,0.02 \\
        --max-shots 20000 --max-errors 200 --workers 4 --out results.jsonl
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.circuit import Circuit
from repro.core import CompiledSampler, SymPhaseSimulator
from repro.frame import FrameSimulator


def _load(path: str) -> Circuit:
    with open(path) as handle:
        return Circuit.from_text(handle.read())


def _cmd_sample(args: argparse.Namespace) -> int:
    circuit = _load(args.circuit)
    rng = np.random.default_rng(args.seed)
    if args.simulator == "symbolic":
        sampler = CompiledSampler(SymPhaseSimulator.from_circuit(circuit))
        records = sampler.sample(args.shots, rng)
    else:
        records = FrameSimulator(circuit).sample(args.shots, rng)
    for row in records:
        print("".join(map(str, row)))
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    circuit = _load(args.circuit)
    rng = np.random.default_rng(args.seed)
    if args.simulator == "symbolic":
        sampler = CompiledSampler(SymPhaseSimulator.from_circuit(circuit))
        detectors, observables = sampler.sample_detectors(args.shots, rng)
    else:
        detectors, observables = FrameSimulator(circuit).sample_detectors(
            args.shots, rng
        )
    for det_row, obs_row in zip(detectors, observables):
        suffix = (" " + "".join(map(str, obs_row))) if obs_row.size else ""
        print("".join(map(str, det_row)) + suffix)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    circuit = _load(args.circuit)
    sim = SymPhaseSimulator.from_circuit(circuit)
    print(f"# {sim.num_measurements} measurements, "
          f"{sim.symbols.n_symbols} symbols")
    for k in range(sim.num_measurements):
        print(f"m{k} = {sim.measurement_expression(k)}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    circuit = _load(args.circuit)
    stats = circuit.count_operations()
    print(f"qubits:        {circuit.n_qubits}")
    for key, value in stats.items():
        print(f"{key + ':':<14} {value}")
    print(f"detectors:     {circuit.num_detectors}")
    print(f"observables:   {circuit.num_observables}")
    return 0


def _parse_floats(text: str) -> list[float]:
    return [float(part) for part in text.split(",") if part]


def _parse_ints(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part]


def build_sweep_tasks(args: argparse.Namespace) -> list:
    """The CLI's standard sweep: (code family x distance x noise) tasks."""
    from repro.engine import Task
    from repro.qec import repetition_code_memory, surface_code_memory

    codes = ["repetition", "surface"] if args.code == "both" else [args.code]
    tasks = []
    for code in codes:
        for distance in _parse_ints(args.distances):
            for p in _parse_floats(args.probabilities):
                if code == "repetition":
                    circuit = repetition_code_memory(
                        distance,
                        rounds=args.rounds,
                        data_flip_probability=p,
                        measure_flip_probability=p,
                    )
                else:
                    circuit = surface_code_memory(
                        distance,
                        rounds=args.rounds,
                        after_clifford_depolarization=p,
                        before_measure_flip_probability=p,
                    )
                tasks.append(
                    Task(
                        circuit,
                        decoder=args.decoder,
                        sampler=args.sampler,
                        max_shots=args.max_shots,
                        max_errors=args.max_errors,
                        metadata={
                            "code": code,
                            "distance": distance,
                            "p": p,
                            "rounds": args.rounds,
                        },
                    )
                )
    return tasks


def _cmd_collect(args: argparse.Namespace) -> int:
    from repro.engine import collect

    tasks = build_sweep_tasks(args)
    header = (
        f"{'code':>10} {'d':>3} {'p':>8} {'rounds':>6} | "
        f"{'shots':>9} {'errors':>7} {'rate':>10} "
        f"{'wilson 95% CI':>23} {'':>8}"
    )
    print(f"collecting {len(tasks)} task(s), workers={args.workers}, "
          f"seed={args.seed}" + (f", store={args.out}" if args.out else ""))
    print(header)
    print("-" * len(header))

    def report(stats) -> None:
        meta = stats.metadata
        low, high = stats.wilson()
        tag = "resumed" if stats.resumed else f"{stats.seconds:7.2f}s"
        print(
            f"{meta.get('code', '?'):>10} {meta.get('distance', '?'):>3} "
            f"{meta.get('p', '?'):>8} {meta.get('rounds', '?'):>6} | "
            f"{stats.shots:>9} {stats.errors:>7} {stats.error_rate:>10.3e} "
            f"[{low:.3e}, {high:.3e}] {tag:>8}"
        )

    collect(
        tasks,
        base_seed=args.seed,
        workers=args.workers,
        chunk_shots=args.chunk_shots,
        store=args.out,
        progress=report,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="SymPhase-reproduction stabilizer tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, needs_shots in (
        ("sample", True), ("detect", True), ("analyze", False), ("stats", False)
    ):
        p = sub.add_parser(name)
        p.add_argument("circuit", help="path to a .stim-dialect circuit file")
        if needs_shots:
            p.add_argument("--shots", type=int, default=10)
            p.add_argument("--seed", type=int, default=None)
            p.add_argument(
                "--simulator", choices=["symbolic", "frame"], default="symbolic"
            )

    collect_parser = sub.add_parser(
        "collect",
        help="batch Monte-Carlo collection over a QEC code sweep",
        description=(
            "Estimate logical error rates for a sweep of memory "
            "experiments using the parallel collection engine.  Results "
            "stream to a JSONL store; rerunning with the same --out "
            "resumes, skipping completed rows."
        ),
    )
    collect_parser.add_argument(
        "--code", choices=["repetition", "surface", "both"], default="both"
    )
    collect_parser.add_argument(
        "--distances", default="3,5",
        help="comma-separated code distances (default 3,5)",
    )
    collect_parser.add_argument(
        "--probabilities", default="0.005,0.01,0.02",
        help="comma-separated physical error rates",
    )
    collect_parser.add_argument("--rounds", type=int, default=3)
    collect_parser.add_argument(
        "--decoder", choices=["matching", "lookup", "none"], default="matching"
    )
    collect_parser.add_argument(
        "--sampler", choices=["symphase", "frame"], default="symphase"
    )
    collect_parser.add_argument("--max-shots", type=int, default=10_000)
    collect_parser.add_argument(
        "--max-errors", type=int, default=None,
        help="stop a task early once this many logical errors accumulate",
    )
    collect_parser.add_argument("--chunk-shots", type=int, default=2_000)
    collect_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial; counts are identical either way)",
    )
    collect_parser.add_argument("--seed", type=int, default=0)
    collect_parser.add_argument(
        "--out", default=None,
        help="JSONL result store path (enables resume)",
    )

    args = parser.parse_args(argv)
    handlers = {
        "sample": _cmd_sample,
        "detect": _cmd_detect,
        "analyze": _cmd_analyze,
        "stats": _cmd_stats,
        "collect": _cmd_collect,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
