"""Command-line interface: sample, analyze, inspect, and batch-collect.

Every command is a thin layer over :mod:`repro.study` —
``Circuit.compile()`` for the single-circuit commands, ``Sweep`` +
``ExecutionOptions`` for ``collect``.

Usage::

    repro sample circuit.stim --shots 1000 [--backend frame|symbolic|...]
    repro detect circuit.stim --shots 1000
    repro decode circuit.stim --shots 20000 --decoder compiled-matching \\
        --workers 4                     # sample + decode + score one circuit
    repro analyze circuit.stim          # symbolic measurement expressions
    repro backends                      # registered sampler backends
    repro decoders                      # registered syndrome decoders
    repro stats circuit.stim            # operation counts
    repro collect --code both --distances 3,5 --probabilities 0.01,0.02 \\
        --max-shots 20000 --max-errors 200 --workers 4 --out results.jsonl

``--seed`` defaults to fresh OS entropy on every command; pass an int
for reproducible (and, with ``--out``, seed-checked resumable) runs.
"""

from __future__ import annotations

import argparse
import sys
import warnings

import repro.obs as obs
from repro.backends import (
    available_backends,
    backend_choices,
    get_backend,
)
from repro.circuit import Circuit
from repro.decoders import (
    available_decoders,
    decoder_choices,
    get_decoder,
)

_BACKEND_HELP = """\
backends (see `repro backends` for the registered list):
  symbolic      compile once into a GF(2) measurement matrix, sample as a
                matrix product (the paper's Algorithm 1).  Sampling cost is
                independent of circuit depth: prefer it for deep circuits
                sampled many times, and for sparse QEC circuits.
  frame         compile once into a vectorized Pauli-frame program (fused op
                list, packed record buffer).  Per-batch cost scales with gate
                count but with tiny constants: the best general default.
  frame-interp  per-instruction interpreted Pauli frames; bitwise-identical
                samples to `frame` for the same seed.  Benchmarking baseline.
  tableau       per-shot Aaronson-Gottesman Monte Carlo; exact but slow.
                Validation oracle, not for sweeps.

Every backend pays its analysis once per compiled sampler; the collection
engine caches compiled samplers by circuit fingerprint, so a sweep pays each
circuit's compile exactly once per worker process.
"""

_DECODER_HELP = """\
decoders (see `repro decoders` for the registered list):
  compiled-matching  MWPM lowered once into flat arrays (all-pairs shortest
                     paths + path observable masks precomputed); batches
                     decode through vectorized pair lookups.  Bitwise
                     identical predictions to `matching` and the default
                     for anything beyond a handful of shots.
  matching           per-shot Dijkstra + blossom MWPM; the readable
                     reference implementation.
  lookup             maximum-likelihood syndrome table; exact up to the
                     enumerated fault weight, small DEMs only.
  none               (collect/decode) skip decoding; any raw observable
                     flip counts as an error.

Decoders compile once per distinct circuit per worker process (the same
fingerprint-keyed cache the samplers use).
"""

# -- shared argument helpers -------------------------------------------------

_LEGACY_BACKEND_FLAGS = ("--simulator", "--sampler")


class _BackendAction(argparse.Action):
    """Stores the backend choice; warns when a legacy spelling is used."""

    def __call__(self, parser, namespace, values, option_string=None):
        if option_string in _LEGACY_BACKEND_FLAGS:
            warnings.warn(
                f"{option_string} is deprecated; use --backend",
                DeprecationWarning,
                stacklevel=2,
            )
        setattr(namespace, self.dest, values)


def add_backend_argument(
    parser: argparse.ArgumentParser, *, default: str = "symbolic"
) -> None:
    """The one ``--backend`` argument every sampling command shares.

    Registers the deprecated ``--simulator``/``--sampler`` aliases too
    (each emits a :class:`DeprecationWarning` when used).
    """
    parser.add_argument(
        "--backend",
        *_LEGACY_BACKEND_FLAGS,
        dest="backend",
        action=_BackendAction,
        choices=backend_choices(),
        default=default,
        help=(
            f"sampler backend (default {default}; --simulator/--sampler "
            f"are deprecated aliases)"
        ),
    )


def add_seed_argument(parser: argparse.ArgumentParser) -> None:
    """The one ``--seed`` argument every sampling command shares.

    Defaults to ``None`` — fresh OS entropy per run — on *every*
    command; pass an int for reproducible, seed-checked resumable runs.
    """
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help=(
            "base RNG seed (default: fresh OS entropy each run; set one "
            "for reproducible, store-resumable results)"
        ),
    )


def _chunk_shots(value: str) -> "int | str":
    """``--chunk-shots`` parser: a positive int, or ``auto`` to let the
    adaptive sizer steer chunk sizes toward a target latency."""
    if value == "auto":
        return value
    try:
        shots = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None
    if shots < 1:
        raise argparse.ArgumentTypeError("chunk shots must be positive")
    return shots


def add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """The engine execution knobs every collection command shares."""
    parser.add_argument(
        "--chunk-shots", type=_chunk_shots, default=2_000,
        help=(
            "shots per derived-seed chunk (default 2000; part of the "
            "statistical protocol, keep fixed across runs sharing a "
            "store), or 'auto' for adaptive latency-targeted sizing"
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial; counts are identical either way)",
    )
    parser.add_argument(
        "--transport", choices=["auto", "pickle", "shm"], default="auto",
        help=(
            "pooled-run wire: shared-memory slab arena (shm), classic "
            "pickle, or auto-detect (default; REPRO_TRANSPORT env var "
            "overrides).  Counts are bitwise identical either way"
        ),
    )
    parser.add_argument(
        "--max-chunk-retries", type=int, default=2, metavar="N",
        help=(
            "retries per failed chunk lease (worker death, expired "
            "deadline, in-chunk exception) before the chunk is "
            "quarantined as a structured failure row (default 2).  "
            "Retries replay identical shots, so counts never change"
        ),
    )
    parser.add_argument(
        "--chunk-timeout", type=float, default=None, metavar="SECONDS",
        dest="chunk_timeout",
        help=(
            "per-chunk lease deadline for pooled runs; an overdue lease "
            "kills its worker and requeues the chunk (default: no "
            "deadline)"
        ),
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.1, metavar="SECONDS",
        help=(
            "base of the bounded exponential retry delay: a chunk's "
            "attempt N waits backoff * 2**N seconds, capped (default "
            "0.1).  Fault injection for chaos testing comes from the "
            "REPRO_FAULTS environment variable (see repro.engine.faults)"
        ),
    )


def _execution_options(args: argparse.Namespace, **extra):
    """Build :class:`ExecutionOptions` from parsed shared arguments."""
    from repro.study import ExecutionOptions

    adaptive = args.chunk_shots == "auto"
    return ExecutionOptions(
        base_seed=args.seed,
        workers=args.workers,
        chunk_shots=2_000 if adaptive else args.chunk_shots,
        adaptive_chunks=adaptive,
        transport=args.transport,
        max_chunk_retries=args.max_chunk_retries,
        chunk_timeout_seconds=args.chunk_timeout,
        retry_backoff=args.retry_backoff,
        **extra,
    )


def _load(path: str) -> Circuit:
    with open(path) as handle:
        return Circuit.from_text(handle.read())


# -- commands ----------------------------------------------------------------


def _cmd_sample(args: argparse.Namespace) -> int:
    compiled = _load(args.circuit).compile(sampler=args.backend)
    for row in compiled.sample(args.shots, args.seed):
        print("".join(map(str, row)))
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    compiled = _load(args.circuit).compile(sampler=args.backend)
    detectors, observables = compiled.detect(args.shots, args.seed)
    for det_row, obs_row in zip(detectors, observables):
        suffix = (" " + "".join(map(str, obs_row))) if obs_row.size else ""
        print("".join(map(str, det_row)) + suffix)
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    for name in available_backends():
        info = get_backend(name).info
        flags = []
        if info.compile_once:
            flags.append("compile-once")
        flags.append(f"cost:per-{info.per_shot_cost}")
        if info.packed_native:
            flags.append("packed-native")
        if not info.supports_feedback:
            flags.append("no-feedback")
        if info.oracle:
            flags.append("oracle")
        print(f"{name:<14} [{', '.join(flags)}]  {info.description}")
    return 0


def _cmd_decoders(args: argparse.Namespace) -> int:
    for name in available_decoders():
        info = get_decoder(name).info
        flags = []
        if info.compile_once:
            flags.append("compile-once")
        if info.batched:
            flags.append("batched")
        if info.packed:
            flags.append("packed")
        if info.graphlike_only:
            flags.append("graphlike-only")
        if info.exact:
            flags.append("exact")
        print(f"{name:<18} [{', '.join(flags)}]  {info.description}")
    return 0


def _cmd_decode(args: argparse.Namespace) -> int:
    """Sample + decode + score one circuit through the engine.

    The whole gadget-evaluation loop the paper's introduction motivates,
    as one ``CompiledCircuit.collect()`` call: derived-seed chunks fan
    out across ``--workers`` processes, each sampling detectors with the
    chosen backend and decoding them with the registry-resolved decoder.
    """
    compiled = _load(args.circuit).compile(
        sampler=args.backend, decoder=args.decoder
    )
    stats = compiled.collect(
        _execution_options(args),
        max_shots=args.shots,
        max_errors=args.max_errors,
    )
    low, high = stats.wilson()
    rate = obs.format_rate(stats.shots, stats.seconds)
    print(f"decoder:          {stats.decoder}")
    print(f"sampler:          {stats.sampler}")
    print(f"shots:            {stats.shots}")
    print(f"logical errors:   {stats.errors}")
    print(f"logical err rate: {stats.error_rate:.6e}")
    print(f"wilson 95% CI:    [{low:.6e}, {high:.6e}]")
    # End-to-end pipeline rate (compile + sample + decode), not the
    # decoder's decode_batch throughput — bench_decode.py measures that.
    print(f"pipeline:         {rate} shots/sec "
          f"({stats.seconds:.2f}s, workers={args.workers})")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    sim = _load(args.circuit).compile().symbolic()
    print(f"# {sim.num_measurements} measurements, "
          f"{sim.symbols.n_symbols} symbols")
    for k in range(sim.num_measurements):
        print(f"m{k} = {sim.measurement_expression(k)}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    circuit = _load(args.circuit)
    stats = circuit.count_operations()
    print(f"qubits:        {circuit.n_qubits}")
    for key, value in stats.items():
        print(f"{key + ':':<14} {value}")
    print(f"detectors:     {circuit.num_detectors}")
    print(f"observables:   {circuit.num_observables}")
    return 0


def _parse_floats(text: str) -> list[float]:
    return [float(part) for part in text.split(",") if part]


def _parse_ints(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part]


def build_sweep_tasks(args: argparse.Namespace) -> list:
    """Deprecated shim: build the CLI's standard sweep as engine tasks.

    Use :class:`repro.study.Sweep` instead — it produces identical
    tasks (same ``strong_id``s, so existing result stores still
    resume).
    """
    warnings.warn(
        "cli.build_sweep_tasks is deprecated; build a repro.study.Sweep "
        "instead (identical tasks and strong_ids)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _sweep_from_args(args).tasks()


def _sweep_from_args(args: argparse.Namespace):
    """The CLI's standard sweep: (code family x distance x noise)."""
    from repro.study import Sweep

    return Sweep(
        codes=args.code,
        distances=_parse_ints(args.distances),
        probabilities=_parse_floats(args.probabilities),
        rounds=args.rounds,
        decoders=args.decoder,
        # Old namespaces (pre-`add_backend_argument`) carried the
        # backend under `sampler`; accept both for shim callers.
        samplers=getattr(args, "backend", None)
        or getattr(args, "sampler", "symbolic"),
        max_shots=args.max_shots,
        max_errors=args.max_errors,
    )


def _print_profile(results) -> None:
    """Per-stage time breakdown from the stats workers already stream.

    ``sample``/``decode`` are the in-worker hot stages, ``setup/agg``
    is everything else the workers spent (first-chunk compiles, cache
    lookups, counting),
    and ``pool overhead`` is wall time not covered by busy time spread
    over the chunks (scheduling, result pickling, pool spin-up).
    Resumed rows carry no fresh timings and are skipped.
    """
    fresh = [stats for stats in results if not stats.resumed]
    if not fresh:
        print("profile: every task resumed from the store; nothing timed")
        return
    shots = sum(s.shots for s in fresh)
    wall = sum(s.seconds for s in fresh)
    busy = sum(s.worker_seconds for s in fresh)
    sample = sum(s.sample_seconds for s in fresh)
    decode = sum(s.decode_seconds for s in fresh)
    aggregate = max(busy - sample - decode, 0.0)
    # Busy time is summed across workers, so on a pool it can exceed
    # wall; overhead is only meaningful as the wall time left over.
    overhead = max(wall - busy, 0.0)
    print(f"profile ({len(fresh)} task(s), {shots} shots, "
          f"{wall:.2f}s wall, {busy:.2f}s worker-busy):")
    for label, value in (
        ("sample", sample),
        ("decode", decode),
        ("setup/agg", aggregate),
    ):
        share = value / busy if busy else 0.0
        print(f"  {label:<14} {value:>8.2f}s  {share:>6.1%} of worker-busy")
    print(f"  {'pool overhead':<14} {overhead:>8.2f}s  (wall - worker-busy)")
    queue_wait = sum(s.queue_wait_seconds for s in fresh)
    hold = sum(s.hold_seconds for s in fresh)
    transport = sum(s.transport_bytes for s in fresh)
    if queue_wait or hold or transport:
        print(f"  {'queue wait':<14} {queue_wait:>8.2f}s  "
              f"(chunk submit -> worker start, summed)")
        print(f"  {'reorder hold':<14} {hold:>8.2f}s  "
              f"(result received -> yielded, summed)")
        print(f"  {'transport':<14} {transport:>9,} B  "
              f"(pickled specs + results, both ways)")
    _print_recovery_profile()
    _print_worker_profile()


def _print_recovery_profile() -> None:
    """Fault-tolerance counters from the run's metrics registry.

    Silent when the run saw no faults — these lines only appear when
    the supervisor actually retried, re-leased, or quarantined work,
    so a clean profile stays clean.
    """
    reg = obs.registry()

    def total(name: str) -> float:
        return sum(metric.value for _, metric in reg.select(name))

    retries = int(total("repro_chunk_retries_total"))
    deaths = int(total("repro_worker_deaths_total"))
    expired = int(total("repro_lease_expired_total"))
    quarantined = int(total("repro_chunks_quarantined"))
    degraded = int(total("repro_transport_degraded_total"))
    if not (retries or deaths or expired or quarantined or degraded):
        return
    print("recovery:")
    print(f"  {'chunk retries':<14} {retries:>8}  (re-leased and replayed)")
    print(f"  {'worker deaths':<14} {deaths:>8}  (crashed, pool replenished)")
    print(f"  {'leases expired':<14} {expired:>8}  (deadline hit, worker "
          f"killed)")
    if quarantined:
        print(f"  {'quarantined':<14} {quarantined:>8}  (chunks given up on; "
              f"see failure rows)")
    if degraded:
        print(f"  {'shm degraded':<14} {degraded:>8}  (runs fell back to "
              f"pickle wire)")


def _print_worker_profile() -> None:
    """Per-worker, per-stage table from the run's metrics registry.

    Only prints when the registry holds worker series (i.e. the run was
    profiled).  ``compile`` is the cache-build share of each worker's
    ``other`` time — the per-worker price of the first chunk of every
    distinct circuit — split out so a pool that re-compiles per worker
    is visibly different from one that is queue-bound.
    """
    reg = obs.registry()
    pids = reg.label_values("repro_chunks_total", "pid")
    if not pids:
        return
    print("per-worker:")
    print(f"  {'pid':>8} {'chunks':>6} {'shots':>9} {'compile':>9} "
          f"{'sample':>9} {'decode':>9} {'other':>9} {'busy':>9} "
          f"{'shots/s':>9}")
    for pid in pids:
        chunks = int(reg.value("repro_chunks_total", pid=pid) or 0)
        shots = int(reg.value("repro_shots_total", pid=pid) or 0)
        sample = reg.value(
            "repro_stage_seconds_total", stage="sample", pid=pid
        ) or 0.0
        decode = reg.value(
            "repro_stage_seconds_total", stage="decode", pid=pid
        ) or 0.0
        other = reg.value(
            "repro_stage_seconds_total", stage="other", pid=pid
        ) or 0.0
        compiled = sum(
            metric.value
            for _, metric in reg.select(
                "repro_cache_build_seconds_total", pid=pid
            )
        )
        busy = reg.value("repro_worker_seconds_total", pid=pid) or 0.0
        print(f"  {pid:>8} {chunks:>6} {shots:>9} {compiled:>8.2f}s "
              f"{sample:>8.2f}s {decode:>8.2f}s "
              f"{max(other - compiled, 0.0):>8.2f}s {busy:>8.2f}s "
              f"{obs.format_rate(shots, busy):>9}")


def _cmd_collect(args: argparse.Namespace) -> int:
    from repro.study import run

    # Materialize once: circuit construction is per-grid-point work and
    # both the banner and the run need the task list.
    tasks = _sweep_from_args(args).tasks()
    header = (
        f"{'code':>10} {'d':>3} {'p':>8} {'rounds':>6} | "
        f"{'shots':>9} {'errors':>7} {'rate':>10} "
        f"{'wilson 95% CI':>23} {'':>8}"
    )
    seed_label = "entropy" if args.seed is None else args.seed
    print(f"collecting {len(tasks)} task(s), workers={args.workers}, "
          f"seed={seed_label}" + (f", store={args.out}" if args.out else ""))
    print(header)
    print("-" * len(header))

    def report(stats) -> None:
        meta = stats.metadata
        low, high = stats.wilson()
        if stats.resumed:
            tag = "resumed"
        elif stats.failed_chunks:
            tag = "partial"  # quarantined chunks; rerun to re-attempt
        else:
            tag = f"{stats.seconds:7.2f}s"
        print(
            f"{meta.get('code', '?'):>10} {meta.get('distance', '?'):>3} "
            f"{meta.get('p', '?'):>8} {meta.get('rounds', '?'):>6} | "
            f"{stats.shots:>9} {stats.errors:>7} {stats.error_rate:>10.3e} "
            f"[{low:.3e}, {high:.3e}] {tag:>8}"
        )

    # --trace turns on span recording, --profile/--metrics-out turn on
    # the metrics registry; whatever this command enabled it tears down
    # (after exporting) so library users driving main() in-process are
    # unaffected.
    want_tracing = args.trace is not None
    want_metrics = args.profile or args.metrics_out is not None
    enabled_here = (want_tracing and not obs.is_tracing()) or (
        want_metrics and not obs.is_metrics()
    )
    if enabled_here:
        obs.enable(
            tracing=obs.is_tracing() or want_tracing,
            metrics=obs.is_metrics() or want_metrics,
        )
    try:
        result = run(
            tasks,
            _execution_options(args, store=args.out, progress=report),
        )
        if args.profile:
            _print_profile(result.stats)
        if args.trace is not None:
            spans = obs.drain_spans()
            timelines = obs.drain_timelines()
            if args.trace.endswith(".jsonl"):
                count = obs.write_spans_jsonl(spans, args.trace)
                print(f"trace: wrote {count} span(s) to {args.trace}")
            else:
                count = obs.write_chrome_trace(
                    spans, args.trace, timelines=timelines
                )
                print(f"trace: wrote {count} event(s) to {args.trace} "
                      f"(load in chrome://tracing or Perfetto)")
        if args.metrics_out is not None:
            obs.write_prometheus(obs.registry(), args.metrics_out)
            print(f"metrics: wrote {args.metrics_out}")
    finally:
        if enabled_here:
            obs.reset()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="SymPhase-reproduction stabilizer tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, needs_shots in (
        ("sample", True), ("detect", True), ("analyze", False), ("stats", False)
    ):
        p = sub.add_parser(
            name,
            epilog=_BACKEND_HELP if needs_shots else None,
            formatter_class=argparse.RawDescriptionHelpFormatter,
        )
        p.add_argument("circuit", help="path to a .stim-dialect circuit file")
        if needs_shots:
            p.add_argument("--shots", type=int, default=10)
            add_seed_argument(p)
            add_backend_argument(p, default="symbolic")

    sub.add_parser(
        "backends",
        help="list registered sampler backends and their capabilities",
    )
    sub.add_parser(
        "decoders",
        help="list registered syndrome decoders and their capabilities",
    )

    decode_parser = sub.add_parser(
        "decode",
        help="sample + decode + score one circuit (logical error rate)",
        description=(
            "Estimate the logical error rate of one noisy circuit: "
            "detector samples stream through the collection engine in "
            "derived-seed chunks (optionally across worker processes), "
            "each chunk decoded by the registry-resolved decoder.  "
            "Counts are independent of --workers."
        ),
        epilog=_DECODER_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    decode_parser.add_argument(
        "circuit", help="path to a .stim-dialect circuit file"
    )
    decode_parser.add_argument("--shots", type=int, default=10_000)
    decode_parser.add_argument(
        "--decoder",
        choices=decoder_choices() + ("none",),
        default="compiled-matching",
    )
    add_backend_argument(decode_parser, default="frame")
    decode_parser.add_argument(
        "--max-errors", type=int, default=None,
        help="stop early once this many logical errors accumulate",
    )
    add_execution_arguments(decode_parser)
    add_seed_argument(decode_parser)

    collect_parser = sub.add_parser(
        "collect",
        help="batch Monte-Carlo collection over a QEC code sweep",
        description=(
            "Estimate logical error rates for a sweep of memory "
            "experiments using the parallel collection engine.  Results "
            "stream to a JSONL store; rerunning with the same --out "
            "resumes, skipping completed rows.  Each distinct circuit is "
            "compiled once per worker process (fingerprint-keyed sampler "
            "cache); sampling afterwards never re-analyzes the circuit."
        ),
        epilog=_BACKEND_HELP + "\n" + _DECODER_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    collect_parser.add_argument(
        "--code", choices=["repetition", "surface", "both"], default="both"
    )
    collect_parser.add_argument(
        "--distances", default="3,5",
        help="comma-separated code distances (default 3,5)",
    )
    collect_parser.add_argument(
        "--probabilities", default="0.005,0.01,0.02",
        help="comma-separated physical error rates",
    )
    collect_parser.add_argument("--rounds", type=int, default=3)
    collect_parser.add_argument(
        "--decoder",
        choices=decoder_choices() + ("none",),
        default="compiled-matching",
        help="registry decoder name/alias, or 'none' to count raw flips",
    )
    add_backend_argument(collect_parser, default="symbolic")
    collect_parser.add_argument("--max-shots", type=int, default=10_000)
    collect_parser.add_argument(
        "--max-errors", type=int, default=None,
        help="stop a task early once this many logical errors accumulate",
    )
    add_execution_arguments(collect_parser)
    add_seed_argument(collect_parser)
    collect_parser.add_argument(
        "--out", default=None,
        help="JSONL result store path (enables resume)",
    )
    collect_parser.add_argument(
        "--profile", action="store_true",
        help=(
            "print a per-stage time breakdown (sample / decode / "
            "aggregate / pool overhead) plus a per-worker table with "
            "compile, queue-wait and transport attribution"
        ),
    )
    collect_parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help=(
            "record spans and chunk timelines; write a "
            "chrome://tracing-loadable JSON to PATH (or span JSONL "
            "when PATH ends in .jsonl)"
        ),
    )
    collect_parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metrics registry to PATH in Prometheus "
             "text exposition format",
    )

    args = parser.parse_args(argv)
    handlers = {
        "sample": _cmd_sample,
        "detect": _cmd_detect,
        "decode": _cmd_decode,
        "analyze": _cmd_analyze,
        "backends": _cmd_backends,
        "decoders": _cmd_decoders,
        "stats": _cmd_stats,
        "collect": _cmd_collect,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
