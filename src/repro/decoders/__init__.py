"""Decoders over detector error models.

The paper motivates fast sampling with "evaluate the performance of a
fault-tolerant gadget": draw millions of detector samples, decode them,
count logical failures.  This package closes that loop:

* :class:`MatchingDecoder` — minimum-weight perfect matching on
  graphlike DEMs (repetition and surface codes), via shortest paths +
  NetworkX blossom matching;
* :class:`LookupDecoder` — maximum-likelihood table decoding for small
  DEMs (exact up to the enumerated fault weight);
* :func:`logical_error_rate` — end-to-end: sample, decode, score.
"""

from repro.decoders.matching import MatchingDecoder
from repro.decoders.lookup import LookupDecoder
from repro.decoders.metrics import (
    logical_error_rate,
    shots_per_error,
    wilson_interval,
)

__all__ = [
    "LookupDecoder",
    "MatchingDecoder",
    "logical_error_rate",
    "shots_per_error",
    "wilson_interval",
]
