"""Decoders over detector error models.

The paper motivates fast sampling with "evaluate the performance of a
fault-tolerant gadget": draw millions of detector samples, decode them,
count logical failures.  This package closes that loop.  Every decoder
sits behind one protocol — ``compile_decoder(dem, name)`` returns an
object answering ``decode(syndrome)`` and ``decode_batch(syndromes)`` —
and is selected by registry name, mirroring :mod:`repro.backends`:

``matching`` (alias ``mwpm``)
    Minimum-weight perfect matching on graphlike DEMs via per-shot
    Dijkstra + NetworkX blossom.  The readable reference.
``compiled-matching`` (aliases ``cmwpm``, ``batch-matching``)
    The same matching decoder lowered once into flat CSR arrays with
    precomputed all-pairs shortest-path distances and path observable
    masks; batches decode through vectorized pair lookups.  Bitwise
    identical predictions to ``matching`` and the throughput default.
``lookup`` (alias ``table``)
    Maximum-likelihood table decoding for small DEMs (exact up to the
    enumerated fault weight).

:func:`logical_error_rate` runs the loop end to end: sample, decode,
score.

Decoder *classes* are imported lazily (PEP 562) and the registry
factories defer their imports, so name resolution — CLI ``choices=``,
``Task`` validation — never pays for NetworkX; only actually compiling
a matching decoder does.
"""

from repro.decoders.metrics import (
    logical_error_rate,
    shots_per_error,
    wilson_interval,
)
from repro.decoders.registry import (
    DecoderInfo,
    RegisteredDecoder,
    SyndromeDecoder,
    available_decoders,
    canonical_name,
    compile_decoder,
    decoder_choices,
    get_decoder,
    register_decoder,
)

__all__ = [
    "CompiledMatchingDecoder",
    "DecoderInfo",
    "LookupDecoder",
    "MatchingDecoder",
    "RegisteredDecoder",
    "SyndromeDecoder",
    "available_decoders",
    "build_decoding_graph",
    "canonical_name",
    "compile_decoder",
    "decoder_choices",
    "get_decoder",
    "logical_error_rate",
    "register_decoder",
    "shots_per_error",
    "wilson_interval",
]

_LAZY = {
    "MatchingDecoder": "repro.decoders.matching",
    "build_decoding_graph": "repro.decoders.matching",
    "CompiledMatchingDecoder": "repro.decoders.compiled",
    "LookupDecoder": "repro.decoders.lookup",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def _compile_matching(dem):
    from repro.decoders.matching import MatchingDecoder

    return MatchingDecoder(dem)


def _compile_compiled_matching(dem):
    from repro.decoders.compiled import CompiledMatchingDecoder

    return CompiledMatchingDecoder(dem)


def _compile_lookup(dem):
    from repro.decoders.lookup import LookupDecoder

    return LookupDecoder(dem)


register_decoder(
    DecoderInfo(
        name="matching",
        description=(
            "minimum-weight perfect matching (per-shot Dijkstra + "
            "blossom; the readable reference)"
        ),
        graphlike_only=True,
        compile_once=False,
    ),
    _compile_matching,
    aliases=("mwpm",),
)

register_decoder(
    DecoderInfo(
        name="compiled-matching",
        description=(
            "MWPM lowered to flat CSR arrays with precomputed all-pairs "
            "paths; batched decoding, bitwise identical to 'matching'"
        ),
        graphlike_only=True,
        batched=True,
        packed=True,
    ),
    _compile_compiled_matching,
    aliases=("cmwpm", "batch-matching"),
)

register_decoder(
    DecoderInfo(
        name="lookup",
        description=(
            "maximum-likelihood syndrome table (exact up to the "
            "enumerated fault weight; small DEMs only)"
        ),
        exact=True,
    ),
    _compile_lookup,
    aliases=("table",),
)
