"""Maximum-likelihood lookup-table decoder for small DEMs.

Enumerates fault sets up to a weight cap, records for each reachable
syndrome the most likely observable correction.  Exact (MAP over the
enumerated sets) for small codes; exponential in the cap, so strictly a
small-instance tool and a correctness reference for MatchingDecoder.
"""

from __future__ import annotations

import math
from itertools import combinations

import numpy as np

from repro.dem.model import DetectorErrorModel


class LookupDecoder:
    """Syndrome -> most-likely-correction table decoder."""

    def __init__(self, dem: DetectorErrorModel, max_weight: int = 2):
        self.n_detectors = dem.n_detectors
        self.n_observables = dem.n_observables
        self.table: dict[bytes, np.ndarray] = {}
        best_score: dict[bytes, float] = {}

        mechanisms = dem.mechanisms
        # P(fault set S) = prod(1-p) over all mechanisms (constant) times
        # prod p/(1-p) over S, so MAP ranks fault sets by the sum of
        # *log-odds*.  Plain sum-log-p would not rank correctly across
        # sets of different sizes: the prod(1-p) prior only factors out
        # of the odds ratio, not out of the raw likelihood.
        log_odds = []
        for m in mechanisms:
            p = min(max(m.probability, 1e-15), 1 - 1e-15)
            log_odds.append(math.log(p / (1 - p)))
        for weight in range(0, max_weight + 1):
            for combo in combinations(range(len(mechanisms)), weight):
                syndrome = np.zeros(self.n_detectors, dtype=np.uint8)
                correction = np.zeros(self.n_observables, dtype=np.uint8)
                score = 0.0
                for index in combo:
                    mech = mechanisms[index]
                    for d in mech.detectors:
                        syndrome[d] ^= 1
                    for o in mech.observables:
                        correction[o] ^= 1
                    score += log_odds[index]
                key = syndrome.tobytes()
                if score > best_score.get(key, -math.inf):
                    best_score[key] = score
                    self.table[key] = correction

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Most likely observable flips; zeros for unknown syndromes."""
        key = np.asarray(syndrome, dtype=np.uint8).tobytes()
        correction = self.table.get(key)
        if correction is None:
            return np.zeros(self.n_observables, dtype=np.uint8)
        return correction.copy()

    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray:
        syndromes = np.asarray(syndromes, dtype=np.uint8)
        if syndromes.shape[0] == 0:
            return np.zeros(
                (0, self.n_observables), dtype=np.uint8
            )
        return np.stack([self.decode(row) for row in syndromes])

    @property
    def n_syndromes(self) -> int:
        return len(self.table)
