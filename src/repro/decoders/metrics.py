"""End-to-end logical-error-rate estimation: sample, decode, score."""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.core import CompiledSampler, SymPhaseSimulator


def logical_error_rate(
    circuit: Circuit,
    decoder,
    shots: int,
    rng: np.random.Generator | None = None,
) -> float:
    """Fraction of shots where the decoder's predicted observable flips
    disagree with the true ones.

    Uses the compiled symbolic sampler, so the circuit is analyzed once
    regardless of ``shots`` — exactly the workflow the paper's
    introduction describes for evaluating fault-tolerant gadgets.
    """
    rng = rng or np.random.default_rng()
    sampler = CompiledSampler(SymPhaseSimulator.from_circuit(circuit))
    detectors, observables = sampler.sample_detectors(shots, rng)
    predictions = decoder.decode_batch(detectors)
    failures = (predictions != observables).any(axis=1)
    return float(failures.mean())
