"""End-to-end logical-error-rate estimation: sample, decode, score.

Also the statistics used by the collection engine's aggregation:
:func:`wilson_interval` (score confidence interval on a binomial
proportion — well-behaved at zero counts, unlike the normal
approximation) and :func:`shots_per_error` (the quantity that sets how
long a Monte-Carlo run must be to resolve a rate).
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.circuit import Circuit
from repro.core import CompiledSampler, SymPhaseSimulator
from repro.rng import as_generator


def wilson_interval(
    errors: int, shots: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for an observed ``errors / shots`` proportion.

    Returns ``(low, high)``; ``z`` is the normal quantile (1.96 for the
    conventional 95% interval).  With zero shots the proportion is
    unconstrained and the full ``(0, 1)`` interval is returned.
    """
    if errors < 0 or shots < 0 or errors > shots:
        raise ValueError(f"need 0 <= errors <= shots, got {errors}/{shots}")
    if shots == 0:
        return (0.0, 1.0)
    p_hat = errors / shots
    z2 = z * z
    denominator = 1.0 + z2 / shots
    center = (p_hat + z2 / (2 * shots)) / denominator
    half_width = (
        z
        * math.sqrt(p_hat * (1.0 - p_hat) / shots + z2 / (4.0 * shots * shots))
        / denominator
    )
    # At the extremes the bound is exactly the point estimate; clamp the
    # floating-point residue (center - half_width ~ 1e-19, not 0).
    low = 0.0 if errors == 0 else max(0.0, center - half_width)
    high = 1.0 if errors == shots else min(1.0, center + half_width)
    return (low, high)


def shots_per_error(errors: int, shots: int) -> float:
    """Average shots consumed per observed logical error.

    ``inf`` when no errors have been seen yet — the run has not resolved
    the rate, which is exactly the signal the engine's early-stopping
    logic needs.
    """
    if shots < 0 or errors < 0:
        raise ValueError("errors and shots must be non-negative")
    if errors == 0:
        return math.inf
    return shots / errors


def logical_error_rate(
    circuit: Circuit,
    decoder,
    shots: int,
    seed_or_rng: int | np.random.Generator | None = None,
) -> float:
    """Fraction of shots where the decoder's predicted observable flips
    disagree with the true ones.

    Uses the compiled symbolic sampler, so the circuit is analyzed once
    regardless of ``shots`` — exactly the workflow the paper's
    introduction describes for evaluating fault-tolerant gadgets.
    ``seed_or_rng`` may be an int seed, a Generator, or ``None``.
    """
    rng = as_generator(seed_or_rng)
    sampler = CompiledSampler(SymPhaseSimulator.from_circuit(circuit))
    detectors, observables = sampler.sample_detectors(shots, rng)
    predictions = decoder.decode_batch(detectors)
    failures = (predictions != observables).any(axis=1)
    return float(failures.mean())
