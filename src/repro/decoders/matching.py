"""Minimum-weight perfect matching decoder for graphlike DEMs.

Standard construction: every graphlike mechanism is an edge between the
(at most two) detectors it flips — single-detector mechanisms connect to
a virtual *boundary* node — weighted ``-log p/(1-p)``, carrying its
observable mask.  Decoding a syndrome:

1. collect the fired detectors (defects), plus the boundary if the
   defect count is odd;
2. build the complete graph on defects with Dijkstra shortest-path
   distances through the decoding graph;
3. find a minimum-weight perfect matching (NetworkX blossom on negated
   weights);
4. XOR the observable masks along each matched path — that is the
   predicted logical correction.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from repro.dem.model import DetectorErrorModel

_BOUNDARY = "boundary"


class MatchingDecoder:
    """MWPM decoder compiled from a graphlike DetectorErrorModel."""

    def __init__(self, dem: DetectorErrorModel):
        graphlike = dem.filter_graphlike()
        self.n_detectors = dem.n_detectors
        self.n_observables = dem.n_observables
        self.graph = nx.Graph()
        self.graph.add_node(_BOUNDARY)
        self.graph.add_nodes_from(range(dem.n_detectors))

        for mechanism in graphlike.mechanisms:
            if not mechanism.detectors and not mechanism.observables:
                continue
            if not mechanism.detectors:
                # Undetectable logical fault: no edge can represent it;
                # matching decoders simply cannot correct it.
                continue
            p = min(max(mechanism.probability, 1e-15), 1 - 1e-15)
            weight = -math.log(p / (1 - p))
            if len(mechanism.detectors) == 1:
                u, v = mechanism.detectors[0], _BOUNDARY
            else:
                u, v = mechanism.detectors
            mask = _observable_mask(mechanism.observables, self.n_observables)
            if self.graph.has_edge(u, v):
                # Keep the lighter (more likely) of parallel edges.
                if weight < self.graph[u][v]["weight"]:
                    self.graph[u][v].update(weight=weight, mask=mask)
            else:
                self.graph.add_edge(u, v, weight=weight, mask=mask)

        self._path_cache: dict = {}

    # -- decoding -----------------------------------------------------------

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Predict the observable flips for one detector sample."""
        defects = [int(d) for d in np.nonzero(np.asarray(syndrome))[0]]
        prediction = np.zeros(self.n_observables, dtype=np.uint8)
        if not defects:
            return prediction
        nodes = list(defects)
        if len(nodes) % 2 == 1:
            nodes.append(_BOUNDARY)

        complete = nx.Graph()
        pair_paths = {}
        for i, u in enumerate(nodes):
            for v in nodes[i + 1:]:
                distance, path = self._shortest(u, v)
                if distance == math.inf:
                    continue
                pair_paths[(u, v)] = path
                # max_weight_matching maximizes; negate to minimize.
                complete.add_edge(u, v, weight=-distance)
        matching = nx.max_weight_matching(complete, maxcardinality=True)

        for u, v in matching:
            key = (u, v) if (u, v) in pair_paths else (v, u)
            path = pair_paths[key]
            for a, b in zip(path[:-1], path[1:]):
                prediction ^= self.graph[a][b]["mask"]
        return prediction

    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray:
        """Decode many detector samples: shape (shots, n_detectors)."""
        syndromes = np.asarray(syndromes, dtype=np.uint8)
        out = np.zeros(
            (syndromes.shape[0], self.n_observables), dtype=np.uint8
        )
        # Identical syndromes decode identically — dedupe for speed.
        unique, inverse = np.unique(syndromes, axis=0, return_inverse=True)
        decoded = np.stack([self.decode(row) for row in unique])
        out[:] = decoded[inverse]
        return out

    # -- internals -------------------------------------------------------------

    def _shortest(self, u, v):
        key = (u, v)
        if key not in self._path_cache:
            try:
                distance, path = nx.single_source_dijkstra(
                    self.graph, u, v, weight="weight"
                )
            except nx.NetworkXNoPath:
                distance, path = math.inf, []
            self._path_cache[key] = (distance, path)
            self._path_cache[(v, u)] = (distance, list(reversed(path)))
        return self._path_cache[key]


def _observable_mask(observables: tuple[int, ...], n: int) -> np.ndarray:
    mask = np.zeros(n, dtype=np.uint8)
    for o in observables:
        mask[o] = 1
    return mask
