"""Minimum-weight perfect matching decoder for graphlike DEMs.

Standard construction: every graphlike mechanism is an edge between the
(at most two) detectors it flips — single-detector mechanisms connect to
a virtual *boundary* node — weighted ``-log p/(1-p)``, carrying its
observable mask.  Decoding a syndrome:

1. collect the fired detectors (defects), plus the boundary if the
   defect count is odd;
2. build the complete graph on defects with Dijkstra shortest-path
   distances through the decoding graph;
3. find a minimum-weight perfect matching (NetworkX blossom on negated
   weights);
4. XOR the observable masks along each matched path — that is the
   predicted logical correction.

:func:`build_decoding_graph` is shared with
:class:`~repro.decoders.compiled.CompiledMatchingDecoder`, which lowers
the same graph into flat arrays once instead of path-finding per shot.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from repro.dem.model import DetectorErrorModel

BOUNDARY = "boundary"
_P_CLAMP = 1e-15


def edge_weight(probability: float) -> float:
    """MWPM edge weight ``-log p/(1-p)`` with the probability clamped
    away from {0, 1} so the weight stays finite."""
    p = min(max(probability, _P_CLAMP), 1 - _P_CLAMP)
    return -math.log(p / (1 - p))


def dedupe_rows(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unique rows of a (shots, n) uint8 array plus the flat inverse.

    Identical syndromes decode identically, so batch decoders decode
    each unique row once and gather.  NumPy 2.0 returned a (shots, 1)
    inverse for ``axis=0``; the flatten makes the gather work on every
    supported NumPy.
    """
    unique, inverse = np.unique(rows, axis=0, return_inverse=True)
    return unique, np.asarray(inverse).reshape(-1)


def build_decoding_graph(dem: DetectorErrorModel) -> nx.Graph:
    """Lower a DEM's graphlike mechanisms into the decoding graph.

    Nodes are detector indices plus the virtual :data:`BOUNDARY`; each
    edge carries ``probability``, ``weight`` and observable ``mask``.

    Parallel mechanisms on the same detector pair:

    * identical observable masks — physically the two faults are
      indistinguishable and independent, so their probabilities
      XOR-convolve: ``p = p1 (1 - p2) + p2 (1 - p1)`` (either fires,
      not both — both firing cancels on every detector and observable);
    * different masks — a single edge cannot carry both corrections, so
      the lighter (more likely) edge is kept.  This is an approximation:
      the dropped mechanism's probability mass is ignored rather than
      folded in, which slightly overweights the surviving edge.  Exact
      handling would need a multigraph-aware matcher.
    """
    graph = nx.Graph()
    graph.add_node(BOUNDARY)
    graph.add_nodes_from(range(dem.n_detectors))

    for mechanism in dem.filter_graphlike().mechanisms:
        if not mechanism.detectors:
            # Undetectable fault (logical or invisible): no edge can
            # represent it; matching decoders simply cannot correct it.
            continue
        p = mechanism.probability
        if len(mechanism.detectors) == 1:
            u, v = mechanism.detectors[0], BOUNDARY
        else:
            u, v = mechanism.detectors
        mask = _observable_mask(mechanism.observables, dem.n_observables)
        if graph.has_edge(u, v):
            edge = graph[u][v]
            if np.array_equal(edge["mask"], mask):
                q = edge["probability"]
                merged = p * (1 - q) + q * (1 - p)
                edge.update(
                    probability=merged, weight=edge_weight(merged)
                )
            elif edge_weight(p) < edge["weight"]:
                edge.update(
                    probability=p, weight=edge_weight(p), mask=mask
                )
        else:
            graph.add_edge(
                u, v, probability=p, weight=edge_weight(p), mask=mask
            )
    return graph


class MatchingDecoder:
    """MWPM decoder compiled from a graphlike DetectorErrorModel.

    Path-finds per decoded syndrome (with a shortest-path cache); the
    batched :class:`~repro.decoders.compiled.CompiledMatchingDecoder`
    precomputes every distance at compile time instead and is the one to
    use for large batches.
    """

    def __init__(self, dem: DetectorErrorModel):
        self.n_detectors = dem.n_detectors
        self.n_observables = dem.n_observables
        self.graph = build_decoding_graph(dem)
        self._path_cache: dict = {}

    # -- decoding -----------------------------------------------------------

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Predict the observable flips for one detector sample."""
        defects = [int(d) for d in np.nonzero(np.asarray(syndrome))[0]]
        prediction = np.zeros(self.n_observables, dtype=np.uint8)
        if not defects:
            return prediction
        nodes = list(defects)
        if len(nodes) % 2 == 1:
            nodes.append(BOUNDARY)

        complete = nx.Graph()
        pair_paths = {}
        for i, u in enumerate(nodes):
            for v in nodes[i + 1:]:
                distance, path = self._shortest(u, v)
                if distance == math.inf:
                    continue
                pair_paths[(u, v)] = path
                # max_weight_matching maximizes; negate to minimize.
                complete.add_edge(u, v, weight=-distance)
        matching = nx.max_weight_matching(complete, maxcardinality=True)

        for u, v in matching:
            key = (u, v) if (u, v) in pair_paths else (v, u)
            path = pair_paths[key]
            for a, b in zip(path[:-1], path[1:]):
                prediction ^= self.graph[a][b]["mask"]
        return prediction

    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray:
        """Decode many detector samples: shape (shots, n_detectors)."""
        syndromes = np.asarray(syndromes, dtype=np.uint8)
        out = np.zeros(
            (syndromes.shape[0], self.n_observables), dtype=np.uint8
        )
        if syndromes.shape[0] == 0:
            return out
        unique, inverse = dedupe_rows(syndromes)
        decoded = np.stack([self.decode(row) for row in unique])
        out[:] = decoded[inverse]
        return out

    # -- internals -------------------------------------------------------------

    def _shortest(self, u, v):
        key = (u, v)
        if key not in self._path_cache:
            try:
                distance, path = nx.single_source_dijkstra(
                    self.graph, u, v, weight="weight"
                )
            except nx.NetworkXNoPath:
                distance, path = math.inf, []
            self._path_cache[key] = (distance, path)
            self._path_cache[(v, u)] = (distance, list(reversed(path)))
        return self._path_cache[key]


def _observable_mask(observables: tuple[int, ...], n: int) -> np.ndarray:
    mask = np.zeros(n, dtype=np.uint8)
    for o in observables:
        mask[o] = 1
    return mask
