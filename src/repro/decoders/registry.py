"""Name-keyed registry of syndrome decoders.

The mirror of :mod:`repro.backends` for the decoding side of the
pipeline: the engine workers, the experiment harness, the CLI and the
examples all resolve decoders through this registry, so adding a decoder
(say, a union-find or belief-propagation decoder) is one
:func:`register_decoder` call, not a code fork across five layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Protocol, runtime_checkable

import numpy as np

from repro.dem.model import DetectorErrorModel


@runtime_checkable
class SyndromeDecoder(Protocol):
    """What every compiled decoder must answer."""

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Predicted observable flips: uint8 array of shape (n_obs,)."""
        ...

    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray:
        """Predictions for a (shots, n_detectors) batch of syndromes:
        uint8 array of shape (shots, n_observables)."""
        ...


@dataclass(frozen=True)
class DecoderInfo:
    """Static capability description of one decoder.

    ``graphlike_only`` — the decoder silently restricts the DEM to its
    graphlike mechanisms (the standard MWPM practice); hyperedge
    probability mass is not corrected for.

    ``batched`` — ``decode_batch`` is vectorized across shots rather
    than a Python loop over ``decode``.

    ``packed`` — the decoder answers ``decode_batch_packed``: packed
    uint64 syndromes in, packed predictions out, bitwise identical to
    packing ``decode_batch``'s output.  The engine's hot path routes
    through it when set, never materializing unpacked uint8 matrices.

    ``exact`` — maximum-likelihood over the mechanisms it enumerates
    (the lookup table), as opposed to the matching approximation.

    ``compile_once`` — construction does all path-finding/enumeration
    up front; decoding afterwards never re-analyzes the DEM.
    """

    name: str
    description: str
    graphlike_only: bool = False
    batched: bool = False
    packed: bool = False
    exact: bool = False
    compile_once: bool = True


@dataclass(frozen=True)
class RegisteredDecoder:
    """A registered decoder: capability info plus its compile entry."""

    info: DecoderInfo
    factory: Callable[[DetectorErrorModel], SyndromeDecoder]

    def compile(self, dem: DetectorErrorModel) -> SyndromeDecoder:
        """Run this decoder's one-time analysis; returns the decoder."""
        return self.factory(dem)


_REGISTRY: dict[str, RegisteredDecoder] = {}
_ALIASES: dict[str, str] = {}


def register_decoder(
    info: DecoderInfo,
    factory: Callable[[DetectorErrorModel], SyndromeDecoder],
    aliases: Iterable[str] = (),
) -> RegisteredDecoder:
    """Register a decoder under ``info.name`` (plus optional aliases).

    Re-registering a name replaces it (tests swap in instrumented
    decoders); aliases may not shadow a canonical name.
    """
    aliases = tuple(aliases)
    if _ALIASES.get(info.name, info.name) != info.name:
        raise ValueError(
            f"name {info.name!r} is already an alias for "
            f"{_ALIASES[info.name]!r}"
        )
    for alias in aliases:
        if alias in _REGISTRY:
            raise ValueError(f"alias {alias!r} shadows a registered decoder")
        if _ALIASES.get(alias, info.name) != info.name:
            raise ValueError(
                f"alias {alias!r} already points to {_ALIASES[alias]!r}"
            )
    decoder = RegisteredDecoder(info=info, factory=factory)
    _REGISTRY[info.name] = decoder
    for alias in aliases:
        _ALIASES[alias] = info.name
    return decoder


def canonical_name(name: str) -> str:
    """Resolve a decoder name or alias to its canonical name.

    Raises ``KeyError`` naming the known decoders on an unknown name.
    """
    resolved = _ALIASES.get(name, name)
    if resolved not in _REGISTRY:
        known = ", ".join(sorted(set(_REGISTRY) | set(_ALIASES)))
        raise KeyError(f"unknown decoder {name!r} (known: {known})")
    return resolved


def get_decoder(name: str) -> RegisteredDecoder:
    """Look up a decoder by canonical name or alias."""
    return _REGISTRY[canonical_name(name)]


def available_decoders() -> tuple[str, ...]:
    """Sorted canonical names of every registered decoder."""
    return tuple(sorted(_REGISTRY))


def decoder_choices() -> tuple[str, ...]:
    """Canonical names plus aliases (for CLI ``choices=``)."""
    return tuple(sorted(set(_REGISTRY) | set(_ALIASES)))


def compile_decoder(
    dem: DetectorErrorModel, decoder: str = "matching"
) -> SyndromeDecoder:
    """Compile ``dem`` with the named decoder; returns the decoder."""
    return get_decoder(decoder).compile(dem)
