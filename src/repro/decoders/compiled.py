"""Compile-once batched MWPM decoding.

:class:`MatchingDecoder` rediscovers shortest paths while decoding:
every defect pair of every syndrome walks Dijkstra through a NetworkX
graph (amortized by a path cache, but still per-pair Python work).  The
compiled decoder does all path-finding at **compile time** instead:

* the decoding graph (shared construction — see
  :func:`~repro.decoders.matching.build_decoding_graph`) is lowered into
  flat CSR adjacency arrays;
* Dijkstra runs once from every node, producing an all-pairs distance
  matrix and, via the predecessor trees, a per-pair *path observable
  mask* (the XOR of edge masks along the shortest path);
* decoding a batch then dedupes identical syndromes, resolves the
  one- and two-defect syndromes (the bulk at QEC-relevant error rates)
  with pure array gathers, and matches small defect sets (up to 10
  nodes — virtually every remaining shot) by enumerating all perfect
  pairings at once: one ``(rows, pairings)`` total-weight tensor per
  defect-count group, built from vectorized distance lookups.  Blossom
  matching over the NetworkX graph survives only as the fallback for
  very large defect sets, unreachable pairs, and weight ties.

Both batch entry points — unpacked ``decode_batch`` and the packed-wire
``decode_batch_packed`` — reduce their unique rows to one CSR-style
defect view and share a single decode core, so the packed path (zero-row
short-circuit, void-view dedupe, defect extraction straight from the
uint64 words) predicts bit-for-bit what the unpacked path predicts.

Predictions are bitwise identical to :class:`MatchingDecoder`: the CSR
Dijkstra mirrors NetworkX's traversal exactly (same strictly-improving
relaxation, insertion-order tie-breaking on equal distances, adjacency
iteration in edge-insertion order); the enumerated matching is used
only where its optimum is unique (or every near-optimal pairing
predicts the same correction), and everything else goes through the
same ``nx.max_weight_matching`` call the reference makes.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from itertools import count

import networkx as nx
import numpy as np

import repro.obs as obs
from repro.decoders.matching import BOUNDARY, build_decoding_graph, dedupe_rows
from repro.dem.model import DetectorErrorModel
from repro.gf2 import bitops


def _count_decode_rows(total: int, nonzero: int, unique: int) -> None:
    """Per-worker dedupe-effectiveness counters for the packed decode
    path: of ``total`` rows, ``nonzero`` carried defects and only
    ``unique`` of those actually ran the decode core."""
    pid = str(os.getpid())
    obs.counter("repro_decode_rows_total", pid=pid).inc(total)
    obs.counter("repro_decode_nonzero_rows_total", pid=pid).inc(nonzero)
    obs.counter("repro_decode_unique_rows_total", pid=pid).inc(unique)

# Defect sets with more nodes than this fall back to blossom matching:
# the pairing count (k-1)!! reaches 10395 at k=12 — still one cheap
# vectorized reduction per row slab — but grows factorially beyond.
# (Each per-row blossom call costs ~ms of Python/NetworkX work, so at
# QEC-relevant rates the k=11..12 tail dominated whole-batch decoding
# when the ceiling sat at 10.)
_MAX_ENUM_NODES = 12
# Bound on elements materialized per enumeration slab, so one dense
# defect-count group cannot blow up memory.  The largest intermediate
# is the pre-sum gather of shape (rows, pairings, padded/2): 4M float64
# ~= 32 MB.
_ENUM_SLAB_ELEMENTS = 1 << 22
# Two pairings closer than this in total weight are treated as tied;
# float noise across differently-ordered sums is ~1e-13 at QEC weight
# scales, while mathematically distinct totals differ by far more.
_TIE_TOL = 1e-9

_PAIRINGS: dict[int, np.ndarray] = {}


def _pairings(k: int) -> np.ndarray:
    """All perfect pairings of ``k`` nodes: (pairings, k/2, 2) indices.

    Each pairing always couples the lowest unpaired node first, so every
    pairing appears exactly once.
    """
    if k not in _PAIRINGS:
        result: list[list[tuple[int, int]]] = []

        def recurse(avail: tuple[int, ...], acc: list) -> None:
            if not avail:
                result.append(acc)
                return
            first = avail[0]
            for i in range(1, len(avail)):
                recurse(
                    avail[1:i] + avail[i + 1:],
                    acc + [(first, avail[i])],
                )

        recurse(tuple(range(k)), [])
        _PAIRINGS[k] = np.array(result, dtype=np.int64).reshape(-1, k // 2, 2)
    return _PAIRINGS[k]


class CompiledMatchingDecoder:
    """MWPM decoder lowered to flat arrays with precomputed paths."""

    def __init__(self, dem: DetectorErrorModel):
        self.n_detectors = dem.n_detectors
        self.n_observables = dem.n_observables
        graph = build_decoding_graph(dem)

        # -- CSR lowering: detectors 0..n-1, boundary -> index n --------
        n_nodes = self.n_detectors + 1
        self._boundary = self.n_detectors
        index_of = {BOUNDARY: self._boundary}
        for d in range(self.n_detectors):
            index_of[d] = d
        indptr = np.zeros(n_nodes + 1, dtype=np.int64)
        indices: list[int] = []
        weights: list[float] = []
        edge_masks: list[np.ndarray] = []
        for node in list(range(self.n_detectors)) + [BOUNDARY]:
            # Adjacency iteration order == edge insertion order; the
            # reference's Dijkstra visits neighbors in exactly this
            # order, which is what makes tie-broken paths line up.
            for neighbor, data in graph.adj[node].items():
                indices.append(index_of[neighbor])
                weights.append(data["weight"])
                edge_masks.append(data["mask"])
            indptr[index_of[node] + 1] = len(indices)
        self._indptr = indptr
        self._indices = np.array(indices, dtype=np.int64)
        self._weights = np.array(weights, dtype=np.float64)
        if edge_masks:
            csr_masks = np.stack(edge_masks).astype(np.uint8)
        else:
            csr_masks = np.zeros((0, self.n_observables), dtype=np.uint8)

        # -- all-pairs Dijkstra at compile time -------------------------
        self._dist = np.full((n_nodes, n_nodes), np.inf, dtype=np.float64)
        self._mask = np.zeros(
            (n_nodes, n_nodes, self.n_observables), dtype=np.uint8
        )
        for source in range(n_nodes):
            dist, pred, pred_edge, order = self._dijkstra(source)
            self._dist[source] = dist
            row = self._mask[source]
            for v in order[1:]:
                row[v] = row[pred[v]] ^ csr_masks[pred_edge[v]]

    # -- decoding -----------------------------------------------------------

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Predict the observable flips for one detector sample."""
        syndrome = np.asarray(syndrome, dtype=np.uint8).reshape(1, -1)
        return self.decode_batch(syndrome)[0]

    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray:
        """Decode many detector samples: shape (shots, n_detectors)."""
        syndromes = np.asarray(syndromes, dtype=np.uint8)
        out = np.zeros(
            (syndromes.shape[0], self.n_observables), dtype=np.uint8
        )
        if syndromes.shape[0] == 0:
            return out
        unique, inverse = dedupe_rows(syndromes)
        rows, flat = np.nonzero(unique)
        counts = np.bincount(rows, minlength=unique.shape[0])
        decoded = self._decode_unique(counts, flat)
        return decoded[inverse]

    def decode_batch_packed(self, syndromes: np.ndarray) -> np.ndarray:
        """Decode packed syndromes; returns packed predictions.

        Input and output use the packed wire format: shot-major uint64
        rows — ``(shots, words_for(n_detectors))`` in,
        ``(shots, words_for(n_observables))`` out — little-endian bit
        order, padding bits zero.  All-zero rows (the bulk at low
        physical error rates) short-circuit before dedupe, the surviving
        rows dedupe through a contiguous void view, and defect indices
        come straight from the nonzero words.  The unique rows then run
        the same decode core as :meth:`decode_batch`, so predictions are
        bitwise identical to packing that method's output.
        """
        syndromes = np.asarray(syndromes, dtype=np.uint64)
        n_words = bitops.words_for(self.n_detectors)
        if syndromes.ndim != 2 or syndromes.shape[1] != n_words:
            raise ValueError(
                f"expected packed syndromes of shape (shots, {n_words}), "
                f"got {syndromes.shape}"
            )
        out = np.zeros(
            (syndromes.shape[0], bitops.words_for(self.n_observables)),
            dtype=np.uint64,
        )
        nonzero = bitops.nonzero_rows_packed(syndromes)
        if nonzero.size == 0:
            if obs.is_metrics():
                _count_decode_rows(syndromes.shape[0], 0, 0)
            return out
        unique, inverse = bitops.dedupe_rows_packed(syndromes[nonzero])
        if obs.is_metrics():
            _count_decode_rows(
                syndromes.shape[0], int(nonzero.size), int(unique.shape[0])
            )
        rows, flat = bitops.nonzero_bits(unique)
        counts = np.bincount(rows, minlength=unique.shape[0])
        decoded = self._decode_unique(counts, flat)
        out[nonzero] = bitops.pack_rows(decoded)[inverse]
        return out

    def _decode_unique(
        self, counts: np.ndarray, flat: np.ndarray
    ) -> np.ndarray:
        """Decode deduplicated syndromes given per-row defect counts and
        the flat (row-major, ascending) defect index stream.

        The shared core of the packed and unpacked batch paths: both
        reduce their unique rows to this CSR-style view, so their
        predictions agree bit for bit by construction.
        """
        offsets = np.zeros(counts.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        decoded = np.zeros((counts.size, self.n_observables), np.uint8)

        # One defect matches to the boundary, two defects to each other:
        # both are a single precomputed pair — pure array gathers.
        (one,) = np.nonzero(counts == 1)
        if one.size:
            defect = flat[offsets[one]]
            finite = np.isfinite(self._dist[defect, self._boundary])
            decoded[one[finite]] = self._mask[
                defect[finite], self._boundary
            ]
        (two,) = np.nonzero(counts == 2)
        if two.size:
            pairs = flat[offsets[two][:, None] + np.arange(2)]
            finite = np.isfinite(self._dist[pairs[:, 0], pairs[:, 1]])
            decoded[two[finite]] = self._mask[
                pairs[finite, 0], pairs[finite, 1]
            ]

        # Three or more defects: enumerate perfect pairings per
        # defect-count group, vectorized over all rows of the group.
        for padded in range(4, _MAX_ENUM_NODES + 2, 2):
            self._enumerate_group(counts, offsets, flat, padded, decoded)
        for row in np.nonzero(counts > _MAX_ENUM_NODES)[0]:
            decoded[row] = self._match(
                flat[offsets[row]: offsets[row] + counts[row]]
            )
        return decoded

    def _enumerate_group(
        self,
        counts: np.ndarray,
        offsets: np.ndarray,
        flat: np.ndarray,
        padded: int,
        decoded: np.ndarray,
    ) -> None:
        """Decode every row whose defect set pads to ``padded`` nodes."""
        groups = []
        (odd,) = np.nonzero(counts == padded - 1)
        if odd.size:
            defects = flat[offsets[odd][:, None] + np.arange(padded - 1)]
            boundary = np.full((odd.size, 1), self._boundary, np.int64)
            groups.append((odd, np.hstack([defects, boundary])))
        (even,) = np.nonzero(counts == padded)
        if even.size:
            groups.append(
                (even, flat[offsets[even][:, None] + np.arange(padded)])
            )
        if not groups:
            return
        rows = np.concatenate([g[0] for g in groups])
        nodes = np.concatenate([g[1] for g in groups])

        pairings = _pairings(padded)
        # Slab the group so the (rows, pairings, pairs-per-pairing)
        # gather stays memory-bounded; rows are independent, so
        # slabbing cannot change any prediction.
        slab = max(
            1,
            _ENUM_SLAB_ELEMENTS // (pairings.shape[0] * pairings.shape[1]),
        )
        for start in range(0, rows.size, slab):
            self._enumerate_slab(
                rows[start:start + slab],
                nodes[start:start + slab],
                pairings,
                decoded,
            )

    def _enumerate_slab(
        self,
        rows: np.ndarray,
        nodes: np.ndarray,
        pairings: np.ndarray,
        decoded: np.ndarray,
    ) -> None:
        """Vectorized minimum-weight pairing for one slab of rows."""
        dist = self._dist[nodes[:, :, None], nodes[:, None, :]]
        totals = dist[:, pairings[:, :, 0], pairings[:, :, 1]].sum(axis=2)
        span = np.arange(rows.size)
        best_index = totals.argmin(axis=1)
        best = totals[span, best_index]
        near = totals <= best[:, None] + _TIE_TOL

        chosen = pairings[best_index]
        a = np.take_along_axis(nodes, chosen[:, :, 0], axis=1)
        b = np.take_along_axis(nodes, chosen[:, :, 1], axis=1)
        lo, hi = np.minimum(a, b), np.maximum(a, b)
        predictions = np.bitwise_xor.reduce(self._mask[lo, hi], axis=1)

        finite = np.isfinite(best)
        unsafe = ~finite | (near.sum(axis=1) > 1)
        decoded[rows[~unsafe]] = predictions[~unsafe]
        for r in np.nonzero(unsafe)[0]:
            decoded[rows[r]] = self._resolve_tied(
                nodes[r], pairings, near[r], finite[r]
            )

    def _resolve_tied(
        self,
        node_row: np.ndarray,
        pairings: np.ndarray,
        near_row: np.ndarray,
        finite: bool,
    ) -> np.ndarray:
        """A row with unreachable pairs or a weight tie.

        If every near-optimal pairing predicts the same correction the
        tie is harmless; otherwise (and for unreachable pairs, where
        maximum-cardinality semantics kick in) defer to the same blossom
        call the reference decoder makes, so tie-breaking agrees
        bitwise.
        """
        defects = node_row[node_row != self._boundary]
        if finite:
            tied = pairings[np.nonzero(near_row)[0]]
            a = node_row[tied[:, :, 0]]
            b = node_row[tied[:, :, 1]]
            lo, hi = np.minimum(a, b), np.maximum(a, b)
            predictions = np.bitwise_xor.reduce(self._mask[lo, hi], axis=1)
            if not np.any(predictions != predictions[0]):
                return predictions[0]
        return self._match(defects)

    # -- internals -------------------------------------------------------------

    def _match(self, defects: np.ndarray) -> np.ndarray:
        """Blossom-match >= 3 defects over precomputed pair distances."""
        nodes = [int(d) for d in defects]
        labels: list = list(nodes)
        idx = list(nodes)
        if len(nodes) % 2 == 1:
            labels.append(BOUNDARY)
            idx.append(self._boundary)
        sub = self._dist[np.ix_(idx, idx)]

        complete = nx.Graph()
        for i in range(len(idx)):
            for j in range(i + 1, len(idx)):
                if np.isfinite(sub[i, j]):
                    complete.add_edge(labels[i], labels[j], weight=-sub[i, j])
        matching = nx.max_weight_matching(complete, maxcardinality=True)

        prediction = np.zeros(self.n_observables, dtype=np.uint8)
        for u, v in matching:
            a = self._boundary if u == BOUNDARY else u
            b = self._boundary if v == BOUNDARY else v
            # The reference XORs the path found from the pair's earlier
            # node in defect order (the smaller index; boundary last) —
            # read the mask from the same direction.
            if a > b:
                a, b = b, a
            prediction ^= self._mask[a, b]
        return prediction

    def _dijkstra(self, source: int):
        """NetworkX-identical Dijkstra over the CSR arrays.

        Returns (distances, predecessor node, predecessor CSR edge slot,
        finalization order).  Ties on the heap resolve by insertion
        order and relaxation is strictly-improving only, matching
        ``nx.single_source_dijkstra`` so path choices (and therefore
        observable masks) agree with the reference decoder even between
        equal-weight paths.
        """
        n_nodes = self._indptr.size - 1
        dist = np.full(n_nodes, np.inf, dtype=np.float64)
        pred = np.full(n_nodes, -1, dtype=np.int64)
        pred_edge = np.full(n_nodes, -1, dtype=np.int64)
        final = np.zeros(n_nodes, dtype=bool)
        order: list[int] = []
        seen: dict[int, float] = {source: 0.0}
        tiebreak = count()
        fringe: list[tuple[float, int, int]] = [(0.0, next(tiebreak), source)]
        while fringe:
            d, _, v = heappop(fringe)
            if final[v]:
                continue
            final[v] = True
            dist[v] = d
            order.append(v)
            for slot in range(self._indptr[v], self._indptr[v + 1]):
                u = int(self._indices[slot])
                vu = d + self._weights[slot]
                if not final[u] and (u not in seen or vu < seen[u]):
                    seen[u] = vu
                    heappush(fringe, (vu, next(tiebreak), u))
                    pred[u] = v
                    pred_edge[u] = slot
        return dist, pred, pred_edge, order
