"""Dense unitaries for the supported Clifford gate set.

Single-qubit names follow Stim's dialect where one exists.  Two-qubit
controlled gates use the convention "first target is the control"; the
``XC*``/``YC*`` variants control on the X/Y basis, matching Stim.
"""

from __future__ import annotations

import numpy as np

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_H = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
_S = np.array([[1, 0], [0, 1j]], dtype=complex)

_SQRT_X = np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex) / 2
_SQRT_Y = np.array([[1 + 1j, -1 - 1j], [1 + 1j, 1 + 1j]], dtype=complex) / 2
_H_XY = np.array([[0, 1 - 1j], [1 + 1j, 0]], dtype=complex) / np.sqrt(2)
_H_YZ = np.array([[1, -1j], [1j, -1]], dtype=complex) / np.sqrt(2)
# Cyclic permutations X -> Y -> Z -> X (C_XYZ) and its inverse.
_C_XYZ = np.array([[1 - 1j, -1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex) / 2
_C_ZYX = _C_XYZ.conj().T


def _controlled(control_eigh: np.ndarray, applied: np.ndarray) -> np.ndarray:
    """Gate applying ``applied`` to the target when the control qubit is in
    the -1 eigenspace of ``control_eigh``."""
    proj_plus = (np.eye(2) + control_eigh) / 2
    proj_minus = (np.eye(2) - control_eigh) / 2
    return np.kron(proj_plus, _I) + np.kron(proj_minus, applied)


_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)
_ISWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
)


def _sqrt_pp(pauli_a: np.ndarray, pauli_b: np.ndarray, sign: int = 1) -> np.ndarray:
    """(I ± i P(x)Q)/sqrt(2) — the SQRT_XX / SQRT_YY / SQRT_ZZ family."""
    kron = np.kron(pauli_a, pauli_b)
    return (np.eye(4, dtype=complex) + sign * 1j * kron) / np.sqrt(2)


UNITARIES_1Q: dict[str, np.ndarray] = {
    "I": _I,
    "X": _X,
    "Y": _Y,
    "Z": _Z,
    "H": _H,
    "S": _S,
    "S_DAG": _S.conj().T,
    "SQRT_X": _SQRT_X,
    "SQRT_X_DAG": _SQRT_X.conj().T,
    "SQRT_Y": _SQRT_Y,
    "SQRT_Y_DAG": _SQRT_Y.conj().T,
    "SQRT_Z": _S,
    "SQRT_Z_DAG": _S.conj().T,
    "H_XY": _H_XY,
    "H_XZ": _H,
    "H_YZ": _H_YZ,
    "C_XYZ": _C_XYZ,
    "C_ZYX": _C_ZYX,
}

UNITARIES_2Q: dict[str, np.ndarray] = {
    "CX": _controlled(_Z, _X),
    "CY": _controlled(_Z, _Y),
    "CZ": _controlled(_Z, _Z),
    "XCX": _controlled(_X, _X),
    "XCY": _controlled(_X, _Y),
    "XCZ": _controlled(_X, _Z),
    "YCX": _controlled(_Y, _X),
    "YCY": _controlled(_Y, _Y),
    "YCZ": _controlled(_Y, _Z),
    "SWAP": _SWAP,
    "ISWAP": _ISWAP,
    "ISWAP_DAG": _ISWAP.conj().T,
    "SQRT_XX": _sqrt_pp(_X, _X, +1),
    "SQRT_XX_DAG": _sqrt_pp(_X, _X, -1),
    "SQRT_YY": _sqrt_pp(_Y, _Y, +1),
    "SQRT_YY_DAG": _sqrt_pp(_Y, _Y, -1),
    "SQRT_ZZ": _sqrt_pp(_Z, _Z, +1),
    "SQRT_ZZ_DAG": _sqrt_pp(_Z, _Z, -1),
}
