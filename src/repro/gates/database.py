"""Registry of all instruction names understood by the circuit parser.

Unitary gates carry their conjugation table; measurement / reset / noise
/ annotation instructions carry structural metadata the simulators need
(arity of qubit targets, number of probability arguments, measurement
basis, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.gates.tables import ConjugationTable, conjugation_table
from repro.gates.unitaries import UNITARIES_1Q, UNITARIES_2Q


@dataclass(frozen=True)
class GateData:
    """Static description of one instruction type."""

    name: str
    kind: str  # "unitary" | "measure" | "reset" | "measure_reset" | "noise" | "annotation"
    targets_per_op: int = 1  # qubits consumed per application (0 = free-form)
    basis: str = "Z"  # measurement/reset basis
    n_args: int = 0  # required parens arguments (-1 = variable)
    produces_record: bool = False

    @property
    def is_unitary(self) -> bool:
        return self.kind == "unitary"

    @property
    def table(self) -> ConjugationTable:
        if not self.is_unitary:
            raise ValueError(f"{self.name} is not a unitary gate")
        return conjugation_table(self.name)


def _build_registry() -> dict[str, GateData]:
    registry: dict[str, GateData] = {}
    for name in UNITARIES_1Q:
        registry[name] = GateData(name, "unitary", targets_per_op=1)
    for name in UNITARIES_2Q:
        registry[name] = GateData(name, "unitary", targets_per_op=2)

    for basis in ("Z", "X", "Y"):
        suffix = "" if basis == "Z" else basis
        registry[f"M{suffix}"] = GateData(
            f"M{suffix}", "measure", basis=basis, produces_record=True
        )
        registry[f"R{suffix}"] = GateData(f"R{suffix}", "reset", basis=basis)
        registry[f"MR{suffix}"] = GateData(
            f"MR{suffix}", "measure_reset", basis=basis, produces_record=True
        )

    registry["X_ERROR"] = GateData("X_ERROR", "noise", n_args=1)
    registry["Y_ERROR"] = GateData("Y_ERROR", "noise", n_args=1)
    registry["Z_ERROR"] = GateData("Z_ERROR", "noise", n_args=1)
    registry["DEPOLARIZE1"] = GateData("DEPOLARIZE1", "noise", n_args=1)
    registry["DEPOLARIZE2"] = GateData(
        "DEPOLARIZE2", "noise", targets_per_op=2, n_args=1
    )
    registry["PAULI_CHANNEL_1"] = GateData("PAULI_CHANNEL_1", "noise", n_args=3)
    registry["PAULI_CHANNEL_2"] = GateData(
        "PAULI_CHANNEL_2", "noise", targets_per_op=2, n_args=15
    )
    registry["CORRELATED_ERROR"] = GateData(
        "CORRELATED_ERROR", "noise", targets_per_op=0, n_args=1
    )

    registry["TICK"] = GateData("TICK", "annotation", targets_per_op=0)
    registry["DETECTOR"] = GateData("DETECTOR", "annotation", targets_per_op=0, n_args=-1)
    registry["OBSERVABLE_INCLUDE"] = GateData(
        "OBSERVABLE_INCLUDE", "annotation", targets_per_op=0, n_args=1
    )
    registry["QUBIT_COORDS"] = GateData(
        "QUBIT_COORDS", "annotation", targets_per_op=0, n_args=-1
    )
    registry["SHIFT_COORDS"] = GateData(
        "SHIFT_COORDS", "annotation", targets_per_op=0, n_args=-1
    )
    return registry


GATES: dict[str, GateData] = _build_registry()

GATE_ALIASES: dict[str, str] = {
    "CNOT": "CX",
    "ZCX": "CX",
    "ZCY": "CY",
    "ZCZ": "CZ",
    "MZ": "M",
    "RZ": "R",
    "MRZ": "MR",
    "E": "CORRELATED_ERROR",
}


@lru_cache(maxsize=None)
def get_gate(name: str) -> GateData:
    """Look up an instruction by name or alias (case-insensitive)."""
    canonical = name.upper()
    canonical = GATE_ALIASES.get(canonical, canonical)
    if canonical not in GATES:
        raise KeyError(f"unknown instruction {name!r}")
    return GATES[canonical]
