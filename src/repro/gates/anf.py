"""Algebraic-normal-form gate kernels for word-parallel tableau updates.

A conjugation table maps input bits ``(x, z)`` (or ``(x1, z1, x2, z2)``)
to output bits plus a sign flip.  Each output bit is a boolean function
of the inputs; its ANF — XOR of AND-monomials — evaluates *word
parallel*: with inputs as packed uint64 vectors over 64 tableau rows,
one monomial is a few ANDs and the function a few XORs, updating 64 rows
per word op.  This is how SIMD tableau simulators (Stim, SymPhase.jl)
implement gates; here it is derived automatically from the tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.gates.tables import conjugation_table

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def moebius_transform(values: np.ndarray) -> np.ndarray:
    """Truth table (indexed by input bits) -> ANF monomial coefficients.

    ``values[i]`` is the function value where input bit ``j`` of ``i``
    is the ``j``-th input variable; the returned ``coeffs[m]`` is the
    coefficient of the monomial multiplying exactly the variables in the
    bit-set ``m``.
    """
    coeffs = np.asarray(values, dtype=np.uint8).copy()
    n = coeffs.size
    if n & (n - 1):
        raise ValueError("truth table length must be a power of two")
    step = 1
    while step < n:
        for start in range(0, n, 2 * step):
            coeffs[start + step: start + 2 * step] ^= coeffs[start: start + step]
        step *= 2
    return coeffs


@dataclass(frozen=True)
class GateKernel:
    """Word-parallel update rule for one gate.

    ``monomials[k]`` lists, for output ``k``, the input-variable index
    tuples whose AND-monomials XOR into that output.  Outputs are ordered
    ``(x', z', flip)`` for 1-qubit gates and
    ``(x1', z1', x2', z2', flip)`` for 2-qubit gates; input variables are
    ordered the same way (x₁ is variable 0).
    """

    n_qubits: int
    monomials: tuple[tuple[tuple[int, ...], ...], ...]

    def evaluate(self, inputs: list[np.ndarray]) -> list[np.ndarray]:
        """Apply the kernel to packed input words; returns output words."""
        outputs = []
        for terms in self.monomials:
            acc = np.zeros_like(inputs[0])
            for term in terms:
                if not term:
                    acc = acc ^ _ALL_ONES
                    continue
                prod = inputs[term[0]]
                for var in term[1:]:
                    prod = prod & inputs[var]
                acc = acc ^ prod
            outputs.append(acc)
        return outputs


@lru_cache(maxsize=None)
def gate_kernel(name: str) -> GateKernel:
    """Derive (and cache) the ANF kernel of a named unitary gate."""
    table = conjugation_table(name)
    n_vars = 2 * table.n_qubits
    n_entries = 1 << n_vars

    # Truth tables per output, indexed with variable j at bit j.  The
    # conjugation table instead indexes with x1 at the HIGH bit, so
    # remap: table index has variable 0 (x1) at bit n_vars-1.
    truth = np.zeros((n_vars + 1, n_entries), dtype=np.uint8)
    for i in range(n_entries):
        table_index = 0
        for var in range(n_vars):
            bit = (i >> var) & 1
            table_index |= bit << (n_vars - 1 - var)
        truth[: n_vars, i] = table.outputs[table_index]
        truth[n_vars, i] = table.flips[table_index]

    monomials = []
    for output in range(n_vars + 1):
        coeffs = moebius_transform(truth[output])
        terms = []
        for monomial in range(n_entries):
            if coeffs[monomial]:
                term = tuple(
                    var for var in range(n_vars) if (monomial >> var) & 1
                )
                terms.append(term)
        monomials.append(tuple(terms))
    return GateKernel(table.n_qubits, tuple(monomials))
