"""Clifford gate database.

Every supported unitary gate is defined once by its dense matrix
(:mod:`repro.gates.unitaries`); its action on the stabilizer tableau —
the map ``(x, z) -> (x', z', phase flip)`` per qubit pattern — is derived
*numerically* from that matrix at first use (:mod:`repro.gates.tables`).
Nothing on the simulation path is hand-transcribed, so the conjugation
semantics cannot drift from the unitaries.
"""

from repro.gates.database import GATE_ALIASES, GATES, GateData, get_gate
from repro.gates.tables import ConjugationTable, conjugation_table

__all__ = [
    "GATES",
    "GATE_ALIASES",
    "GateData",
    "get_gate",
    "ConjugationTable",
    "conjugation_table",
]
