"""Conjugation tables derived numerically from gate unitaries.

For a k-qubit Clifford ``U`` and each of the ``4^k`` Hermitian basis
Paulis ``P`` (sign +1), ``U P U†`` is again a Hermitian Pauli with a ±1
sign.  The table records, for each input ``(x, z)`` bit pattern, the
output bit pattern and the sign flip.  Tableau simulators then apply a
gate to all rows at once with three fancy-indexing reads.

Index convention (matching the tableau column extraction order):

* 1 qubit:  ``index = 2 x + z``                      (4 entries)
* 2 qubits: ``index = 8 x1 + 4 z1 + 2 x2 + z2``      (16 entries)
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import product

import numpy as np

from repro.pauli.dense import dense_pauli
from repro.pauli.pauli_string import PauliString


@dataclass(frozen=True)
class ConjugationTable:
    """Vectorizable conjugation action of one Clifford gate.

    ``outputs`` has shape ``(4^k, 2k)`` — the output (x..., z...) bits per
    input index — and ``flips`` has shape ``(4^k,)`` with the sign bit.
    """

    n_qubits: int
    outputs: np.ndarray
    flips: np.ndarray

    def apply_1q(
        self, x: np.ndarray, z: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Map column bit-vectors of a tableau through a 1-qubit gate."""
        idx = (x << 1) | z
        out = self.outputs[idx]
        return out[:, 0], out[:, 1], self.flips[idx]

    def apply_2q(
        self,
        x1: np.ndarray,
        z1: np.ndarray,
        x2: np.ndarray,
        z2: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Map column bit-vectors of a tableau through a 2-qubit gate."""
        idx = (x1 << 3) | (z1 << 2) | (x2 << 1) | z2
        out = self.outputs[idx]
        return out[:, 0], out[:, 1], out[:, 2], out[:, 3], self.flips[idx]

    def symplectic_matrix(self) -> np.ndarray:
        """The phase-free linear action on (x1, z1, x2, z2, ...) bits.

        Column ``j`` is the image of the ``j``-th symplectic basis vector;
        entry ``(i, j)`` says whether output bit ``i`` picks up input bit
        ``j``.  Pauli-frame propagation uses exactly this matrix (frame
        signs are irrelevant to measurement flips).
        """
        dim = 2 * self.n_qubits
        matrix = np.zeros((dim, dim), dtype=np.uint8)
        for j in range(dim):
            index = 1 << (dim - 1 - j)  # basis vector with input bit j set
            matrix[:, j] = self.outputs[index]
        return matrix


def _hermitian_pauli(xs: tuple[int, ...], zs: tuple[int, ...]) -> PauliString:
    """The +1-sign Hermitian Pauli with the given bit pattern."""
    y_count = sum(x & z for x, z in zip(xs, zs))
    return PauliString(
        np.array(xs, dtype=np.uint8), np.array(zs, dtype=np.uint8), y_count
    )


def _decompose_pauli(matrix: np.ndarray, n_qubits: int) -> tuple[tuple, tuple, int]:
    """Recognize a dense matrix as ±(Hermitian Pauli); return (xs, zs, flip)."""
    for xs in product((0, 1), repeat=n_qubits):
        for zs in product((0, 1), repeat=n_qubits):
            candidate = dense_pauli(_hermitian_pauli(xs, zs))
            if np.allclose(matrix, candidate, atol=1e-9):
                return xs, zs, 0
            if np.allclose(matrix, -candidate, atol=1e-9):
                return xs, zs, 1
    raise ValueError("matrix is not a Hermitian Pauli string — gate is not Clifford")


@lru_cache(maxsize=None)
def _table_from_key(name: str) -> ConjugationTable:
    from repro.gates.unitaries import UNITARIES_1Q, UNITARIES_2Q

    if name in UNITARIES_1Q:
        unitary, n_qubits = UNITARIES_1Q[name], 1
    elif name in UNITARIES_2Q:
        unitary, n_qubits = UNITARIES_2Q[name], 2
    else:
        raise KeyError(f"unknown unitary gate {name!r}")

    n_entries = 4**n_qubits
    outputs = np.zeros((n_entries, 2 * n_qubits), dtype=np.uint8)
    flips = np.zeros(n_entries, dtype=np.uint8)
    u_dag = unitary.conj().T
    for bits in product((0, 1), repeat=2 * n_qubits):
        # bits are ordered (x1, z1, x2, z2, ...), matching the index rule.
        xs = bits[0::2]
        zs = bits[1::2]
        index = 0
        for b in bits:
            index = (index << 1) | b
        conjugated = unitary @ dense_pauli(_hermitian_pauli(xs, zs)) @ u_dag
        out_xs, out_zs, flip = _decompose_pauli(conjugated, n_qubits)
        interleaved = [v for pair in zip(out_xs, out_zs) for v in pair]
        outputs[index] = interleaved
        flips[index] = flip
    return ConjugationTable(n_qubits, outputs, flips)


def conjugation_table(name: str) -> ConjugationTable:
    """The conjugation table for a named unitary gate (cached)."""
    return _table_from_key(name)
