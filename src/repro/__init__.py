"""SymPhase reproduction: phase symbolization for fast stabilizer sampling.

Public API re-exports the main entry points:

- :class:`repro.circuit.Circuit` — circuit IR + Stim-dialect parser.
- :class:`repro.core.SymPhaseSimulator` — Algorithm 1 (symbolic phases).
- :class:`repro.core.CompiledSampler` — Eq. 4 matmul sampler.
- :class:`repro.frame.FrameSimulator` — Pauli-frame baseline (Stim's
  sampling algorithm), the comparison target of the paper's evaluation;
  compiled once into a vectorized frame program by default.
- :func:`repro.backends.compile_backend` — one protocol over every
  sampler backend, selected by registry name.
- :class:`repro.tableau.Tableau` — Aaronson–Gottesman tableau.
- :func:`repro.engine.collect` / :class:`repro.engine.Task` — parallel
  Monte-Carlo collection engine (``python -m repro collect``).
"""

from repro.backends import available_backends, compile_backend
from repro.circuit import Circuit
from repro.core import CompiledSampler, SymPhaseSimulator, compile_sampler
from repro.frame import FrameSimulator
from repro.rng import as_generator
from repro.tableau import Tableau

__version__ = "1.2.0"

__all__ = [
    "Circuit",
    "CompiledSampler",
    "FrameSimulator",
    "SymPhaseSimulator",
    "Tableau",
    "as_generator",
    "available_backends",
    "compile_backend",
    "compile_sampler",
    "__version__",
]
