"""SymPhase reproduction: phase symbolization for fast stabilizer sampling.

The front door is :mod:`repro.study` — one fluent, compile-once path
from circuit to threshold curve:

- :meth:`repro.circuit.Circuit.compile` — bind a circuit to a sampler
  backend and a decoder; the returned
  :class:`~repro.study.CompiledCircuit` handle answers ``sample``,
  ``detect``, ``decode`` and ``logical_error_rate``.
- :class:`repro.study.Sweep` — a declarative (code x distance x noise)
  task grid; :meth:`~repro.study.Sweep.collect` runs it through the
  parallel engine under an :class:`~repro.study.ExecutionOptions`
  policy and returns a typed :class:`~repro.study.SweepResult`.

The layers underneath remain public for direct use:

- :class:`repro.circuit.Circuit` — circuit IR + Stim-dialect parser.
- :class:`repro.core.SymPhaseSimulator` — Algorithm 1 (symbolic phases).
- :class:`repro.core.CompiledSampler` — Eq. 4 matmul sampler.
- :class:`repro.frame.FrameSimulator` — Pauli-frame baseline (Stim's
  sampling algorithm), the comparison target of the paper's evaluation.
- :func:`repro.backends.compile_backend` — one protocol over every
  sampler backend, selected by registry name.
- :class:`repro.tableau.Tableau` — Aaronson–Gottesman tableau.
- :func:`repro.engine.collect` / :class:`repro.engine.Task` — the
  collection engine machinery (``python -m repro collect``).
"""

from repro.backends import available_backends, compile_backend
from repro.circuit import Circuit
from repro.core import CompiledSampler, SymPhaseSimulator, compile_sampler
from repro.frame import FrameSimulator
from repro.rng import as_generator
from repro.study import (
    CompiledCircuit,
    ExecutionOptions,
    Sweep,
    SweepResult,
    run,
)
from repro.tableau import Tableau

__version__ = "1.3.0"

__all__ = [
    "Circuit",
    "CompiledCircuit",
    "CompiledSampler",
    "ExecutionOptions",
    "FrameSimulator",
    "Sweep",
    "SweepResult",
    "SymPhaseSimulator",
    "Tableau",
    "as_generator",
    "available_backends",
    "compile_backend",
    "compile_sampler",
    "run",
    "__version__",
]
