"""Orchestration: index once, run every selected rule, partition.

The pipeline: collect target files, auto-add the installed ``repro``
source as non-target *context* (cross-module rules — call graphs,
registry discovery — need the whole package in view even when a
subtree is analyzed), run the selected rules over the shared index,
then partition raw findings into reported / inline-suppressed /
baselined.

Two accelerators, both transparent to the output (a cold run and a
warm run produce identical findings in identical order):

* the incremental cache (:mod:`repro.analysis.cache`) — attached to
  the index so the dataflow rules can reuse per-module summaries and
  per-file findings across runs;
* ``jobs > 1`` — rules partitioned over a ``fork`` worker pool.  The
  parent warms the shared dataflow context (CFGs + summary tables)
  *before* forking so children inherit it copy-on-write; platforms
  without ``fork`` silently fall back to serial.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.cache import CACHE_DIR_NAME, AnalysisCache
from repro.analysis.core import AnalysisResult, Finding, is_suppressed
from repro.analysis.index import IndexBuilder, SourceIndex, repro_source_root
from repro.analysis.rules import select_rules
from repro.analysis.rules.flow import FlowRule
from repro.analysis.summaries import get_context


def build_index(
    paths: list[str | Path],
    root: str | Path | None = None,
    include_context: bool = True,
) -> SourceIndex:
    """Parse ``paths`` (files or directories) into a shared index."""
    root = Path(root) if root is not None else Path.cwd()
    targets = [Path(p) for p in paths]
    context: list[Path] = []
    if include_context:
        package = repro_source_root()
        if package is not None:
            context.append(package)
    return IndexBuilder(root=root, targets=targets, context=context).build()


#: Fork-inherited state for ``--jobs`` workers (set just before the
#: pool spawns, cleared after; never used serially).
_PARALLEL_INDEX: SourceIndex | None = None


def _check_one_rule(rule_id: str) -> list[Finding]:
    rules = {rule.id: rule for rule in select_rules(select=(rule_id,))}
    return list(rules[rule_id].check(_PARALLEL_INDEX))


def _check_parallel(rules, index: SourceIndex, jobs: int):
    """Findings per rule, computed on a fork pool; None when the
    platform cannot fork (caller runs serially)."""
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        return None
    # Warm the shared dataflow state parent-side: children inherit the
    # parsed index, CFGs and resolved summary tables copy-on-write
    # instead of recomputing them once per worker.
    flow_context = get_context(index)
    for rule in rules:
        if isinstance(rule, FlowRule) and rule.domain is not None:
            flow_context.summaries(rule.domain)
    global _PARALLEL_INDEX
    _PARALLEL_INDEX = index
    try:
        with context.Pool(processes=min(jobs, len(rules))) as pool:
            per_rule = pool.map(
                _check_one_rule, [rule.id for rule in rules], chunksize=1
            )
    finally:
        _PARALLEL_INDEX = None
    return per_rule


def analyze(
    paths: list[str | Path],
    select: tuple[str, ...] = (),
    ignore: tuple[str, ...] = (),
    baseline: Baseline | None = None,
    root: str | Path | None = None,
    include_context: bool = True,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    use_cache: bool = True,
) -> AnalysisResult:
    """Run the rule set over ``paths`` and partition the findings.

    ``cache_dir`` defaults to ``<root>/.repro-analysis-cache``; pass
    ``use_cache=False`` to disable the incremental cache entirely.
    """
    started = time.perf_counter()
    rules = select_rules(select=select, ignore=ignore)
    index = build_index(paths, root=root, include_context=include_context)
    if use_cache:
        if cache_dir is None:
            base = Path(root) if root is not None else Path.cwd()
            cache_dir = base / CACHE_DIR_NAME
        index.analysis_cache = AnalysisCache(cache_dir)
    lines_by_rel = {
        file.rel: file.lines for file in index.files if file.is_target
    }
    result = AnalysisResult(
        files_analyzed=len(lines_by_rel),
        rules_run=tuple(rule.id for rule in rules),
    )
    per_rule = None
    if jobs > 1 and len(rules) > 1:
        per_rule = _check_parallel(rules, index, jobs)
    if per_rule is None:
        per_rule = [list(rule.check(index)) for rule in rules]
    for findings in per_rule:
        for finding in findings:
            if is_suppressed(finding, lines_by_rel.get(finding.path, [])):
                result.suppressed.append(finding)
            elif baseline is not None and baseline.matches(finding):
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
    if baseline is not None:
        result.stale_baseline = baseline.stale_entries()
    result.seconds = time.perf_counter() - started
    return result
