"""Orchestration: index once, run every selected rule, partition.

The pipeline: collect target files, auto-add the installed ``repro``
source as non-target *context* (cross-module rules — call graphs,
registry discovery — need the whole package in view even when a
subtree is analyzed), run the selected rules over the shared index,
then partition raw findings into reported / inline-suppressed /
baselined.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.core import AnalysisResult, is_suppressed
from repro.analysis.index import IndexBuilder, SourceIndex, repro_source_root
from repro.analysis.rules import select_rules


def build_index(
    paths: list[str | Path],
    root: str | Path | None = None,
    include_context: bool = True,
) -> SourceIndex:
    """Parse ``paths`` (files or directories) into a shared index."""
    root = Path(root) if root is not None else Path.cwd()
    targets = [Path(p) for p in paths]
    context: list[Path] = []
    if include_context:
        package = repro_source_root()
        if package is not None:
            context.append(package)
    return IndexBuilder(root=root, targets=targets, context=context).build()


def analyze(
    paths: list[str | Path],
    select: tuple[str, ...] = (),
    ignore: tuple[str, ...] = (),
    baseline: Baseline | None = None,
    root: str | Path | None = None,
    include_context: bool = True,
) -> AnalysisResult:
    """Run the rule set over ``paths`` and partition the findings."""
    started = time.perf_counter()
    rules = select_rules(select=select, ignore=ignore)
    index = build_index(paths, root=root, include_context=include_context)
    lines_by_rel = {
        file.rel: file.lines for file in index.files if file.is_target
    }
    result = AnalysisResult(
        files_analyzed=len(lines_by_rel),
        rules_run=tuple(rule.id for rule in rules),
    )
    for rule in rules:
        for finding in rule.check(index):
            if is_suppressed(finding, lines_by_rel.get(finding.path, [])):
                result.suppressed.append(finding)
            elif baseline is not None and baseline.matches(finding):
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
    if baseline is not None:
        result.stale_baseline = baseline.stale_entries()
    result.seconds = time.perf_counter() - started
    return result
