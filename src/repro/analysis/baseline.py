"""Allowlisted-baseline support.

A baseline file records *intentional* findings — deep imports a
benchmark needs to measure internals, say — so CI can gate on "no
finding outside the baseline" while the inline-suppression count stays
zero.  Entries match on ``(rule, path, symbol)`` (symbols survive line
drift) plus an optional ``contains`` substring of the message, and
every entry carries a human ``note`` saying why it is allowed.

Format (JSON)::

    {
      "entries": [
        {"rule": "API001", "path": "benchmarks/bench_pipeline.py",
         "symbol": "<module>", "note": "benches the packed bitops hot
         path; deep import is the point"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import Finding


@dataclass
class Baseline:
    entries: list[dict] = field(default_factory=list)
    _hits: set[int] = field(default_factory=set)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        entries = data.get("entries", [])
        for entry in entries:
            missing = {"rule", "path", "note"} - set(entry)
            if missing:
                raise ValueError(
                    f"baseline entry {entry!r} missing {sorted(missing)}"
                )
        return cls(entries=entries)

    def matches(self, finding: Finding) -> bool:
        for position, entry in enumerate(self.entries):
            if entry["rule"] != finding.rule:
                continue
            if entry["path"] != finding.path:
                continue
            if entry.get("symbol", finding.symbol) != finding.symbol:
                continue
            if entry.get("contains", "") not in finding.message:
                continue
            self._hits.add(position)
            return True
        return False

    def stale_entries(self) -> list[dict]:
        """Entries that matched nothing — candidates for deletion."""
        return [
            entry
            for position, entry in enumerate(self.entries)
            if position not in self._hits
        ]
