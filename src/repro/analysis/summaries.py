"""Interprocedural function summaries over the SourceIndex call graph.

A flow-sensitive rule wants to know what a *call* returns: does
``helper()`` hand back a packed array, an unseeded entropy value?  The
answer is the callee's **summary** — the set of marks its return value
may carry — computed in two phases so it caches per module:

1. **Local equations** (expensive, per-module, cacheable): run the
   domain's :class:`SummaryAnalysis` over each function's CFG with
   callee results left *symbolic* — a call resolved to an indexed
   function contributes a ``ret:<module:qualname>`` pseudo-mark
   instead of real marks.  The result depends only on the module's own
   source, so it is cached keyed by the module's content hash.
2. **Resolution** (cheap, whole-tree): substitute the symbolic
   references to a fixpoint over the call graph.  Cycles converge
   because marks only accumulate.

:class:`DataflowContext` owns the memoized CFGs, per-domain summary
tables and their content hashes; one context is attached per
:class:`~repro.analysis.index.SourceIndex` so every dataflow rule in a
run shares the work.
"""

from __future__ import annotations

import ast
import json
import weakref

from repro.analysis.cache import AnalysisCache, content_hash
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import EMPTY_MARKS, MarkAnalysis
from repro.analysis.index import FunctionInfo, SourceFile, SourceIndex

__all__ = ["DataflowContext", "SummaryAnalysis", "get_context"]

_SYMBOLIC = "ret:"


class SummaryAnalysis(MarkAnalysis):
    """Mark analysis that resolves indexed calls through summaries.

    Subclasses are the *domains*: set ``domain_name``/``domain_version``
    and override :meth:`intrinsic_call_marks` (and, when the domain
    needs them, the literal/def/iteration hooks of
    :class:`~repro.analysis.dataflow.MarkAnalysis`).

    ``resolved=None`` puts the instance in *summary phase*: calls that
    resolve to indexed functions yield symbolic ``ret:`` references for
    the fixpoint.  Passing the resolved table puts it in *check phase*:
    the same calls yield the callee's final marks.
    """

    #: Cache partition + staleness knobs; bump the version whenever the
    #: domain's semantics change.
    domain_name = "marks"
    domain_version = 1

    def __init__(
        self,
        file: SourceFile,
        index: SourceIndex,
        resolved: dict[str, frozenset[str]] | None = None,
    ):
        self.file = file
        self.index = index
        self.resolved = resolved

    def intrinsic_call_marks(
        self, state, call: ast.Call
    ) -> frozenset[str] | None:
        """Marks produced by a known producer/sanitizer call, or None
        when the call is not intrinsic to the domain."""
        return None

    def call_marks(self, state, call: ast.Call) -> frozenset[str]:
        intrinsic = self.intrinsic_call_marks(state, call)
        if intrinsic is not None:
            return intrinsic
        infos = self.index.resolve_call(self.file, call)
        if infos:
            marks: frozenset[str] = EMPTY_MARKS
            for info in infos:
                if self.resolved is None:
                    marks |= frozenset((f"{_SYMBOLIC}{info.key}",))
                else:
                    marks |= self.resolved.get(info.key, EMPTY_MARKS)
            return marks
        if isinstance(call.func, ast.Attribute):
            # Unresolvable method call: assume the result keeps the
            # receiver's marks (payload.encode(), rows.copy(), ...).
            return self.expr_marks(state, call.func.value)
        return EMPTY_MARKS


def _function_returns(
    analysis: SummaryAnalysis, cfg: CFG
) -> frozenset[str]:
    """Marks the function's return value may carry (summary phase)."""
    returns: frozenset[str] = EMPTY_MARKS
    has_return = any(
        isinstance(node, ast.Return) and node.value is not None
        for block in cfg.blocks.values()
        for node in block.stmts
    )
    if not has_return:
        return returns
    for node, state in analysis.walk(cfg):
        if isinstance(node, ast.Return) and node.value is not None:
            returns |= analysis.expr_marks(state, node.value)
    return returns


def _resolve(local: dict[str, frozenset[str]]) -> dict[str, frozenset[str]]:
    """Substitute symbolic callee references to a fixpoint."""
    resolved = {
        key: {mark for mark in marks if not mark.startswith(_SYMBOLIC)}
        for key, marks in local.items()
    }
    deps = {
        key: [
            mark[len(_SYMBOLIC):]
            for mark in marks
            if mark.startswith(_SYMBOLIC)
        ]
        for key, marks in local.items()
    }
    changed = True
    while changed:
        changed = False
        for key, callees in deps.items():
            mine = resolved[key]
            for callee in callees:
                extra = resolved.get(callee)
                if extra and not extra <= mine:
                    mine |= extra
                    changed = True
    return {key: frozenset(marks) for key, marks in resolved.items()}


class DataflowContext:
    """Shared, memoized dataflow state for one index: CFGs, per-domain
    summary tables, content hashes, and the (optional) disk cache."""

    def __init__(self, index: SourceIndex, cache: AnalysisCache | None):
        self.index = index
        self.cache = cache if cache is not None else AnalysisCache(None)
        self._cfgs: dict[str, CFG] = {}
        self._file_hashes: dict[str, str] = {}
        self._tables: dict[str, dict[str, frozenset[str]]] = {}
        self._table_hashes: dict[str, str] = {}

    def cfg(self, info: FunctionInfo) -> CFG:
        cfg = self._cfgs.get(info.key)
        if cfg is None:
            cfg = self._cfgs[info.key] = build_cfg(info.node)
        return cfg

    def file_hash(self, file: SourceFile) -> str:
        digest = self._file_hashes.get(file.rel)
        if digest is None:
            digest = self._file_hashes[file.rel] = content_hash(file.text)
        return digest

    def _domain_key(self, domain: type[SummaryAnalysis]) -> str:
        return f"{domain.domain_name}-v{domain.domain_version}"

    def _local_summaries(
        self, domain: type[SummaryAnalysis], file: SourceFile
    ) -> dict[str, list[str]]:
        section = f"locals-{self._domain_key(domain)}"
        key = self.file_hash(file)
        cached = self.cache.get(section, key)
        if isinstance(cached, dict) and isinstance(
            cached.get("functions"), dict
        ):
            return cached["functions"]
        analysis = domain(file, self.index, resolved=None)
        functions = {
            info.key: sorted(_function_returns(analysis, self.cfg(info)))
            for info in file.functions.values()
        }
        self.cache.put(section, key, {"functions": functions})
        return functions

    def summaries(
        self, domain: type[SummaryAnalysis]
    ) -> dict[str, frozenset[str]]:
        """The resolved summary table for ``domain`` (whole index —
        context files included, so cross-module calls resolve even
        when only a subtree is being analyzed)."""
        name = self._domain_key(domain)
        table = self._tables.get(name)
        if table is None:
            local: dict[str, frozenset[str]] = {}
            for file in self.index.files:
                for key, marks in self._local_summaries(
                    domain, file
                ).items():
                    local[key] = frozenset(marks)
            table = self._tables[name] = _resolve(local)
            self._table_hashes[name] = content_hash(
                json.dumps(
                    {key: sorted(marks) for key, marks in table.items()},
                    sort_keys=True,
                )
            )
        return table

    def table_hash(self, domain: type[SummaryAnalysis]) -> str:
        """Content hash of the resolved table (part of findings keys)."""
        name = self._domain_key(domain)
        if name not in self._table_hashes:
            self.summaries(domain)
        return self._table_hashes[name]


_CONTEXTS: "weakref.WeakKeyDictionary[SourceIndex, DataflowContext]" = (
    weakref.WeakKeyDictionary()
)


def get_context(index: SourceIndex) -> DataflowContext:
    """The index's shared dataflow context (created on first use; the
    runner attaches the disk cache as ``index.analysis_cache``)."""
    context = _CONTEXTS.get(index)
    if context is None:
        context = DataflowContext(
            index, getattr(index, "analysis_cache", None)
        )
        _CONTEXTS[index] = context
    return context
