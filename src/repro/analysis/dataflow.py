"""Forward dataflow over a CFG: generic worklist solver + mark lattice.

Two layers:

* :class:`ForwardAnalysis` — the bare fixpoint machinery.  Subclasses
  define the state lattice (``initial``/``join``) and the per-element
  ``transfer`` function; :meth:`solve` runs a worklist in reverse
  postorder until block-entry states stabilize.
* :class:`MarkAnalysis` — the concrete lattice every shipped dataflow
  rule uses: an environment mapping local names to *mark sets*
  (``{"packed"}``, ``{"entropy"}``, ...).  A name absent from the
  state is *unknown*; a name mapped to the empty set is *definitely
  unmarked*.  Joins union marks pointwise and drop names either side
  does not know — so a mark only survives a branch join if some path
  actually produced it (may-analysis).

Transfer functions interpret only the elements
:mod:`repro.analysis.cfg` places in blocks: simple statements whole,
compound statements by their header (an ``ast.For`` binds its target
from its iterable; an ``ast.With`` binds its ``as`` names; an
``ast.ExceptHandler`` binds its exception name).  Subclasses hook the
domain in by overriding :meth:`MarkAnalysis.call_marks` (what marks a
call's result carries) and friends.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Iterator

from repro.analysis.cfg import CFG

__all__ = ["EMPTY_MARKS", "ForwardAnalysis", "MarkAnalysis"]

#: The "definitely unmarked" value (distinct from a name being absent).
EMPTY_MARKS: frozenset[str] = frozenset()

#: Hard ceiling on solver iterations; the mark lattice is finite so a
#: well-formed analysis converges long before this — the cap exists so
#: a buggy non-monotone transfer degrades to partial results, not a
#: hung CI job.
_MAX_VISITS_PER_BLOCK = 100

State = dict


class ForwardAnalysis:
    """Worklist fixpoint over block-entry states."""

    def initial(self) -> State:
        """The state on entry to the function."""
        return {}

    def join(self, first: State, second: State) -> State:
        raise NotImplementedError

    def transfer(self, state: State, node: ast.AST) -> State:
        """The state after ``node``; must not mutate ``state``."""
        raise NotImplementedError

    def _block_out(self, cfg: CFG, block_id: int, state: State) -> State:
        for node in cfg.block(block_id).stmts:
            state = self.transfer(state, node)
        return state

    def _block_flow(
        self, cfg: CFG, block_id: int, state: State, want_exc: bool
    ) -> tuple[State, State | None]:
        """(out-state, any-point join) after the block.  The any-point
        join — entry joined with the state after every element — is
        what an *exceptional* edge carries: the raise may have fired
        before any given element ran.  Skipped (None) when the block
        has no outgoing exceptional edge."""
        exc_state = state if want_exc else None
        for node in cfg.block(block_id).stmts:
            state = self.transfer(state, node)
            if want_exc:
                exc_state = self.join(exc_state, state)
        return state, exc_state

    def solve(self, cfg: CFG) -> dict[int, State]:
        """Block-entry states at fixpoint, keyed by block id."""
        order = cfg.rpo()
        entry_states: dict[int, State] = {cfg.entry: self.initial()}
        out_states: dict[int, State] = {}
        exc_states: dict[int, State] = {}
        exc_sources = {src for src, _ in cfg.exc_edges}
        worklist: deque[int] = deque(order)
        queued = set(order)
        budget = _MAX_VISITS_PER_BLOCK * max(len(order), 1)
        while worklist and budget > 0:
            budget -= 1
            block_id = worklist.popleft()
            queued.discard(block_id)
            block = cfg.block(block_id)
            computed = []
            for pred in sorted(block.preds):
                source = (
                    exc_states
                    if (pred, block_id) in cfg.exc_edges
                    else out_states
                )
                if pred in source:
                    computed.append(source[pred])
            if block_id == cfg.entry:
                in_state = self.initial()
                for state in computed:
                    in_state = self.join(in_state, state)
            elif computed:
                in_state = computed[0]
                for state in computed[1:]:
                    in_state = self.join(in_state, state)
            else:
                continue  # no feeder solved yet; revisited via them
            entry_states[block_id] = in_state
            want_exc = block_id in exc_sources
            out_state, exc_state = self._block_flow(
                cfg, block_id, in_state, want_exc
            )
            changed = out_states.get(block_id) != out_state
            out_states[block_id] = out_state
            if want_exc:
                changed = changed or exc_states.get(block_id) != exc_state
                exc_states[block_id] = exc_state
            if changed:
                for succ in sorted(block.succs):
                    if succ not in queued:
                        queued.add(succ)
                        worklist.append(succ)
        self._out_states = out_states
        return entry_states

    def walk(self, cfg: CFG) -> Iterator[tuple[ast.AST, State]]:
        """Every element with the solved state holding *before* it, in
        deterministic (reverse postorder, in-block) order."""
        entry_states = self.solve(cfg)
        for block_id in cfg.rpo():
            state = entry_states.get(block_id)
            if state is None:
                continue
            for node in cfg.block(block_id).stmts:
                yield node, state
                state = self.transfer(state, node)

    def exit_states(self, cfg: CFG) -> list[tuple[int, State]]:
        """The solved out-state of every block feeding ``exit`` —
        one entry per path leaving the function (returns, fall-through,
        uncaught raises), for end-of-function obligations."""
        self.solve(cfg)
        return [
            (pred, self._out_states[pred])
            for pred in sorted(cfg.block(cfg.exit).preds)
            if pred in self._out_states
        ]


class MarkAnalysis(ForwardAnalysis):
    """Name -> mark-set environment with domain hooks."""

    def initial(self) -> State:
        return {}

    def join(self, first: State, second: State) -> State:
        if first is second:
            return first
        joined = {}
        for name, marks in first.items():
            other = second.get(name)
            if other is not None:
                joined[name] = marks | other
        return joined

    # -- domain hooks ----------------------------------------------------

    def call_marks(self, state: State, call: ast.Call) -> frozenset[str]:
        """Marks carried by ``call``'s result.  The domain's heart."""
        return EMPTY_MARKS

    def literal_marks(self, expr: ast.expr) -> frozenset[str]:
        """Marks carried by a display literal (set/dict/list/...)."""
        return EMPTY_MARKS

    def def_marks(self, node: ast.AST) -> frozenset[str]:
        """Marks a ``lambda`` or nested ``def``/``class`` binds."""
        return EMPTY_MARKS

    def iteration_marks(
        self, state: State, iter_expr: ast.expr
    ) -> frozenset[str]:
        """Marks a ``for`` target picks up from its iterable (default:
        the iterable's own marks)."""
        return self.expr_marks(state, iter_expr)

    # -- expression evaluation -------------------------------------------

    def expr_marks(self, state: State, expr: ast.expr) -> frozenset[str]:
        if isinstance(expr, ast.Name):
            return state.get(expr.id, EMPTY_MARKS)
        if isinstance(expr, ast.Call):
            return self.call_marks(state, expr)
        if isinstance(expr, ast.Lambda):
            return self.def_marks(expr)
        if isinstance(expr, (ast.Subscript, ast.Starred, ast.Attribute)):
            return self.expr_marks(state, expr.value)
        if isinstance(expr, ast.IfExp):
            return self.expr_marks(state, expr.body) | self.expr_marks(
                state, expr.orelse
            )
        if isinstance(expr, ast.NamedExpr):
            return self.expr_marks(state, expr.value)
        if isinstance(expr, (ast.Tuple, ast.List)):
            marks = EMPTY_MARKS
            for element in expr.elts:
                marks |= self.expr_marks(state, element)
            return marks
        if isinstance(
            expr, (ast.Set, ast.Dict, ast.SetComp, ast.DictComp,
                   ast.ListComp, ast.GeneratorExp)
        ):
            return self.literal_marks(expr)
        if isinstance(expr, ast.Await):
            return self.expr_marks(state, expr.value)
        if isinstance(expr, ast.JoinedStr):
            marks = EMPTY_MARKS
            for value in expr.values:
                marks |= self.expr_marks(state, value)
            return marks
        if isinstance(expr, ast.FormattedValue):
            return self.expr_marks(state, expr.value)
        if isinstance(expr, ast.BinOp):
            # Taint survives arithmetic: time.time() - start is still
            # wall-clock entropy.
            return self.expr_marks(state, expr.left) | self.expr_marks(
                state, expr.right
            )
        if isinstance(expr, ast.UnaryOp):
            return self.expr_marks(state, expr.operand)
        if isinstance(expr, ast.BoolOp):
            marks = EMPTY_MARKS
            for value in expr.values:
                marks |= self.expr_marks(state, value)
            return marks
        return EMPTY_MARKS

    # -- transfer --------------------------------------------------------

    def _bind(self, state: State, target: ast.expr, marks) -> State:
        if isinstance(target, ast.Name):
            state = dict(state)
            state[target.id] = marks
            return state
        if isinstance(target, (ast.Tuple, ast.List)):
            # Tuple unpack of a single marked value (the common
            # ``detectors, observables = sample_packed(...)`` shape):
            # every bound name inherits the value's marks.
            for element in target.elts:
                state = self._bind(state, element, marks)
            return state
        if isinstance(target, ast.Starred):
            return self._bind(state, target.value, marks)
        return state  # attribute/subscript stores: not tracked

    def transfer(self, state: State, node: ast.AST) -> State:
        if isinstance(node, ast.Assign):
            marks = self.expr_marks(state, node.value)
            for target in node.targets:
                state = self._bind(state, target, marks)
            return state
        if isinstance(node, ast.AnnAssign):
            if node.value is None:
                return state
            return self._bind(
                state, node.target, self.expr_marks(state, node.value)
            )
        if isinstance(node, ast.AugAssign):
            marks = self.expr_marks(state, node.value)
            if isinstance(node.target, ast.Name):
                marks = marks | state.get(node.target.id, EMPTY_MARKS)
            return self._bind(state, node.target, marks)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return self._bind(
                state, node.target, self.iteration_marks(state, node.iter)
            )
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    state = self._bind(
                        state,
                        item.optional_vars,
                        self.expr_marks(state, item.context_expr),
                    )
            return state
        if isinstance(node, ast.ExceptHandler):
            if node.name:
                state = dict(state)
                state[node.name] = EMPTY_MARKS
            return state
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            state = dict(state)
            state[node.name] = self.def_marks(node)
            return state
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            state = dict(state)
            for alias in node.names:
                local = (alias.asname or alias.name).split(".", 1)[0]
                state[local] = EMPTY_MARKS
            return state
        if isinstance(node, ast.Delete):
            state = dict(state)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    state.pop(target.id, None)
            return state
        if isinstance(node, ast.NamedExpr):
            return self._bind(
                state, node.target, self.expr_marks(state, node.value)
            )
        return state
