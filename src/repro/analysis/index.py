"""Parse-once source index: ASTs, imports, symbols, and a call graph.

The whole analyzed tree is parsed exactly once into
:class:`SourceFile`\\ s; rules share the resulting
:class:`SourceIndex` — import bindings resolved per module, every
function/method registered under ``module:qualname``, and a lightweight
intra-package call graph with conservative method-name fallback for
dynamic dispatch.  Rules never re-read or re-parse files.

Targets vs context: findings are only reported for *target* files, but
cross-module rules (call-graph reachability, registry discovery,
facade layering) need the whole package in view even when a single
subtree is analyzed, so the runner indexes the installed ``repro``
source as non-target *context*.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator


@dataclass(frozen=True)
class ImportBinding:
    """What a local name means: a module, or an attribute of one."""

    module: str
    attr: str | None = None


def _module_name(path: Path) -> str:
    """Dotted module name derived from the package layout on disk."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


@dataclass
class FunctionInfo:
    """One function or method definition."""

    module: str
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    file: "SourceFile"

    @property
    def key(self) -> str:
        return f"{self.module}:{self.qualname}"

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


class SourceFile:
    """One parsed source file plus its per-module lookup tables."""

    def __init__(self, path: Path, rel: str, is_target: bool):
        self.path = path
        self.rel = rel
        self.is_target = is_target
        text = path.read_text(encoding="utf-8")
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        self.module = _module_name(path)
        self.bindings = _import_bindings(self.tree)
        # (qualname, start, end) spans for enclosing_symbol lookups.
        self._spans: list[tuple[str, int, int]] = []
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: list[str] = []
        self._collect_symbols(self.tree.body, prefix="")
        self.module_level_names = _module_level_names(self.tree)
        self.module_mutables = _module_mutables(self.tree)

    def _collect_symbols(self, body: Iterable[ast.stmt], prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                info = FunctionInfo(
                    module=self.module, qualname=qualname, node=node, file=self
                )
                self.functions[qualname] = info
                self._spans.append(
                    (qualname, node.lineno, node.end_lineno or node.lineno)
                )
                self._collect_symbols(node.body, prefix=f"{qualname}.")
            elif isinstance(node, ast.ClassDef):
                qualname = f"{prefix}{node.name}"
                self.classes.append(qualname)
                self._spans.append(
                    (qualname, node.lineno, node.end_lineno or node.lineno)
                )
                self._collect_symbols(node.body, prefix=f"{qualname}.")

    def enclosing_symbol(self, line: int) -> str:
        """Qualname of the innermost def/class containing ``line``."""
        best = "<module>"
        best_size = None
        for qualname, start, end in self._spans:
            if start <= line <= end:
                size = end - start
                if best_size is None or size <= best_size:
                    best, best_size = qualname, size
        return best


def _import_bindings(tree: ast.Module) -> dict[str, ImportBinding]:
    bindings: dict[str, ImportBinding] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    bindings[alias.asname] = ImportBinding(alias.name)
                else:
                    # ``import a.b`` binds ``a``; attribute chains
                    # resolve the rest.
                    root = alias.name.split(".", 1)[0]
                    bindings[root] = ImportBinding(root)
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                local = alias.asname or alias.name
                bindings[local] = ImportBinding(node.module, alias.name)
    return bindings


_CONTAINER_CTORS = {
    "dict", "list", "set", "deque", "defaultdict", "OrderedDict", "Counter",
}


def _module_level_names(tree: ast.Module) -> frozenset[str]:
    names = set()
    for node in tree.body:
        for target in _assign_targets(node):
            names.add(target)
    return frozenset(names)


def _assign_targets(node: ast.stmt) -> Iterator[str]:
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                yield target.id
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        if isinstance(node.target, ast.Name):
            yield node.target.id


def _module_mutables(tree: ast.Module) -> dict[str, int]:
    """Module-level names bound to mutable containers -> def line."""
    mutables: dict[str, int] = {}
    for node in tree.body:
        value = getattr(node, "value", None)
        if value is None:
            continue
        is_container = isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                    ast.DictComp, ast.SetComp)
        ) or (
            isinstance(value, ast.Call)
            and dotted_tail(value.func) in _CONTAINER_CTORS
        )
        if is_container:
            for target in _assign_targets(node):
                mutables[target] = node.lineno
    return mutables


def dotted_parts(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.insert(0, node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.insert(0, node.id)
        return parts
    return None


def dotted_tail(node: ast.expr) -> str | None:
    """The final attribute/name of a call target (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclass(frozen=True)
class BrokenFile:
    """A file that failed to parse — indexed as a record, not a crash,
    so PARSE000 can report it while the rest of the tree analyzes."""

    rel: str
    is_target: bool
    line: int
    message: str


class SourceIndex:
    """All parsed files plus cross-module lookup structure."""

    def __init__(
        self, files: list[SourceFile], broken: list[BrokenFile] | None = None
    ):
        self.files = files
        self.broken: list[BrokenFile] = broken or []
        self.by_module: dict[str, SourceFile] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self._by_bare_name: dict[str, list[FunctionInfo]] = {}
        self.class_modules: dict[str, set[str]] = {}
        for file in files:
            self.by_module.setdefault(file.module, file)
            for info in file.functions.values():
                self.functions[info.key] = info
                self._by_bare_name.setdefault(info.name, []).append(info)
            for qualname in file.classes:
                bare = qualname.rsplit(".", 1)[-1]
                self.class_modules.setdefault(bare, set()).add(file.module)

    # -- iteration -------------------------------------------------------

    def target_files(self) -> Iterator[SourceFile]:
        for file in self.files:
            if file.is_target:
                yield file

    def is_target(self, file: SourceFile) -> bool:
        return file.is_target

    # -- call resolution -------------------------------------------------

    def resolve_call(
        self, file: SourceFile, call: ast.Call, fallback_by_name: bool = False
    ) -> list[FunctionInfo]:
        """Functions a call may dispatch to, resolved through imports.

        ``fallback_by_name`` additionally matches ``expr.m(...)`` against
        every indexed function named ``m`` — a deliberate
        over-approximation for reachability analyses (better to visit
        too much of the graph than to miss worker-executed code).
        """
        func = call.func
        if isinstance(func, ast.Name):
            info = file.functions.get(func.id)
            if info is not None:
                return [info]
            binding = file.bindings.get(func.id)
            if binding is not None and binding.attr is not None:
                return self._lookup(binding.module, binding.attr)
            return []
        parts = dotted_parts(func)
        if parts and len(parts) >= 2:
            binding = file.bindings.get(parts[0])
            if binding is not None and binding.attr is None:
                # ``import repro.obs as obs; obs.reset()`` and deeper
                # chains like ``repro.engine.shm.read_blob()``.
                module = ".".join([binding.module] + parts[1:-1])
                resolved = self._lookup(module, parts[-1])
                if resolved:
                    return resolved
        if fallback_by_name and isinstance(func, ast.Attribute):
            return list(self._by_bare_name.get(func.attr, ()))
        return []

    def _lookup(self, module: str, name: str) -> list[FunctionInfo]:
        target = self.by_module.get(module)
        if target is not None and name in target.functions:
            return [target.functions[name]]
        return []

    def reachable(
        self, roots: Iterable[FunctionInfo], fallback_by_name: bool = True
    ) -> dict[str, FunctionInfo]:
        """BFS closure of the call graph from ``roots``.

        Calls inside nested functions and lambdas count as calls of the
        enclosing definition (they run, at the latest, when the
        enclosure is executed by a worker).
        """
        seen: dict[str, FunctionInfo] = {}
        queue = list(roots)
        while queue:
            info = queue.pop()
            if info.key in seen:
                continue
            seen[info.key] = info
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    for callee in self.resolve_call(
                        info.file, node, fallback_by_name=fallback_by_name
                    ):
                        if callee.key not in seen:
                            queue.append(callee)
        return seen


@dataclass
class IndexBuilder:
    """Collects file paths (targets + context) and builds the index."""

    root: Path
    targets: list[Path] = field(default_factory=list)
    context: list[Path] = field(default_factory=list)

    def build(self) -> SourceIndex:
        files: list[SourceFile] = []
        broken: list[BrokenFile] = []
        seen: set[Path] = set()
        for path, is_target in self._ordered_paths():
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            rel = self._rel(resolved)
            try:
                files.append(SourceFile(resolved, rel, is_target))
            except SyntaxError as exc:
                broken.append(
                    BrokenFile(
                        rel=rel,
                        is_target=is_target,
                        line=exc.lineno or 1,
                        message=exc.msg or "invalid syntax",
                    )
                )
        return SourceIndex(files, broken)

    def _ordered_paths(self) -> Iterator[tuple[Path, bool]]:
        for target in self.targets:
            for path in _python_files(target):
                yield path, True
        for ctx in self.context:
            for path in _python_files(ctx):
                yield path, False

    def _rel(self, path: Path) -> str:
        try:
            return path.relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()


def _python_files(path: Path) -> Iterator[Path]:
    if path.is_dir():
        yield from sorted(path.rglob("*.py"))
    elif path.suffix == ".py":
        yield path


def repro_source_root() -> Path | None:
    """The installed ``repro`` package source (context for partial runs)."""
    package_root = Path(__file__).resolve().parent.parent
    return package_root if (package_root / "__init__.py").exists() else None
