"""Findings, rules, and suppression comments.

The vocabulary of :mod:`repro.analysis`: a :class:`Rule` inspects the
:class:`~repro.analysis.index.SourceIndex` and yields structured
:class:`Finding`\\ s; per-line ``# repro: ignore[RULE-ID]`` comments
suppress findings at their line.  Everything downstream — reporters,
baselines, exit codes — speaks in these types.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.index import SourceIndex

#: Finding severities, most severe first.  ``error`` findings guard
#: correctness invariants (determinism, fork safety, resource leaks);
#: ``warning`` findings guard conventions (layering, telemetry
#: granularity).  Both gate the exit code — the split exists so
#: reporters and future tooling can prioritize.
SEVERITIES = ("error", "warning")

#: ``# repro: ignore[RNG001]`` / ``# repro: ignore[RNG001, PACK001]``.
#: The comment must sit on the finding's own line.
_SUPPRESSION = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_*,\s-]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source line.

    ``symbol`` is the enclosing function/class qualname (or
    ``"<module>"``) — baselines key on it so entries survive line
    drift.
    """

    rule: str
    severity: str
    path: str
    line: int
    message: str
    hint: str = ""
    symbol: str = "<module>"

    def to_dict(self) -> dict:
        return asdict(self)

    def location(self) -> str:
        return f"{self.path}:{self.line}"


class Rule:
    """Base class for pluggable invariant checks.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings over the whole index (rules are free to look at
    every file at once — call graphs and registries are cross-module
    by nature).  Findings must only be emitted for *target* files
    (``index.is_target``); context files exist so cross-module rules
    see the whole package even when only a subtree is analyzed.
    """

    id = "RULE000"
    severity = "error"
    title = ""
    rationale = ""

    def check(self, index: "SourceIndex") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        index: "SourceIndex",
        file,
        node,
        message: str,
        hint: str = "",
    ) -> Finding:
        """A finding anchored at ``node`` in ``file``."""
        line = getattr(node, "lineno", 0)
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=file.rel,
            line=line,
            message=message,
            hint=hint,
            symbol=file.enclosing_symbol(line),
        )


def suppressed_rules(line_text: str) -> frozenset[str]:
    """Rule ids suppressed by ``line_text``'s ignore comment (if any).

    ``*`` suppresses every rule on the line.
    """
    match = _SUPPRESSION.search(line_text)
    if not match:
        return frozenset()
    return frozenset(
        part.strip() for part in match.group(1).split(",") if part.strip()
    )


def is_suppressed(finding: Finding, lines: list[str]) -> bool:
    """Whether ``finding``'s source line carries a matching suppression."""
    if not 1 <= finding.line <= len(lines):
        return False
    rules = suppressed_rules(lines[finding.line - 1])
    return bool(rules) and (finding.rule in rules or "*" in rules)


@dataclass
class AnalysisResult:
    """Everything one analysis run produced, pre-partitioned."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict] = field(default_factory=list)
    files_analyzed: int = 0
    rules_run: tuple[str, ...] = ()
    seconds: float = 0.0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Stable report order: path, line, rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))
