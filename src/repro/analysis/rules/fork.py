"""FORK001 — fork-safety of worker-executed code.

Pool workers are forked (or spawned) from the parent: any module-level
mutable state a worker-executed function mutates is either lost,
duplicated per process, or — the expensive case PR 7 debugged with the
obs buffers — *inherited with the parent's dirty contents* and silently
double-counted.  The contract: state a worker mutates must be reset in
the pool initializer (or be an idempotent guarded memo).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule
from repro.analysis.index import (
    FunctionInfo,
    SourceFile,
    SourceIndex,
    dotted_tail,
)

#: Container methods that mutate in place.
_MUTATORS = frozenset({
    "append", "add", "update", "extend", "insert", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "appendleft", "extendleft",
})

#: ``pool.<method>(target, ...)`` calls whose first argument runs in a
#: worker process.
_POOL_DISPATCH = frozenset({
    "map", "map_async", "imap", "imap_unordered", "starmap",
    "starmap_async", "apply", "apply_async",
})


def _pool_roots(
    index: SourceIndex,
) -> tuple[list[FunctionInfo], list[FunctionInfo]]:
    """(worker roots, initializer roots) discovered from pool wiring."""
    workers: list[FunctionInfo] = []
    initializers: list[FunctionInfo] = []
    for file in index.files:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            tail = dotted_tail(node.func)
            if tail == "Pool":
                for kw in node.keywords:
                    if kw.arg == "initializer" and isinstance(
                        kw.value, ast.Name
                    ):
                        initializers.extend(
                            _resolve_name(index, file, kw.value.id)
                        )
            elif tail in _POOL_DISPATCH and node.args:
                first = node.args[0]
                if isinstance(first, ast.Name):
                    workers.extend(_resolve_name(index, file, first.id))
    return workers, initializers


def _resolve_name(
    index: SourceIndex, file: SourceFile, name: str
) -> list[FunctionInfo]:
    info = file.functions.get(name)
    if info is not None:
        return [info]
    binding = file.bindings.get(name)
    if binding is not None and binding.attr is not None:
        target = index.by_module.get(binding.module)
        if target is not None and binding.attr in target.functions:
            return [target.functions[binding.attr]]
    return []


def _global_rebinds(node: ast.AST) -> frozenset[str]:
    """Names declared ``global`` and assigned within ``node``."""
    declared: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            declared.update(sub.names)
    if not declared:
        return frozenset()
    assigned: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                if isinstance(target, ast.Name) and target.id in declared:
                    assigned.add(target.id)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            if (
                isinstance(sub.target, ast.Name)
                and sub.target.id in declared
            ):
                assigned.add(sub.target.id)
    return frozenset(assigned)


def _container_mutations(
    info: FunctionInfo,
) -> Iterator[tuple[str, ast.AST, str]]:
    """(name, node, how) for mutations of module-level containers."""
    mutables = info.file.module_mutables
    for sub in ast.walk(info.node):
        if isinstance(sub, (ast.Assign, ast.AugAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in mutables
                ):
                    yield target.value.id, sub, "item assignment"
        elif isinstance(sub, ast.Delete):
            for target in sub.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in mutables
                ):
                    yield target.value.id, sub, "item deletion"
        elif isinstance(sub, ast.Call):
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Name)
                and func.value.id in mutables
            ):
                yield func.value.id, sub, f".{func.attr}()"


def _is_guarded_memo(info: FunctionInfo, name: str) -> bool:
    """Idempotent memo pattern: the mutating function also reads the
    state through a membership/get guard, so a re-run (or a forked
    inherit) converges to the same contents."""
    for sub in ast.walk(info.node):
        if isinstance(sub, ast.Compare):
            if any(isinstance(op, (ast.In, ast.NotIn)) for op in sub.ops):
                names = [
                    c.id
                    for c in sub.comparators
                    if isinstance(c, ast.Name)
                ]
                if name in names:
                    return True
        elif isinstance(sub, ast.Call):
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("get", "setdefault")
                and isinstance(func.value, ast.Name)
                and func.value.id == name
            ):
                return True
    return False


def _is_lazy_singleton(info: FunctionInfo, name: str) -> bool:
    """``global X`` + ``if X is None: X = ...`` lazy initialization —
    idempotent, so fork inheritance of the built value is consistent."""
    for sub in ast.walk(info.node):
        if isinstance(sub, ast.If) and isinstance(sub.test, ast.Compare):
            test = sub.test
            if (
                isinstance(test.left, ast.Name)
                and test.left.id == name
                and any(isinstance(op, ast.Is) for op in test.ops)
                and any(
                    isinstance(c, ast.Constant) and c.value is None
                    for c in test.comparators
                )
            ):
                return True
    return False


class ForkSafetyRule(Rule):
    """FORK001: worker-executed functions must not mutate module-level
    state the pool initializer does not reset."""

    id = "FORK001"
    severity = "error"
    title = "fork-unsafe module state in worker code"
    rationale = (
        "forked workers inherit the parent's module state; mutating it "
        "without an initializer reset loses updates, double-counts "
        "inherited deltas, or diverges between transports."
    )

    def check(self, index: SourceIndex) -> Iterator[Finding]:
        workers, initializers = _pool_roots(index)
        if not workers:
            return
        worker_reach = index.reachable(workers)
        init_reach = index.reachable(initializers)
        resets = self._reset_names(init_reach)
        for info in worker_reach.values():
            if not info.file.is_target or info.key in init_reach:
                continue
            for name, node, how in _container_mutations(info):
                if (info.module, name) in resets:
                    continue
                if _is_guarded_memo(info, name):
                    continue
                yield self._mutation_finding(index, info, name, node, how)
            for name in _global_rebinds(info.node):
                if (info.module, name) in resets:
                    continue
                if _is_lazy_singleton(info, name):
                    continue
                yield self._mutation_finding(
                    index, info, name, info.node, "global rebinding"
                )

    def _mutation_finding(self, index, info, name, node, how) -> Finding:
        return self.finding(
            index, info.file, node,
            f"worker-executed {info.qualname}() mutates module-level "
            f"{name!r} ({how}) without a pool-initializer reset",
            hint=(
                "reset the state in the pool initializer (like "
                "obs.reset()/shm.detach_all() in enter_worker), or "
                "make the mutation an idempotent guarded memo"
            ),
        )

    @staticmethod
    def _reset_names(
        init_reach: dict[str, FunctionInfo],
    ) -> set[tuple[str, str]]:
        """(module, name) pairs the initializer rebinds or clears."""
        resets: set[tuple[str, str]] = set()
        for info in init_reach.values():
            for name in _global_rebinds(info.node):
                resets.add((info.module, name))
            for sub in ast.walk(info.node):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "clear"
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id in info.file.module_level_names
                ):
                    resets.add((info.module, sub.func.value.id))
        return resets
