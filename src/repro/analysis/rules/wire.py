"""WIRE001 — chunk specs stay header-only across the worker boundary.

The pool wire (:mod:`repro.engine.workers` / :mod:`repro.engine.shm`)
is deliberately header-only: a ``ChunkSpec``/``ShmChunkSpec`` carries
strings, ints, and ``BlobRef``/``SlotRef`` names — never the payloads
themselves.  Smuggling a closure (silently re-pickles its globals), a
lock (unpicklable or, worse, fork-duplicated), or a live ndarray
(copies megabytes per chunk through the pickle wire) into a spec
defeats the shared-memory transport and can break or slow the pool in
ways that only show up under load.  This rule tracks those three
provenances flow-sensitively and flags spec construction that receives
one.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding
from repro.analysis.index import SourceFile, SourceIndex, dotted_tail
from repro.analysis.rules.flow import (
    FlowRule,
    calls_in,
    describe_expr,
    element_exprs,
    resolved_callable,
)
from repro.analysis.rules.pack import PACKED_PRODUCERS, UNPACKED_PRODUCERS
from repro.analysis.summaries import DataflowContext, SummaryAnalysis

#: Spec constructors crossing the worker boundary.
SPEC_TAILS = frozenset({"ChunkSpec", "ShmChunkSpec", "WarmSpec"})

#: Synchronization primitives (fork-hostile, often unpicklable).
_LOCK_TAILS = frozenset({
    "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Event",
    "Condition", "Barrier",
})

#: ``numpy`` constructors whose results are live arrays.
_ARRAY_FUNCTIONS = frozenset({
    "array", "asarray", "zeros", "ones", "empty", "full", "arange",
    "frombuffer", "fromiter", "copy", "concatenate", "stack",
})

#: Row producers whose result is an ndarray.  ``decode``/``detect``
#: are excluded: those tails collide with ``bytes.decode()``-style
#: methods far more often than they mean a row decoder here.
_ARRAY_PRODUCERS = (PACKED_PRODUCERS | UNPACKED_PRODUCERS) - frozenset({
    "decode", "detect",
})


class WireAnalysis(SummaryAnalysis):
    """Marks: ``closure``, ``lock``, ``array``."""

    domain_name = "wire"
    domain_version = 1

    def intrinsic_call_marks(
        self, state, call: ast.Call
    ) -> frozenset[str] | None:
        tail = dotted_tail(call.func)
        if tail in _LOCK_TAILS:
            return frozenset({"lock"})
        if tail in _ARRAY_PRODUCERS:
            return frozenset({"array"})
        module, fn = resolved_callable(self.file, call)
        if module == "numpy" and fn in _ARRAY_FUNCTIONS:
            return frozenset({"array"})
        return None

    def def_marks(self, node: ast.AST) -> frozenset[str]:
        return frozenset({"closure"})


_PROBLEMS = {
    "closure": "a closure/lambda (re-pickles its captured globals)",
    "lock": "a synchronization primitive (fork-hostile, unpicklable)",
    "array": "a live ndarray (copies the payload through the pickle wire)",
}


class WireContractRule(FlowRule):
    """WIRE001: header-only values in chunk spec construction."""

    id = "WIRE001"
    severity = "error"
    title = "non-header value smuggled into a chunk spec"
    rationale = (
        "ChunkSpec/ShmChunkSpec must stay header-only (str/int/"
        "BlobRef/SlotRef); closures, locks, and live arrays defeat "
        "the shared-memory transport contract."
    )
    version = 1
    domain = WireAnalysis

    def check_file(
        self,
        index: SourceIndex,
        context: DataflowContext,
        file: SourceFile,
        resolved,
    ) -> Iterator[Finding]:
        for info in file.functions.values():
            analysis = WireAnalysis(file, index, resolved)
            cfg = context.cfg(info)
            for element, state in analysis.walk(cfg):
                for call in calls_in(element_exprs(element)):
                    if dotted_tail(call.func) not in SPEC_TAILS:
                        continue
                    args = [(None, arg) for arg in call.args] + [
                        (kw.arg, kw.value) for kw in call.keywords
                    ]
                    for kw_name, arg in args:
                        marks = analysis.expr_marks(state, arg)
                        for mark in sorted(marks & _PROBLEMS.keys()):
                            field = (
                                f"field {kw_name!r}" if kw_name
                                else f"argument {describe_expr(arg)}"
                            )
                            yield self.finding(
                                index, file, call,
                                f"{dotted_tail(call.func)}() {field} "
                                f"receives {_PROBLEMS[mark]} in "
                                f"{info.qualname}()",
                                hint=(
                                    "ship headers only: stage payloads "
                                    "as BlobRef/SlotRef through the "
                                    "SlabArena (engine.shm) and "
                                    "rebuild state worker-side"
                                ),
                            )
