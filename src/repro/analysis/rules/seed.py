"""SEED001 — unseeded entropy must not reach identity or seeds.

The derived-seed scheme (:mod:`repro.rng`) makes every count a pure
function of ``(base_seed, task_entropy, chunk_index)``; task identity
(``strong_id``) is a pure function of the task's content.  Entropy
from the environment — wall clocks, ``os.urandom``, an *unseeded*
``default_rng()``, set iteration order — flowing into either silently
breaks resume and the serial == pooled guarantee.  This rule taints
such sources and follows the taint flow-sensitively through
assignments, arithmetic, and function returns (via interprocedural
summaries) into the fingerprint/seed sinks.

Intentional entropy stays allowed: drawing a *fresh base seed* for an
unseeded run (``fresh_base_seed``) is fine because the drawn value is
recorded and only ever passed onward as an explicit seed argument —
the taint only trips when it reaches identity/seed *construction*.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding
from repro.analysis.dataflow import EMPTY_MARKS
from repro.analysis.index import SourceFile, SourceIndex, dotted_tail
from repro.analysis.rules.flow import (
    FlowRule,
    calls_in,
    describe_expr,
    element_exprs,
    resolved_callable,
)
from repro.analysis.summaries import DataflowContext, SummaryAnalysis

_ENTROPY = frozenset({"entropy"})
_UNORDERED = frozenset({"unordered"})

#: Modules whose every call yields environment entropy.
_ENTROPY_MODULES = frozenset({"time", "secrets", "uuid"})

#: Repo-specific identity/seed constructors: any tainted argument is a
#: reproducibility break.
_SINK_TAILS = frozenset({
    "strong_id", "circuit_fingerprint", "entropy_from_hex",
    "seed_entropy", "chunk_seed_sequence", "chunk_generator",
})

#: ``hashlib`` digests feed ``strong_id``-style content identity.
_HASH_FUNCTIONS = frozenset({
    "sha256", "sha224", "sha384", "sha512", "sha1", "md5",
    "blake2b", "blake2s",
})

#: Builtins whose result carries their arguments' taint.
_PASSTHROUGH_BUILTINS = frozenset({
    "int", "float", "str", "bytes", "bool", "abs", "round",
    "min", "max", "sum", "repr", "hex", "oct", "format", "divmod",
})


class SeedTaintAnalysis(SummaryAnalysis):
    """Marks: ``entropy`` (environment randomness), ``unordered``
    (set-typed value — becomes entropy when iterated)."""

    domain_name = "seed"
    domain_version = 1

    def intrinsic_call_marks(
        self, state, call: ast.Call
    ) -> frozenset[str] | None:
        module, fn = resolved_callable(self.file, call)
        if module in _ENTROPY_MODULES:
            return _ENTROPY
        if module == "os" and fn == "urandom":
            return _ENTROPY
        if module == "numpy.random" and fn in ("default_rng", "SeedSequence"):
            if not call.args and not call.keywords:
                return _ENTROPY  # unseeded: fresh OS entropy every call
            return EMPTY_MARKS  # explicitly seeded
        if module is None and fn in ("set", "frozenset"):
            return _UNORDERED
        if module is None and fn in ("list", "tuple"):
            marks = EMPTY_MARKS
            for arg in call.args:
                marks |= self.expr_marks(state, arg)
            if "unordered" in marks:
                return (marks - _UNORDERED) | _ENTROPY
            return marks
        if module is None and fn == "sorted":
            return EMPTY_MARKS  # sanitizer: order is now deterministic
        if module is None and fn in _PASSTHROUGH_BUILTINS:
            marks = EMPTY_MARKS
            for arg in call.args:
                marks |= self.expr_marks(state, arg)
            return marks
        return None

    def literal_marks(self, expr: ast.expr) -> frozenset[str]:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return _UNORDERED
        return EMPTY_MARKS

    def iteration_marks(self, state, iter_expr: ast.expr) -> frozenset[str]:
        marks = self.expr_marks(state, iter_expr)
        if "unordered" in marks:
            return (marks - _UNORDERED) | _ENTROPY
        return marks


def _sink_label(
    file: SourceFile, call: ast.Call
) -> str | None:
    tail = dotted_tail(call.func)
    if tail in _SINK_TAILS:
        return tail
    module, fn = resolved_callable(file, call)
    if module == "hashlib" and fn in _HASH_FUNCTIONS:
        return f"hashlib.{fn}"
    if module == "numpy.random" and fn == "SeedSequence" and (
        call.args or call.keywords
    ):
        return "SeedSequence"
    return None


class SeedTaintRule(FlowRule):
    """SEED001: no environment entropy into identity/seed construction."""

    id = "SEED001"
    severity = "error"
    title = "unseeded entropy flows into identity/seed construction"
    rationale = (
        "strong_id, fingerprints and derived seeds must be pure "
        "functions of task content and the explicit base seed; wall "
        "clocks, os.urandom, unseeded default_rng() and set iteration "
        "order make them run-dependent and break resume."
    )
    version = 1
    domain = SeedTaintAnalysis

    def check_file(
        self,
        index: SourceIndex,
        context: DataflowContext,
        file: SourceFile,
        resolved,
    ) -> Iterator[Finding]:
        for info in file.functions.values():
            analysis = SeedTaintAnalysis(file, index, resolved)
            cfg = context.cfg(info)
            for element, state in analysis.walk(cfg):
                for call in calls_in(element_exprs(element)):
                    sink = _sink_label(file, call)
                    if sink is None:
                        continue
                    args = list(call.args) + [
                        kw.value for kw in call.keywords
                    ]
                    for arg in args:
                        if "entropy" in analysis.expr_marks(state, arg):
                            yield self.finding(
                                index, file, call,
                                f"entropy-tainted value "
                                f"{describe_expr(arg)} reaches "
                                f"{sink}() in {info.qualname}()",
                                hint=(
                                    "identity and seeds must derive "
                                    "from task content and the "
                                    "explicit base seed (repro.rng "
                                    "derived-seed scheme); sort "
                                    "iteration, seed the generator, "
                                    "or drop the clock"
                                ),
                            )
