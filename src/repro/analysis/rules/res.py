"""RES001 — resources must be released on every CFG path.

Generalizes SHM001's with/finally pattern-match: a handle acquired in
a function (``SharedMemory``, a worker pool, a file object) must, on
*every* path to the function's exit, either be released (``close``/
``unlink``/``terminate``/...), be managed by a ``with`` block, or have
its ownership escape — returned, stored on an object, registered with
a finalizer, passed to another call.  A path where a live handle
simply falls off the end (an early return between acquire and release,
say) leaks the resource.

Ownership is deliberately coarse: any *direct* use of the handle name
as a call argument, return/yield value, raise operand, container
element, or attribute/subscript store transfers ownership and ends
this function's obligation.  Attribute *reads* (``shm.buf``) and
release-method calls do not.
"""

from __future__ import annotations

import ast
from types import SimpleNamespace
from typing import Iterator

from repro.analysis.core import Finding
from repro.analysis.dataflow import EMPTY_MARKS, MarkAnalysis
from repro.analysis.index import SourceFile, SourceIndex, dotted_tail
from repro.analysis.rules.flow import FlowRule
from repro.analysis.summaries import DataflowContext

#: Constructors that hand this function a resource to own.
ACQUIRE_TAILS = frozenset({
    "SharedMemory", "Pool", "ThreadPool", "ProcessPoolExecutor",
    "ThreadPoolExecutor", "open", "fdopen", "TemporaryFile",
    "NamedTemporaryFile", "socket",
})

#: Method calls that release (or hand off) a held resource.
RELEASE_ATTRS = frozenset({
    "close", "unlink", "shutdown", "terminate", "release", "detach",
    "stop", "join",
})

_RES_PREFIX = "res:"


def _direct_names(expr: ast.expr) -> Iterator[str]:
    """Names whose *value itself* is consumed by ``expr`` (not names
    merely dereferenced on the way to an attribute or index)."""
    if isinstance(expr, ast.Name):
        yield expr.id
    elif isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        for element in expr.elts:
            yield from _direct_names(element)
    elif isinstance(expr, ast.Dict):
        for key in expr.keys:
            if key is not None:
                yield from _direct_names(key)
        for value in expr.values:
            yield from _direct_names(value)
    elif isinstance(expr, ast.Starred):
        yield from _direct_names(expr.value)
    elif isinstance(expr, ast.IfExp):
        yield from _direct_names(expr.body)
        yield from _direct_names(expr.orelse)
    elif isinstance(expr, ast.NamedExpr):
        yield from _direct_names(expr.value)


def _walk_pruned(node: ast.AST) -> Iterator[ast.AST]:
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(
            current,
            (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _escape_roots(node: ast.AST) -> list[ast.AST]:
    """What to scan for escapes: compound CFG elements contribute only
    the expressions evaluated at their own position (their bodies live
    in other blocks); simple statements are scanned whole."""
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return [node.iter]
    if isinstance(node, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in node.items]
    if isinstance(node, ast.ExceptHandler):
        return [node.type] if node.type is not None else []
    if isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ) or isinstance(node, ast.pattern):
        return []
    return [node]


def _escaping_names(node: ast.AST) -> set[str]:
    """Handle names whose ownership leaves this function at ``node``."""
    names: set[str] = set()
    for root in _escape_roots(node):
        names.update(_escaping_names_under(root))
    targets = ()
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = (node.target,)
    for target in targets:
        if not isinstance(target, (ast.Name, ast.Tuple, ast.List, ast.Starred)):
            # Attribute/subscript store: the value now outlives the
            # function's locals.
            value = getattr(node, "value", None)
            if value is not None:
                names.update(_direct_names(value))
    return names


def _escaping_names_under(node: ast.AST) -> set[str]:
    names: set[str] = set()
    for sub in _walk_pruned(node):
        if isinstance(sub, ast.Call):
            for arg in sub.args:
                names.update(_direct_names(arg))
            for kw in sub.keywords:
                names.update(_direct_names(kw.value))
        elif isinstance(sub, (ast.Return, ast.Yield, ast.YieldFrom)):
            if sub.value is not None:
                names.update(_direct_names(sub.value))
        elif isinstance(sub, ast.Raise):
            if sub.exc is not None:
                names.update(_direct_names(sub.exc))
    return names


class ResourceAnalysis(MarkAnalysis):
    """Local-only marks ``res:<ctor>:<line>`` naming the acquire site."""

    def call_marks(self, state, call: ast.Call) -> frozenset[str]:
        tail = dotted_tail(call.func)
        if tail in ACQUIRE_TAILS:
            return frozenset({f"{_RES_PREFIX}{tail}:{call.lineno}"})
        return EMPTY_MARKS

    def expr_marks(self, state, expr: ast.expr) -> frozenset[str]:
        # An attribute/subscript read (shm.buf) is a view, not the
        # handle — it must not inherit the release obligation.
        if isinstance(expr, (ast.Attribute, ast.Subscript)):
            return EMPTY_MARKS
        return super().expr_marks(state, expr)

    def transfer(self, state, node: ast.AST):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            func = node.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in RELEASE_ATTRS
                and isinstance(func.value, ast.Name)
            ):
                state = dict(state)
                state[func.value.id] = EMPTY_MARKS
        escaped = _escaping_names(node)
        if escaped:
            state = dict(state)
            for name in escaped:
                state[name] = EMPTY_MARKS
        if isinstance(node, (ast.With, ast.AsyncWith)):
            # ``with`` owns the release; as-names carry no obligation.
            for item in node.items:
                if item.optional_vars is not None:
                    state = self._bind(state, item.optional_vars, EMPTY_MARKS)
            return state
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Name)
            and all(isinstance(t, ast.Name) for t in node.targets)
        ):
            # ``alias = handle`` is a move: exactly one name owes the
            # release afterwards.
            marks = state.get(node.value.id, EMPTY_MARKS)
            state = dict(state)
            state[node.value.id] = EMPTY_MARKS
            for target in node.targets:
                state[target.id] = marks
            return state
        return super().transfer(state, node)


class ResourcePathRule(FlowRule):
    """RES001: acquire/release pairing on all CFG paths."""

    id = "RES001"
    severity = "error"
    title = "resource not released on some path to function exit"
    rationale = (
        "a SharedMemory segment, pool, or file object acquired without "
        "with/finally leaks on early returns and error paths; leaked "
        "segments outlive the process in /dev/shm."
    )
    version = 1
    domain = None  # obligations never cross function boundaries

    def check_file(
        self,
        index: SourceIndex,
        context: DataflowContext,
        file: SourceFile,
        resolved,
    ) -> Iterator[Finding]:
        for info in file.functions.values():
            cfg = context.cfg(info)
            analysis = ResourceAnalysis()
            reported: set[str] = set()
            for _, state in analysis.exit_states(cfg):
                for name in sorted(state):
                    for mark in sorted(state[name]):
                        if not mark.startswith(_RES_PREFIX):
                            continue
                        if mark in reported:
                            continue
                        reported.add(mark)
                        _, ctor, line = mark.split(":")
                        yield self.finding(
                            index, file,
                            SimpleNamespace(lineno=int(line)),
                            f"{ctor}(...) held in {name!r} is not "
                            f"released on every path out of "
                            f"{info.qualname}()",
                            hint=(
                                "use a with block or try/finally, "
                                "call close()/unlink()/terminate() on "
                                "all paths, or hand ownership off "
                                "(return it / register a finalizer)"
                            ),
                        )
