"""PARSE000 — a file that does not parse is a finding, not a crash.

Indexing tolerates ``SyntaxError`` (the broken file is recorded and
the rest of the tree analyzes normally); this rule surfaces each
broken *target* file as a structured finding so the failure lands in
reports, baselines, CI annotations, and the exit code like any other
violation — instead of aborting the whole run.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.core import Finding, Rule
from repro.analysis.index import SourceIndex


class ParseFailureRule(Rule):
    """PARSE000: every analyzed file must parse."""

    id = "PARSE000"
    severity = "error"
    title = "file failed to parse"
    rationale = (
        "an unparseable file is invisible to every other rule; the "
        "analyzer reports it and keeps going rather than aborting the "
        "tree."
    )

    def check(self, index: SourceIndex) -> Iterator[Finding]:
        for broken in index.broken:
            if not broken.is_target:
                continue
            yield Finding(
                rule=self.id,
                severity=self.severity,
                path=broken.rel,
                line=broken.line,
                message=f"SyntaxError: {broken.message}",
                hint="fix the syntax error; no other rule saw this file",
                symbol="<module>",
            )
