"""OBS001 — telemetry at per-chunk granularity only.

The obs layer's cost model (CI-gated by ``bench_obs_overhead.py``)
assumes probes fire per *chunk*: a disabled span costs ~300ns, an
enabled one a few µs.  Inside a per-shot inner loop those constants
multiply by 10⁴–10⁶ and the <2.5% overhead budget is gone — per-shot
quantities belong in counters incremented once per chunk with the
aggregate.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule
from repro.analysis.index import SourceFile, SourceIndex

#: repro.obs entry points that cost per call.
_TELEMETRY = frozenset({"span", "event", "counter", "gauge", "histogram"})


def _is_telemetry_call(file: SourceFile, call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in _TELEMETRY:
        if isinstance(func.value, ast.Name):
            binding = file.bindings.get(func.value.id)
            if binding is not None and binding.module.startswith("repro.obs"):
                return func.attr
    elif isinstance(func, ast.Name):
        binding = file.bindings.get(func.id)
        if (
            binding is not None
            and binding.module.startswith("repro.obs")
            and binding.attr in _TELEMETRY
        ):
            return binding.attr
    return None


def _shot_loops(tree: ast.Module) -> list[ast.stmt]:
    """Loops that iterate per shot, identified by their iterable/test
    naming (``for s in range(shots)``, ``while remaining_shots``…)."""
    loops = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            source = ast.unparse(node.iter).lower()
            if "shot" in source:
                loops.append(node)
        elif isinstance(node, ast.While):
            if "shot" in ast.unparse(node.test).lower():
                loops.append(node)
    return loops


class ObsGranularityRule(Rule):
    """OBS001: no span()/metrics calls inside per-shot loops."""

    id = "OBS001"
    severity = "warning"
    title = "telemetry call in per-shot loop"
    rationale = (
        "probes are budgeted per chunk (~µs each, <2.5% overhead "
        "CI-gated); per-shot firing multiplies the cost by the shot "
        "count and swamps the pipeline it measures."
    )

    def check(self, index: SourceIndex) -> Iterator[Finding]:
        for file in index.target_files():
            if file.module.startswith("repro.obs"):
                continue
            for loop in _shot_loops(file.tree):
                for sub in ast.walk(loop):
                    if not isinstance(sub, ast.Call):
                        continue
                    kind = _is_telemetry_call(file, sub)
                    if kind is None:
                        continue
                    yield self.finding(
                        index, file, sub,
                        f"obs.{kind}() fires inside a per-shot loop",
                        hint=(
                            "aggregate per shot locally and record once "
                            "per chunk (counter.inc(total) after the "
                            "loop)"
                        ),
                    )
