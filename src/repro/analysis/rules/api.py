"""API001 — the facade boundary around user-facing layers.

PR 4 made ``repro.study`` the single public API: the CLI, examples and
benchmarks are thin layers over it (plus a short list of sanctioned
facade packages — registries, circuit/DEM handles, builders,
telemetry).  Deep imports from those layers re-grow exactly the code
forks the facade removed, and silently freeze internals (engine wire
formats, frame program layout) into quasi-public API.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule
from repro.analysis.index import SourceFile, SourceIndex

#: Modules user-facing layers may import from.  Exact-match: a
#: sanctioned package's *submodules* are not sanctioned (``repro.circuit``
#: yes, ``repro.circuit.parser`` no) — facades re-export what is public.
SANCTIONED = frozenset({
    "repro",
    "repro.study",       # the primary facade (PR 4)
    "repro.qec",         # circuit/DEM builders
    "repro.circuit",     # Circuit + targets
    "repro.dem",         # DetectorErrorModel handles
    "repro.backends",    # sampler registry (capability-flagged)
    "repro.decoders",    # decoder registry (capability-flagged)
    "repro.engine",      # engine facade (ExecutionOptions/Task/collect)
    "repro.obs",         # telemetry facade
    "repro.layout",      # paper layout builders
    "repro.workloads",   # paper workload builders
    "repro.noise",       # noise channel builders
    "repro.rng",         # the seed contract
    "repro.analysis",    # this linter's own CLI surface
})


def _facade_scope(file: SourceFile) -> str | None:
    """Which user-facing layer a file belongs to, if any."""
    parts = file.path.parts
    if "examples" in parts:
        return "examples"
    if "benchmarks" in parts:
        return "benchmarks"
    if file.module == "repro.cli":
        return "the CLI"
    return None


def _repro_imports(tree: ast.Module) -> Iterator[tuple[ast.stmt, str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    yield node, alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            if node.module == "repro" or node.module.startswith("repro."):
                yield node, node.module


class FacadeRule(Rule):
    """API001: examples/, benchmarks/ and cli.py import only sanctioned
    facade modules."""

    id = "API001"
    severity = "warning"
    title = "deep import past the study facade"
    rationale = (
        "user-facing layers are thin clients of repro.study and the "
        "sanctioned facades; deep imports freeze internals into "
        "quasi-public API and re-grow pre-PR-4 code forks."
    )

    def check(self, index: SourceIndex) -> Iterator[Finding]:
        for file in index.target_files():
            scope = _facade_scope(file)
            if scope is None:
                continue
            for node, module in _repro_imports(file.tree):
                if module in SANCTIONED:
                    continue
                yield self.finding(
                    index, file, node,
                    f"{scope} imports internal module {module!r}",
                    hint=(
                        "go through repro.study (or another sanctioned "
                        "facade); if the capability is missing there, "
                        "grow the facade instead of importing around it"
                    ),
                )
