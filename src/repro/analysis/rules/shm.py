"""SHM001 — shared-memory segments must be unlinked on every exit path.

A ``multiprocessing.shared_memory.SharedMemory(create=True)`` segment
is a *named* kernel object: a crash between create and unlink leaks
``/dev/shm`` space until reboot.  PR 7's discipline: every create is
paired with an unlink via a context manager, a try/finally (or except)
unlink, or a ``weakref.finalize`` backstop owned by the creating
module.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule
from repro.analysis.index import SourceFile, SourceIndex, dotted_tail


def _creates_segment(call: ast.Call) -> bool:
    if dotted_tail(call.func) != "SharedMemory":
        return False
    for kw in call.keywords:
        if kw.arg == "create":
            return (
                isinstance(kw.value, ast.Constant) and kw.value.value is True
            )
    return False


def _calls_unlink(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "unlink"
        ):
            return True
    return False


def _has_finalize(tree: ast.Module) -> bool:
    for sub in ast.walk(tree):
        if isinstance(sub, ast.Call) and dotted_tail(sub.func) == "finalize":
            return True
    return False


def _with_managed(file: SourceFile, create_call: ast.Call) -> bool:
    """The create call is a ``with`` item's context expression."""
    for node in ast.walk(file.tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.context_expr is create_call:
                    return True
    return False


class ShmUnlinkRule(Rule):
    """SHM001: pair every ``SharedMemory(create=True)`` with unlink."""

    id = "SHM001"
    severity = "error"
    title = "SharedMemory create without unlink discipline"
    rationale = (
        "named segments outlive the process; a create without an "
        "all-exit-paths unlink (context manager, try/finally, or "
        "weakref.finalize backstop) leaks /dev/shm on crash or "
        "KeyboardInterrupt."
    )

    def check(self, index: SourceIndex) -> Iterator[Finding]:
        for file in index.target_files():
            module_backstopped = _has_finalize(file.tree) and any(
                _calls_unlink(info.node) for info in file.functions.values()
            )
            for node in ast.walk(file.tree):
                if not (isinstance(node, ast.Call) and _creates_segment(node)):
                    continue
                if _with_managed(file, node):
                    continue
                symbol = file.enclosing_symbol(node.lineno)
                enclosing = file.functions.get(symbol)
                if enclosing is not None and _calls_unlink(enclosing.node):
                    continue
                if module_backstopped:
                    continue
                yield self.finding(
                    index, file, node,
                    "SharedMemory(create=True) with no unlink on any "
                    "exit path",
                    hint=(
                        "unlink in a finally/except in the creating "
                        "function, manage the segment with `with`, or "
                        "register a weakref.finalize backstop that "
                        "unlinks (see repro.engine.shm.SlabArena)"
                    ),
                )
