"""EXC001 — no silent exception swallowing in the engine.

The supervised executor's whole contract is that failures are *loud*:
a worker crash becomes a counted death, a failed chunk becomes a retry
or a structured quarantine row, a degraded transport becomes a metric
and an event.  A ``try/except: pass`` inside :mod:`repro.engine`
undoes that — the failure vanishes before the supervisor can count,
retry, or surface it, and the resulting "recovered" run lies about
what happened.

Two shapes are flagged, in engine modules only:

* a handler whose body does nothing (``pass``/``...``/a bare constant)
  — the error is dropped on the floor with no record;
* a bare ``except:`` that does not re-raise — it catches
  ``KeyboardInterrupt``/``SystemExit`` too, so even a well-meaning
  cleanup handler turns Ctrl-C into a swallowed event.

The sanctioned spelling for genuinely-ignorable errors is
``contextlib.suppress(...)``: it names the exception types at the call
site, reads as a deliberate decision, and cannot silently widen into a
catch-all.  Handlers that raise, log through :mod:`repro.obs`, or do
any real work are untouched.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule
from repro.analysis.index import SourceFile, SourceIndex

#: Only the engine is held to the loud-failure contract; the rest of
#: the package has no supervisor owed a report.
_ENGINE_PREFIX = "repro.engine"


def _is_silent_body(body: list[ast.stmt]) -> bool:
    """True when the handler body does nothing observable."""
    return all(
        isinstance(stmt, ast.Pass)
        or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
        for stmt in body
    )


def _reraises(body: list[ast.stmt]) -> bool:
    """True when any statement in the handler (re-)raises."""
    return any(
        isinstance(sub, ast.Raise)
        for stmt in body
        for sub in ast.walk(stmt)
    )


class SilentExceptionRule(Rule):
    """EXC001: engine code may not swallow exceptions silently."""

    id = "EXC001"
    severity = "error"
    title = "silent exception swallowing in engine code"
    rationale = (
        "the supervised executor turns failures into retries, metrics "
        "and quarantine rows; an except-pass in repro.engine drops the "
        "failure before the supervisor can count it.  Use "
        "contextlib.suppress(ExcType) for deliberately-ignorable "
        "errors, or report through repro.obs."
    )

    def check(self, index: SourceIndex) -> Iterator[Finding]:
        for file in index.target_files():
            if "tests" in file.path.parts:
                continue
            if not self._is_engine_module(file):
                continue
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                finding = self._check_handler(index, file, node)
                if finding is not None:
                    yield finding

    @staticmethod
    def _is_engine_module(file: SourceFile) -> bool:
        module = file.module
        return module == _ENGINE_PREFIX or module.startswith(
            _ENGINE_PREFIX + "."
        )

    def _check_handler(
        self, index: SourceIndex, file: SourceFile, node: ast.ExceptHandler
    ) -> Finding | None:
        if _is_silent_body(node.body):
            caught = (
                ast.unparse(node.type) if node.type is not None else "all"
            )
            return self.finding(
                index, file, node,
                f"exception handler for {caught} swallows the error "
                f"silently (body does nothing)",
                hint=(
                    "use contextlib.suppress(ExcType) to make the "
                    "ignore explicit, or record the failure (obs.event, "
                    "a metric, a retry/quarantine path) before moving on"
                ),
            )
        if node.type is None and not _reraises(node.body):
            return self.finding(
                index, file, node,
                "bare except: catches KeyboardInterrupt/SystemExit and "
                "does not re-raise",
                hint=(
                    "name the exception types being handled (except "
                    "Exception at the broadest), or re-raise after "
                    "cleanup"
                ),
            )
        return None
