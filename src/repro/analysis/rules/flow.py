"""Shared machinery for the dataflow rule family.

A :class:`FlowRule` checks one target file at a time against solved
CFG states and (for interprocedural domains) the resolved summary
table, and caches its findings per file: the key is the file's content
hash plus the domain's resolved-table hash plus the rule version, so a
warm run skips every file whose own bytes *and* whose view of the rest
of the package are unchanged.

The helpers here answer the one sharp question every flow rule hits:
which expressions does a CFG *element* actually evaluate?  Compound
headers must not be walked whole (an ``ast.For`` node contains its
entire body — statements that live in other blocks), and nested
``lambda``/``def`` bodies run later, under a different state.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.cache import content_hash
from repro.analysis.core import Finding, Rule
from repro.analysis.index import SourceFile, SourceIndex, dotted_parts
from repro.analysis.summaries import (
    DataflowContext,
    SummaryAnalysis,
    get_context,
)

__all__ = ["FlowRule", "calls_in", "element_exprs", "resolved_callable"]


def resolved_callable(
    file: SourceFile, call: ast.Call
) -> tuple[str | None, str | None]:
    """``(module, function)`` a call targets, resolved through the
    file's import bindings.  ``("numpy.random", "default_rng")`` for
    ``np.random.default_rng()`` under ``import numpy as np``; module is
    None for builtins/locals, function is None for non-name callees."""
    parts = dotted_parts(call.func)
    if not parts:
        return (None, None)
    binding = file.bindings.get(parts[0])
    if binding is None:
        return (None, parts[-1]) if len(parts) == 1 else (None, None)
    if binding.attr is None:
        dotted = [binding.module] + parts[1:]
    else:
        dotted = [binding.module, binding.attr] + parts[1:]
    return (".".join(dotted[:-1]), dotted[-1])


def element_exprs(element: ast.AST) -> list[ast.expr]:
    """The expressions a CFG element evaluates at its own position."""
    if isinstance(element, (ast.For, ast.AsyncFor)):
        return [element.iter]
    if isinstance(element, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in element.items]
    if isinstance(element, ast.ExceptHandler):
        return [element.type] if element.type is not None else []
    if isinstance(
        element, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        # Only decorators and defaults evaluate at the def site.
        exprs: list[ast.expr] = list(element.decorator_list)
        if hasattr(element, "args"):
            exprs += list(element.args.defaults)
            exprs += [d for d in element.args.kw_defaults if d is not None]
        return exprs
    if isinstance(element, ast.pattern):
        return []
    if isinstance(element, ast.expr):
        return [element]
    if isinstance(element, ast.stmt):
        return [
            child
            for child in ast.iter_child_nodes(element)
            if isinstance(child, ast.expr)
        ]
    return []


def calls_in(roots: Iterable[ast.AST]) -> Iterator[ast.Call]:
    """Every call evaluated under ``roots``, pruning nested function
    bodies (they execute later, under their own state)."""
    stack = list(roots)
    while stack:
        node = stack.pop()
        if isinstance(
            node,
            (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def describe_expr(expr: ast.expr) -> str:
    """A short human label for an argument expression."""
    if isinstance(expr, ast.Name):
        return repr(expr.id)
    try:
        text = ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "expression"
    return repr(text if len(text) <= 40 else text[:37] + "...")


class FlowRule(Rule):
    """Base class for CFG/dataflow rules with per-file findings cache."""

    #: Bump when the rule's logic changes (part of the cache key).
    version = 1

    #: The rule's :class:`SummaryAnalysis` domain, or None for rules
    #: whose marks never cross function boundaries.
    domain: type[SummaryAnalysis] | None = None

    def check(self, index: SourceIndex) -> Iterator[Finding]:
        context = get_context(index)
        resolved: dict[str, frozenset[str]] | None = None
        table_hash = ""
        if self.domain is not None:
            resolved = context.summaries(self.domain)
            table_hash = context.table_hash(self.domain)
        for file in index.target_files():
            yield from self._file_findings(
                index, context, file, resolved, table_hash
            )

    def _file_findings(
        self,
        index: SourceIndex,
        context: DataflowContext,
        file: SourceFile,
        resolved: dict[str, frozenset[str]] | None,
        table_hash: str,
    ) -> list[Finding]:
        section = f"findings-{self.id}"
        key = content_hash(
            f"{context.file_hash(file)}:{table_hash}:v{self.version}"
        )
        cached = context.cache.get(section, key)
        if isinstance(cached, dict) and isinstance(
            cached.get("findings"), list
        ):
            try:
                return [Finding(**entry) for entry in cached["findings"]]
            except TypeError:
                pass  # stale shape: recompute
        findings = list(self.check_file(index, context, file, resolved))
        context.cache.put(
            section,
            key,
            {"findings": [finding.to_dict() for finding in findings]},
        )
        return findings

    def check_file(
        self,
        index: SourceIndex,
        context: DataflowContext,
        file: SourceFile,
        resolved: dict[str, frozenset[str]] | None,
    ) -> Iterator[Finding]:
        raise NotImplementedError
