"""The rule registry: every shipped invariant check, by id.

Adding a rule is one entry here — the runner, the CLI's
``--select``/``--ignore``, the reporters and the README rule table all
derive from :func:`all_rules`.
"""

from __future__ import annotations

from repro.analysis.core import Rule
from repro.analysis.rules.api import FacadeRule
from repro.analysis.rules.exceptions import SilentExceptionRule
from repro.analysis.rules.fork import ForkSafetyRule
from repro.analysis.rules.obs_rules import ObsGranularityRule
from repro.analysis.rules.pack import PackedFlowRule, PackedWireRule
from repro.analysis.rules.parse import ParseFailureRule
from repro.analysis.rules.reg import RegistryRule
from repro.analysis.rules.res import ResourcePathRule
from repro.analysis.rules.rng import GlobalRngRule, SeedContractRule
from repro.analysis.rules.seed import SeedTaintRule
from repro.analysis.rules.shm import ShmUnlinkRule
from repro.analysis.rules.wire import WireContractRule

__all__ = ["all_rules", "rule_ids", "select_rules"]


def all_rules() -> list[Rule]:
    """One fresh instance of every shipped rule, ordered by id."""
    rules = [
        ParseFailureRule(),
        GlobalRngRule(),
        SeedContractRule(),
        SeedTaintRule(),
        ForkSafetyRule(),
        SilentExceptionRule(),
        ShmUnlinkRule(),
        PackedWireRule(),
        PackedFlowRule(),
        RegistryRule(),
        ObsGranularityRule(),
        ResourcePathRule(),
        WireContractRule(),
        FacadeRule(),
    ]
    return sorted(rules, key=lambda rule: rule.id)


def rule_ids() -> tuple[str, ...]:
    return tuple(rule.id for rule in all_rules())


def select_rules(
    select: tuple[str, ...] = (), ignore: tuple[str, ...] = ()
) -> list[Rule]:
    """The rule set after ``--select``/``--ignore`` filtering.

    Unknown ids raise ``ValueError`` — a typo'd selection silently
    running zero rules is how linters rot.
    """
    known = set(rule_ids())
    unknown = (set(select) | set(ignore)) - known
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {sorted(unknown)}; known: {sorted(known)}"
        )
    rules = all_rules()
    if select:
        rules = [rule for rule in rules if rule.id in select]
    return [rule for rule in rules if rule.id not in ignore]
