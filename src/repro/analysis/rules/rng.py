"""RNG001/RNG002 — the determinism contract.

Every count this engine produces is bitwise reproducible because all
randomness flows through explicit ``numpy.random.Generator`` streams
seeded by the derived-seed scheme (:mod:`repro.rng`).  Global-state RNG
calls break that silently: the result depends on import order, thread
interleaving, and whatever sampled before you.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule
from repro.analysis.index import SourceFile, SourceIndex, dotted_parts

#: Legacy ``numpy.random`` module-level functions (global hidden state).
_NP_LEGACY = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "ranf", "sample", "choice", "bytes", "shuffle", "permutation",
    "beta", "binomial", "exponential", "gamma", "geometric", "normal",
    "poisson", "uniform", "get_state", "set_state", "RandomState",
})

#: ``random`` stdlib module functions with global hidden state.
_STDLIB_LEGACY = frozenset({
    "seed", "random", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "gauss", "normalvariate",
    "getstate", "setstate", "betavariate", "expovariate", "randbytes",
})

#: Modules allowed to touch RNG construction primitives directly.
_EXEMPT_MODULES = frozenset({"repro.rng"})


def _np_random_call(file: SourceFile, call: ast.Call) -> str | None:
    """``np.random.<fn>`` (any numpy alias) -> fn name, else None."""
    parts = dotted_parts(call.func)
    if not parts or len(parts) < 2:
        return None
    binding = file.bindings.get(parts[0])
    if binding is None:
        return None
    # import numpy as np -> np.random.seed;  from numpy import random
    # -> random.seed;  import numpy.random as nr -> nr.seed.
    dotted = ".".join(
        [binding.module + ("." + binding.attr if binding.attr else "")]
        + parts[1:]
    )
    if dotted.startswith("numpy.random.") and dotted.count(".") == 2:
        return dotted.rsplit(".", 1)[-1]
    return None


def _stdlib_random_call(file: SourceFile, call: ast.Call) -> str | None:
    parts = dotted_parts(call.func)
    if parts and len(parts) == 2:
        binding = file.bindings.get(parts[0])
        if binding is not None and binding.module == "random" and not binding.attr:
            return parts[1]
    if isinstance(call.func, ast.Name):
        binding = file.bindings.get(call.func.id)
        if binding is not None and binding.module == "random" and binding.attr:
            return binding.attr
    return None


class GlobalRngRule(Rule):
    """RNG001: no global-state RNG calls outside ``repro.rng``."""

    id = "RNG001"
    severity = "error"
    title = "global-state RNG call"
    rationale = (
        "np.random.<fn> and stdlib random draw from hidden global "
        "state; results then depend on import order and scheduling, "
        "breaking the serial == pooled bitwise guarantee."
    )

    def check(self, index: SourceIndex) -> Iterator[Finding]:
        for file in index.target_files():
            if file.module in _EXEMPT_MODULES:
                continue
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Call):
                    continue
                fn = _np_random_call(file, node)
                if fn in _NP_LEGACY:
                    yield self.finding(
                        index, file, node,
                        f"call to global-state np.random.{fn}",
                        hint=(
                            "thread an explicit numpy Generator through "
                            "repro.rng.as_generator / chunk_generator"
                        ),
                    )
                    continue
                fn = _stdlib_random_call(file, node)
                if fn in _STDLIB_LEGACY:
                    yield self.finding(
                        index, file, node,
                        f"call to global-state random.{fn}",
                        hint=(
                            "thread an explicit numpy Generator through "
                            "repro.rng.as_generator / chunk_generator"
                        ),
                    )


def _is_public(qualname: str) -> bool:
    return not any(part.startswith("_") for part in qualname.split("."))


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return names


def _calls_name(node: ast.AST, name: str) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Name) and func.id == name:
                return True
            if isinstance(func, ast.Attribute) and func.attr == name:
                return True
    return False


def _has_generator_branch(node: ast.AST, param: str) -> bool:
    """``isinstance(param, ... Generator ...)`` anywhere in the body."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "isinstance"
            and sub.args
            and isinstance(sub.args[0], ast.Name)
            and sub.args[0].id == param
        ):
            if "Generator" in ast.dump(sub.args[1] if len(sub.args) > 1 else sub):
                return True
    return False


def _forwards_param(node: ast.AST, param: str) -> bool:
    """``param`` passed (positionally or by keyword) to some call other
    than ``default_rng`` — delegating the normalization downstream."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        tail = sub.func.attr if isinstance(sub.func, ast.Attribute) else (
            sub.func.id if isinstance(sub.func, ast.Name) else None
        )
        if tail in ("default_rng", "as_generator", "isinstance"):
            continue
        for arg in sub.args:
            if isinstance(arg, ast.Name) and arg.id == param:
                return True
        for kw in sub.keywords:
            if isinstance(kw.value, ast.Name) and kw.value.id == param:
                return True
    return False


class SeedContractRule(Rule):
    """RNG002: public seed-taking entry points must normalize through
    ``repro.rng.as_generator`` (seed-or-Generator contract)."""

    id = "RNG002"
    severity = "error"
    title = "seed param bypasses as_generator"
    rationale = (
        "every public sampling entry point accepts seed-or-Generator; "
        "normalizing anywhere but repro.rng.as_generator forks the "
        "contract and drifts from the derived-seed scheme."
    )

    #: Parameter spellings that carry the seed-or-Generator contract.
    PARAMS = ("seed", "seed_or_rng")

    def check(self, index: SourceIndex) -> Iterator[Finding]:
        for file in index.target_files():
            if file.module in _EXEMPT_MODULES or not file.module.startswith(
                "repro."
            ):
                continue
            for info in file.functions.values():
                if not _is_public(info.qualname):
                    continue
                params = [p for p in _param_names(info.node) if p in self.PARAMS]
                if not params:
                    continue
                node = info.node
                for param in params:
                    if _calls_name(node, "as_generator"):
                        continue
                    if _has_generator_branch(node, param):
                        continue
                    if _forwards_param(node, param):
                        continue
                    yield self.finding(
                        index, file, node,
                        f"public entry point {info.qualname}() takes "
                        f"{param!r} but never routes it through "
                        f"repro.rng.as_generator",
                        hint=(
                            "normalize with as_generator(seed) (accepts "
                            "None/int/SeedSequence/Generator) or forward "
                            "the seed to an entry point that does"
                        ),
                    )
