"""PACK001/PACK002 — the packed uint64 wire must not silently mix with
uint8 rows.

PR 5's hot path keeps shots bit-packed (shot-major uint64 words,
little-endian bit order) from sampler to error count.  Packed and
unpacked arrays are both plain ``np.ndarray``\\ s, so feeding one where
the other is expected fails *silently* — popcounts of uint8 rows are
valid numbers, just wrong ones.  Crossing the ``repro.gf2.bitops``
boundary therefore requires an explicit pack/unpack call.

**PACK002** is the real check: flow-sensitive provenance over each
function's CFG, following packed/unpacked marks through assignments,
branches, and function returns (interprocedural summaries).
**PACK001** remains as the fallback for what the CFG layer cannot see
— module-level statements (import-time wiring has no function CFG).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule
from repro.analysis.index import SourceFile, SourceIndex, dotted_tail
from repro.analysis.rules.flow import (
    FlowRule,
    calls_in,
    describe_expr,
    element_exprs,
)
from repro.analysis.summaries import DataflowContext, SummaryAnalysis

#: Calls whose results are packed uint64 rows.
PACKED_PRODUCERS = frozenset({
    "sample_detectors_packed", "decode_batch_packed",
    "packed_detector_samples", "pack_detector_samples",
    "pack_rows", "pack_bits", "random_packed",
    "detect_packed", "decode_packed",
})

#: Calls whose results are unpacked uint8 rows.
UNPACKED_PRODUCERS = frozenset({
    "sample_detectors", "decode_batch", "unpack_rows", "unpack_bits",
    "detect", "decode",
})

#: Functions whose array arguments must be packed (the bitops boundary
#: plus the packed decoder entry).
PACKED_CONSUMERS = frozenset({
    "decode_batch_packed", "popcount_rows", "popcount",
    "nonzero_rows_packed", "dedupe_rows_packed", "xor_rows_any",
    "nonzero_bits", "parity_words", "unpack_rows", "unpack_bits",
})

#: Functions whose array arguments must be unpacked.  The ``pack_*``
#: converters appear here on purpose: they are the *explicit* packing
#: step, so handing them an already-packed array double-packs it.
UNPACKED_CONSUMERS = frozenset({
    "decode_batch", "pack_rows", "pack_bits", "pack_detector_samples",
})


def _targets(node: ast.expr) -> list[str]:
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, (ast.Tuple, ast.List)):
        return [e.id for e in node.elts if isinstance(e, ast.Name)]
    return []


class _Provenance(ast.NodeVisitor):
    """Order-sensitive walk of one function: track names assigned from
    packed/unpacked producers and check consumer call sites."""

    def __init__(self):
        self.marks: dict[str, str] = {}
        self.violations: list[tuple[ast.Call, str, str, str]] = []

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        mark = self._call_mark(node.value)
        for target in node.targets:
            for name in _targets(target):
                if mark is None:
                    self.marks.pop(name, None)
                else:
                    self.marks[name] = mark

    def _call_mark(self, value: ast.expr) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        tail = dotted_tail(value.func)
        if tail in PACKED_PRODUCERS:
            return "packed"
        if tail in UNPACKED_PRODUCERS:
            return "unpacked"
        return None

    # Nested defs are indexed as their own functions — do not walk
    # into them here or their violations would double-report.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        tail = dotted_tail(node.func)
        expected = (
            "packed" if tail in PACKED_CONSUMERS
            else "unpacked" if tail in UNPACKED_CONSUMERS
            else None
        )
        if expected is None:
            return
        for arg in node.args:
            if isinstance(arg, ast.Name):
                mark = self.marks.get(arg.id)
                if mark is not None and mark != expected:
                    self.violations.append((node, arg.id, mark, tail))


_CONVERSION_HINT = (
    "convert explicitly at the boundary "
    "(gf2.bitops.pack_rows/unpack_rows or "
    "backends.pack_detector_samples) or use the "
    "matching-domain API"
)


class PackedWireRule(Rule):
    """PACK001: packed/unpacked crossings in module-level statements.

    Function bodies are covered flow-sensitively by PACK002; this rule
    keeps watching the one place a CFG does not exist — import-time
    wiring at module scope."""

    id = "PACK001"
    severity = "error"
    title = "packed/unpacked wire mix without explicit conversion"
    rationale = (
        "packed uint64 words and unpacked uint8 rows are both plain "
        "ndarrays; crossing the gf2.bitops boundary without pack_rows/"
        "unpack_rows produces numerically valid but wrong counts."
    )

    def check(self, index: SourceIndex) -> Iterator[Finding]:
        for file in index.target_files():
            tracker = _Provenance()
            for stmt in file.tree.body:
                tracker.visit(stmt)
            for call, name, mark, consumer in tracker.violations:
                other = "unpacked" if mark == "packed" else "packed"
                yield self.finding(
                    index, file, call,
                    f"{mark} array {name!r} passed to {other}-domain "
                    f"{consumer}() at module level",
                    hint=_CONVERSION_HINT,
                )


class PackProvenanceAnalysis(SummaryAnalysis):
    """Marks: ``packed`` / ``unpacked`` row provenance."""

    domain_name = "pack"
    domain_version = 1

    def intrinsic_call_marks(
        self, state, call: ast.Call
    ) -> frozenset[str] | None:
        tail = dotted_tail(call.func)
        if tail in PACKED_PRODUCERS:
            return frozenset({"packed"})
        if tail in UNPACKED_PRODUCERS:
            return frozenset({"unpacked"})
        return None


class PackedFlowRule(FlowRule):
    """PACK002: flow-sensitive packed/unpacked provenance checking."""

    id = "PACK002"
    severity = "error"
    title = "packed/unpacked provenance mix on a dataflow path"
    rationale = (
        "a value assigned from a packed producer on any path must not "
        "reach an unpacked-domain consumer (and vice versa); both are "
        "plain ndarrays, so the mix is silent."
    )
    version = 1
    domain = PackProvenanceAnalysis

    def check_file(
        self,
        index: SourceIndex,
        context: DataflowContext,
        file: SourceFile,
        resolved,
    ) -> Iterator[Finding]:
        for info in file.functions.values():
            analysis = PackProvenanceAnalysis(file, index, resolved)
            cfg = context.cfg(info)
            for element, state in analysis.walk(cfg):
                for call in calls_in(element_exprs(element)):
                    tail = dotted_tail(call.func)
                    if tail in PACKED_CONSUMERS:
                        expected = "packed"
                    elif tail in UNPACKED_CONSUMERS:
                        expected = "unpacked"
                    else:
                        continue
                    wrong = "unpacked" if expected == "packed" else "packed"
                    for arg in call.args:
                        marks = analysis.expr_marks(state, arg)
                        if wrong in marks and expected not in marks:
                            yield self.finding(
                                index, file, call,
                                f"{wrong} value {describe_expr(arg)} "
                                f"passed to {expected}-domain {tail}() "
                                f"in {info.qualname}()",
                                hint=_CONVERSION_HINT,
                            )
