"""PACK001 — the packed uint64 wire must not silently mix with uint8
rows.

PR 5's hot path keeps shots bit-packed (shot-major uint64 words,
little-endian bit order) from sampler to error count.  Packed and
unpacked arrays are both plain ``np.ndarray``\\ s, so feeding one where
the other is expected fails *silently* — popcounts of uint8 rows are
valid numbers, just wrong ones.  Crossing the ``repro.gf2.bitops``
boundary therefore requires an explicit pack/unpack call; this rule
tracks value provenance through assignments and flags implicit
crossings.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule
from repro.analysis.index import SourceIndex, dotted_tail

#: Calls whose results are packed uint64 rows.
PACKED_PRODUCERS = frozenset({
    "sample_detectors_packed", "decode_batch_packed",
    "packed_detector_samples", "pack_detector_samples",
    "pack_rows", "pack_bits", "random_packed",
    "detect_packed", "decode_packed",
})

#: Calls whose results are unpacked uint8 rows.
UNPACKED_PRODUCERS = frozenset({
    "sample_detectors", "decode_batch", "unpack_rows", "unpack_bits",
    "detect", "decode",
})

#: Functions whose array arguments must be packed (the bitops boundary
#: plus the packed decoder entry).
PACKED_CONSUMERS = frozenset({
    "decode_batch_packed", "popcount_rows", "popcount",
    "nonzero_rows_packed", "dedupe_rows_packed", "xor_rows_any",
    "nonzero_bits", "parity_words", "unpack_rows", "unpack_bits",
})

#: Functions whose array arguments must be unpacked.  The ``pack_*``
#: converters appear here on purpose: they are the *explicit* packing
#: step, so handing them an already-packed array double-packs it.
UNPACKED_CONSUMERS = frozenset({
    "decode_batch", "pack_rows", "pack_bits", "pack_detector_samples",
})


def _targets(node: ast.expr) -> list[str]:
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, (ast.Tuple, ast.List)):
        return [e.id for e in node.elts if isinstance(e, ast.Name)]
    return []


class _Provenance(ast.NodeVisitor):
    """Order-sensitive walk of one function: track names assigned from
    packed/unpacked producers and check consumer call sites."""

    def __init__(self):
        self.marks: dict[str, str] = {}
        self.violations: list[tuple[ast.Call, str, str, str]] = []

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        mark = self._call_mark(node.value)
        for target in node.targets:
            for name in _targets(target):
                if mark is None:
                    self.marks.pop(name, None)
                else:
                    self.marks[name] = mark

    def _call_mark(self, value: ast.expr) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        tail = dotted_tail(value.func)
        if tail in PACKED_PRODUCERS:
            return "packed"
        if tail in UNPACKED_PRODUCERS:
            return "unpacked"
        return None

    # Nested defs are indexed as their own functions — do not walk
    # into them here or their violations would double-report.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        tail = dotted_tail(node.func)
        expected = (
            "packed" if tail in PACKED_CONSUMERS
            else "unpacked" if tail in UNPACKED_CONSUMERS
            else None
        )
        if expected is None:
            return
        for arg in node.args:
            if isinstance(arg, ast.Name):
                mark = self.marks.get(arg.id)
                if mark is not None and mark != expected:
                    self.violations.append((node, arg.id, mark, tail))


class PackedWireRule(Rule):
    """PACK001: no implicit packed/unpacked domain crossings."""

    id = "PACK001"
    severity = "error"
    title = "packed/unpacked wire mix without explicit conversion"
    rationale = (
        "packed uint64 words and unpacked uint8 rows are both plain "
        "ndarrays; crossing the gf2.bitops boundary without pack_rows/"
        "unpack_rows produces numerically valid but wrong counts."
    )

    def check(self, index: SourceIndex) -> Iterator[Finding]:
        for file in index.target_files():
            for info in file.functions.values():
                tracker = _Provenance()
                for stmt in info.node.body:
                    tracker.visit(stmt)
                for call, name, mark, consumer in tracker.violations:
                    other = "unpacked" if mark == "packed" else "packed"
                    yield self.finding(
                        index, file, call,
                        f"{mark} array {name!r} passed to {other}-domain "
                        f"{consumer}() in {info.qualname}()",
                        hint=(
                            "convert explicitly at the boundary "
                            "(gf2.bitops.pack_rows/unpack_rows or "
                            "backends.pack_detector_samples) or use the "
                            "matching-domain API"
                        ),
                    )
