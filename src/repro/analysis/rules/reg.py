"""REG001 — backends/decoders go through their registries.

PR 2/PR 3 put every sampler and decoder behind name-keyed registries
with capability flags (``packed``, ``batched``, ``graphlike_only``…):
the engine, CLI, harness and examples all resolve by name, so adding
an implementation is one ``register_*`` call.  Direct instantiation
outside the registry bypasses alias canonicalization, capability
checks, and the fingerprint-keyed caches — and forks the code path the
registries exist to unify.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule
from repro.analysis.index import SourceFile, SourceIndex, dotted_tail

_REGISTER_CALLS = frozenset({"register_decoder", "register_backend"})


def _registered_impls(index: SourceIndex) -> dict[str, set[str]]:
    """class name -> modules allowed to instantiate it directly.

    Discovered statically: every ``register_decoder``/``register_backend``
    call is located, its factory argument (a lambda or a same-module
    function) is walked, and class names instantiated inside become the
    registered implementations.  Allowed modules: the registering
    module and the module defining the class.
    """
    impls: dict[str, set[str]] = {}
    for file in index.files:
        for node in ast.walk(file.tree):
            if not (
                isinstance(node, ast.Call)
                and dotted_tail(node.func) in _REGISTER_CALLS
            ):
                continue
            factory = None
            if len(node.args) >= 2:
                factory = node.args[1]
            else:
                for kw in node.keywords:
                    if kw.arg == "factory":
                        factory = kw.value
            for cls in _factory_classes(index, file, factory):
                allowed = impls.setdefault(cls, set())
                allowed.add(file.module)
                allowed.update(index.class_modules.get(cls, ()))
    return impls


def _factory_classes(
    index: SourceIndex, file: SourceFile, factory: ast.expr | None
) -> Iterator[str]:
    if factory is None:
        return
    body: ast.AST | None = None
    if isinstance(factory, ast.Lambda):
        body = factory.body
    elif isinstance(factory, ast.Name):
        info = file.functions.get(factory.id)
        if info is not None:
            body = info.node
    if body is None:
        return
    for sub in ast.walk(body):
        if isinstance(sub, ast.Call):
            tail = dotted_tail(sub.func)
            if tail in index.class_modules:
                yield tail


class RegistryRule(Rule):
    """REG001: no direct instantiation of registered implementations
    outside their registry module (tests exempt)."""

    id = "REG001"
    severity = "warning"
    title = "registered implementation instantiated directly"
    rationale = (
        "direct construction bypasses alias canonicalization, "
        "capability flags and the fingerprint-keyed caches; resolve by "
        "name through repro.backends / repro.decoders instead."
    )

    def check(self, index: SourceIndex) -> Iterator[Finding]:
        impls = _registered_impls(index)
        if not impls:
            return
        for file in index.target_files():
            if "tests" in file.path.parts:
                continue
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Name):
                    continue
                allowed = impls.get(func.id)
                if allowed is None or file.module in allowed:
                    continue
                yield self.finding(
                    index, file, node,
                    f"direct instantiation of registered implementation "
                    f"{func.id}()",
                    hint=(
                        "resolve by name: compile_backend(circuit, name) "
                        "/ compile_decoder(dem, name), or "
                        "Circuit.compile(sampler=..., decoder=...)"
                    ),
                )
