"""Rule-based static analysis for the repro codebase.

The repo's correctness contracts — the derived-seed RNG scheme, fork
safety of pool workers, SharedMemory unlink discipline, the packed
uint64 wire format, capability-flagged registries, telemetry
granularity, and the study facade boundary — are invariants the type
system can't see.  This package makes them machine-checkable: parse
the tree once into a :class:`~repro.analysis.index.SourceIndex`, run
pluggable :class:`~repro.analysis.core.Rule` visitors, report
structured findings with fix hints.

Run it as ``python -m repro.analysis src/repro`` (``--format json``
for CI); suppress a single line with ``# repro: ignore[RULE-ID]``.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.core import AnalysisResult, Finding, Rule
from repro.analysis.index import SourceIndex
from repro.analysis.report import (
    JSON_SCHEMA_VERSION,
    render_github,
    render_json,
    render_text,
)
from repro.analysis.rules import all_rules, rule_ids, select_rules
from repro.analysis.runner import analyze, build_index

__all__ = [
    "AnalysisResult",
    "Baseline",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "Rule",
    "SourceIndex",
    "all_rules",
    "analyze",
    "build_index",
    "render_github",
    "render_json",
    "render_text",
    "rule_ids",
    "select_rules",
]
