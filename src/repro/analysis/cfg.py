"""Per-function control-flow graphs over the raw AST.

The dataflow rules (:mod:`repro.analysis.dataflow`) need to follow a
value through branches, loops, ``try``/``except``/``finally``, ``with``
blocks and early returns — precision a flat ``ast.walk`` cannot give.
:func:`build_cfg` lowers one function body into basic blocks of
*elements*:

* simple statements (``Assign``, ``Return``, ``Expr``, ...) appear
  whole;
* compound statements contribute only their *header* — an ``if``/
  ``while`` test expression, the ``ast.For`` node (its target binds
  from its iterable), the ``ast.With`` node (its items bind), the
  ``ast.ExceptHandler`` (its ``as`` name binds).  A transfer function
  must never walk into a compound node's body: those statements live in
  their own blocks.

Lowering guarantees (the properties ``tests/analysis/test_cfg.py``
asserts over every function in the real tree):

* every block is reachable from ``entry`` — statically dead code
  (after a ``return``, say) is dropped during lowering, not emitted as
  orphan blocks;
* every block reaches ``exit`` — loop headers always keep their exit
  edge (``while True`` without ``break`` included: the analyses here
  are conservative may/must approximations, not termination proofs).

``finally`` semantics: a jump (``return``/``break``/``continue``/
``raise``) that crosses a ``try``/``finally`` *inlines a fresh copy* of
the pending finally bodies on its path, innermost first, so a
``return`` inside a ``finally`` naturally overrides the jump — the
inlined copy's own ``return`` terminates the path.  Normal completion
routes through one shared finally subgraph.  Exceptions are modeled
from explicit ``raise`` statements and conservatively from *any* point
inside a ``try`` body (edge to every same-level handler).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Block", "CFG", "build_cfg"]


class Block:
    """One basic block: an ordered run of elements plus edges."""

    __slots__ = ("id", "label", "stmts", "succs", "preds")

    def __init__(self, block_id: int, label: str = ""):
        self.id = block_id
        self.label = label
        self.stmts: list[ast.AST] = []
        self.succs: set[int] = set()
        self.preds: set[int] = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block({self.id}, {self.label!r}, "
            f"stmts={len(self.stmts)}, succs={sorted(self.succs)})"
        )


class CFG:
    """The control-flow graph of one function definition."""

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        blocks: dict[int, Block],
        entry: int,
        exit: int,
        exc_edges: set[tuple[int, int]] | None = None,
    ):
        self.func = func
        self.blocks = blocks
        self.entry = entry
        self.exit = exit
        #: Edges modeling "any point in this block may raise" (try body
        #: -> handler / -> finally).  The solver flows the join over
        #: every point in the source block along these, not just its
        #: out-state — an exception may fire before the block finished.
        self.exc_edges: set[tuple[int, int]] = exc_edges or set()

    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]

    def reachable_from_entry(self) -> set[int]:
        seen = {self.entry}
        queue = [self.entry]
        while queue:
            for succ in self.blocks[queue.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    queue.append(succ)
        return seen

    def reaches_exit(self) -> set[int]:
        seen = {self.exit}
        queue = [self.exit]
        while queue:
            for pred in self.blocks[queue.pop()].preds:
                if pred not in seen:
                    seen.add(pred)
                    queue.append(pred)
        return seen

    def rpo(self) -> list[int]:
        """Block ids in reverse postorder from entry (loop headers
        before their bodies — the order the worklist solver seeds)."""
        order: list[int] = []
        seen: set[int] = set()
        stack: list[tuple[int, Iterator[int]]] = [
            (self.entry, iter(sorted(self.blocks[self.entry].succs)))
        ]
        seen.add(self.entry)
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(
                        (succ, iter(sorted(self.blocks[succ].succs)))
                    )
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
        order.reverse()
        return order


@dataclass
class _Frame:
    """One enclosing construct a jump may have to unwind through."""

    kind: str  # "loop" | "try"
    continue_target: int = -1
    break_target: int = -1
    handlers: tuple[int, ...] = ()
    finalbody: list = field(default_factory=list)


class _Builder:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.func = func
        self.blocks: dict[int, Block] = {}
        self._next = 0
        self.entry = self._new("entry").id
        self.exit = self._new("exit").id
        self.frames: list[_Frame] = []
        self.exc_edges: set[tuple[int, int]] = set()

    # -- plumbing --------------------------------------------------------

    def _new(self, label: str = "") -> Block:
        block = Block(self._next, label)
        self.blocks[self._next] = block
        self._next += 1
        return block

    def _edge(self, src: int | None, dst: int) -> None:
        if src is None:
            return
        self.blocks[src].succs.add(dst)
        self.blocks[dst].preds.add(src)

    # -- lowering --------------------------------------------------------

    def build(self) -> CFG:
        end = self._lower(self.func.body, self.entry)
        self._edge(end, self.exit)
        self._prune()
        return CFG(
            self.func, self.blocks, self.entry, self.exit, self.exc_edges
        )

    def _lower(self, body: list, current: int | None) -> int | None:
        """Lower ``body`` starting in block ``current``.  Returns the
        block that falls through, or None when every path jumped away
        (remaining statements are dead code and are dropped)."""
        for stmt in body:
            if current is None:
                break
            current = self._stmt(stmt, current)
        return current

    def _stmt(self, node: ast.stmt, current: int) -> int | None:
        if isinstance(node, ast.If):
            return self._if(node, current)
        if isinstance(node, (ast.While,)):
            return self._while(node, current)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return self._for(node, current)
        if isinstance(node, ast.Try):
            return self._try(node, current)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            return self._with(node, current)
        if isinstance(node, ast.Return):
            return self._return(node, current)
        if isinstance(node, ast.Raise):
            return self._raise(node, current)
        if isinstance(node, ast.Break):
            return self._break_continue(node, current, "break_target")
        if isinstance(node, ast.Continue):
            return self._break_continue(node, current, "continue_target")
        if isinstance(node, ast.Match):
            return self._match(node, current)
        # Simple statement (incl. nested def/class, which bind a name).
        self.blocks[current].stmts.append(node)
        return current

    def _if(self, node: ast.If, current: int) -> int | None:
        self.blocks[current].stmts.append(node.test)
        then_entry = self._new("then").id
        self._edge(current, then_entry)
        then_end = self._lower(node.body, then_entry)
        if node.orelse:
            else_entry = self._new("else").id
            self._edge(current, else_entry)
            else_end = self._lower(node.orelse, else_entry)
        else:
            else_end = current
        ends = [end for end in (then_end, else_end) if end is not None]
        if not ends:
            return None
        after = self._new("after-if").id
        for end in ends:
            self._edge(end, after)
        return after

    def _loop(
        self, node, current: int, header_element: ast.AST
    ) -> int | None:
        header = self._new("loop").id
        self._edge(current, header)
        self.blocks[header].stmts.append(header_element)
        after = self._new("after-loop").id
        self.frames.append(
            _Frame(kind="loop", continue_target=header, break_target=after)
        )
        body_entry = self._new("loop-body").id
        self._edge(header, body_entry)
        body_end = self._lower(node.body, body_entry)
        self.frames.pop()
        self._edge(body_end, header)
        if node.orelse:
            else_entry = self._new("loop-else").id
            self._edge(header, else_entry)
            else_end = self._lower(node.orelse, else_entry)
            self._edge(else_end, after)
        else:
            # Kept even for `while True`: exit reachability over
            # termination precision (see module docstring).
            self._edge(header, after)
        return after

    def _while(self, node: ast.While, current: int) -> int | None:
        return self._loop(node, current, node.test)

    def _for(self, node, current: int) -> int | None:
        # The ast.For node itself is the header element: its target
        # binds from its iterable on every iteration.
        return self._loop(node, current, node)

    def _with(self, node, current: int) -> int | None:
        self.blocks[current].stmts.append(node)
        return self._lower(node.body, current)

    def _try(self, node: ast.Try, current: int) -> int | None:
        body_entry = self._new("try").id
        self._edge(current, body_entry)
        handler_blocks = tuple(
            self._new(f"except-{i}").id
            for i in range(len(node.handlers))
        )
        if node.finalbody:
            self.frames.append(
                _Frame(kind="try", finalbody=list(node.finalbody))
            )
        finally_frame = self.frames[-1] if node.finalbody else None
        self.frames.append(_Frame(kind="try", handlers=handler_blocks))
        watermark = self._next
        body_end = self._lower(node.body, body_entry)
        body_blocks = [body_entry] + list(range(watermark, self._next))
        # Any point in the body may raise: edge to every same-level
        # handler (state at a handler entry joins the whole body).
        for block_id in body_blocks:
            if block_id in self.blocks:
                for handler in handler_blocks:
                    self._edge(block_id, handler)
                    self.exc_edges.add((block_id, handler))
        self.frames.pop()  # handler frame: handlers don't catch their own
        else_end = body_end
        if node.orelse and body_end is not None:
            else_end = self._lower(node.orelse, body_end)
        handler_ends = []
        for handler_block, handler in zip(handler_blocks, node.handlers):
            self.blocks[handler_block].stmts.append(handler)
            handler_ends.append(self._lower(handler.body, handler_block))
        if finally_frame is not None:
            self.frames.pop()
        ends = [
            end for end in (else_end, *handler_ends) if end is not None
        ]
        if node.finalbody:
            exceptional_ends: list[int] = []
            if not node.handlers:
                # try/finally with no handlers: an in-body exception
                # still runs the finally on its way out.
                exceptional_ends = [
                    block_id
                    for block_id in body_blocks
                    if block_id in self.blocks and block_id != else_end
                ]
            if not ends and not exceptional_ends:
                return None
            fin_entry = self._new("finally").id
            for end in ends:
                self._edge(end, fin_entry)
            for end in exceptional_ends:
                self._edge(end, fin_entry)
                self.exc_edges.add((end, fin_entry))
            fin_end = self._lower(node.finalbody, fin_entry)
            ends = [fin_end] if fin_end is not None else []
        if not ends:
            return None
        after = self._new("after-try").id
        for end in ends:
            self._edge(end, after)
        return after

    def _match(self, node: ast.Match, current: int) -> int | None:
        self.blocks[current].stmts.append(node.subject)
        after = self._new("after-match").id
        self._edge(current, after)  # no case may match
        for case in node.cases:
            case_entry = self._new("case").id
            self._edge(current, case_entry)
            self.blocks[case_entry].stmts.append(case.pattern)
            self._edge(self._lower(case.body, case_entry), after)
        return after

    # -- jumps -----------------------------------------------------------

    def _unwind(
        self, current: int | None, stop: _Frame | None
    ) -> int | None:
        """Inline the finally bodies pending between the jump site and
        ``stop`` (exclusive; None = unwind everything), innermost
        first.  Each body is lowered with the frame stack truncated to
        its own enclosing context, so a ``return`` *inside* a finally
        resolves against the right frames and overrides the jump."""
        for depth in range(len(self.frames) - 1, -1, -1):
            frame = self.frames[depth]
            if frame is stop:
                break
            if frame.finalbody and current is not None:
                saved = self.frames
                self.frames = self.frames[:depth]
                try:
                    current = self._lower(frame.finalbody, current)
                finally:
                    self.frames = saved
            if current is None:
                return None
        return current

    def _return(self, node: ast.Return, current: int) -> None:
        self.blocks[current].stmts.append(node)
        self._edge(self._unwind(current, stop=None), self.exit)
        return None

    def _raise(self, node: ast.Raise, current: int) -> None:
        self.blocks[current].stmts.append(node)
        catcher = None
        for frame in reversed(self.frames):
            if frame.handlers:
                catcher = frame
                break
        if catcher is not None:
            caught = self._unwind(current, stop=catcher)
            for handler in catcher.handlers:
                self._edge(caught, handler)
        # The handler may not match (or there is none): the exception
        # unwinds every finally and leaves the function.
        self._edge(self._unwind(current, stop=None), self.exit)
        return None

    def _break_continue(
        self, node, current: int, target_attr: str
    ) -> None:
        self.blocks[current].stmts.append(node)
        loop = None
        for frame in reversed(self.frames):
            if frame.kind == "loop":
                loop = frame
                break
        if loop is None:
            # break/continue outside a loop is a SyntaxError upstream;
            # degrade to an exit edge rather than crashing.
            self._edge(self._unwind(current, stop=None), self.exit)
            return None
        self._edge(
            self._unwind(current, stop=loop), getattr(loop, target_attr)
        )
        return None

    # -- cleanup ---------------------------------------------------------

    def _prune(self) -> None:
        """Drop blocks unreachable from entry (eagerly-created joins
        whose every feeder jumped away) and give sink blocks an exit
        edge so every surviving block reaches exit."""
        reachable = {self.entry}
        queue = [self.entry]
        while queue:
            for succ in self.blocks[queue.pop()].succs:
                if succ not in reachable:
                    reachable.add(succ)
                    queue.append(succ)
        reachable.add(self.exit)
        for block_id in list(self.blocks):
            if block_id not in reachable:
                del self.blocks[block_id]
        for block in self.blocks.values():
            block.succs &= reachable
            block.preds &= reachable
            if not block.succs and block.id != self.exit:
                self._edge(block.id, self.exit)
        self.exc_edges = {
            (src, dst)
            for src, dst in self.exc_edges
            if src in reachable and dst in reachable
        }


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Lower one function definition into its control-flow graph."""
    return _Builder(func).build()
