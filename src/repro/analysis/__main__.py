"""``python -m repro.analysis`` — the static-analysis CLI.

Exit codes: 0 clean, 1 findings outside the baseline, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.baseline import Baseline
from repro.analysis.report import render_github, render_json, render_text
from repro.analysis.rules import all_rules
from repro.analysis.runner import analyze


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the repro rule-based static analyzer.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--select", action="append", default=[], metavar="RULE",
        help="run only these rule ids (repeat or comma-separate)",
    )
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="RULE",
        help="skip these rule ids (repeat or comma-separate)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="output format (default: text); 'github' emits Actions "
             "::error/::warning annotations",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run rules on N forked workers (default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental dataflow cache",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="incremental cache location "
             "(default: ./.repro-analysis-cache)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="JSON allowlist; matching findings don't fail the run",
    )
    parser.add_argument(
        "--no-context", action="store_true",
        help="don't index the installed repro package as context "
             "(faster, but cross-module rules see less)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also print suppressed and baselined findings (text format)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _split_ids(values: list[str]) -> tuple[str, ...]:
    out: list[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return tuple(out)


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  [{rule.severity}]  {rule.title}")
            print(f"        {rule.rationale}")
        return 0

    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    try:
        result = analyze(
            args.paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
            baseline=baseline,
            include_context=not args.no_context,
            jobs=max(args.jobs, 1),
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(result))
    elif args.format == "github":
        print(render_github(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
