"""Content-hash-keyed incremental store for the dataflow layer.

CFG + summary analysis costs real time where the syntactic rules cost
almost none, so everything derived is cached on disk under
``.repro-analysis-cache/`` (git-ignored) keyed purely by content
hashes:

* ``locals-<domain>`` — one entry per module, keyed by the module
  *source hash*: the module's local summary equations (concrete marks
  + symbolic callee references).  Valid as long as the module's bytes
  are unchanged — callee references are recorded by stable
  ``module:qualname`` key, so editing a callee never stales a caller's
  equations.
* ``findings-<rule>`` — one entry per (rule, file), keyed by the file
  source hash *plus* the resolved summary-table hash: editing any file
  re-runs that file's rules, and everyone else's entries survive
  unless the resolved summaries actually changed.

Entries are JSON, written atomically (temp file + ``os.replace``) so
parallel ``--jobs`` workers can race on the same key harmlessly.  The
cache is an accelerator only: every read validates shape and any
IO/parse problem falls back to recomputation, and a cold run and a
warm run produce byte-identical reports.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

__all__ = ["AnalysisCache", "CACHE_DIR_NAME", "content_hash"]

#: Directory created under the analysis root.
CACHE_DIR_NAME = ".repro-analysis-cache"

#: Bumped whenever any cached payload's meaning changes; part of every
#: key, so stale layouts miss instead of deserializing garbage.
CACHE_VERSION = 1


def content_hash(data: bytes | str) -> str:
    """Stable hex digest of ``data`` (the cache's only key primitive)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


class AnalysisCache:
    """Best-effort JSON store; ``directory=None`` disables it."""

    def __init__(self, directory: str | Path | None):
        self.directory = Path(directory) if directory is not None else None

    @property
    def enabled(self) -> bool:
        return self.directory is not None

    def _path(self, section: str, key: str) -> Path:
        return self.directory / section / f"{key}-v{CACHE_VERSION}.json"

    def get(self, section: str, key: str):
        """The stored payload, or None on miss/corruption."""
        if self.directory is None:
            return None
        try:
            return json.loads(
                self._path(section, key).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return None

    def put(self, section: str, key: str, payload) -> None:
        """Store ``payload`` atomically; failures are silently dropped
        (a cache that cannot write is just a cache that never hits)."""
        if self.directory is None:
            return
        path = self._path(section, key)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - defensive
                pass
