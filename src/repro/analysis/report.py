"""Text, JSON, and GitHub-annotation reporters over an
:class:`AnalysisResult`.

The JSON report is a pure function of the findings — deliberately no
timings — so a cold run and a warm cached run of the same tree are
byte-identical (CI asserts this; wall-clock numbers live in the text
reporter and the CLI only).
"""

from __future__ import annotations

import json

from repro.analysis.core import AnalysisResult, Finding, sort_findings
from repro.analysis.rules import all_rules

#: Bumped when the JSON layout changes incompatibly; CI consumers pin
#: it.  v2: dropped the non-deterministic "seconds" field (cold/warm
#: byte-identity).
JSON_SCHEMA_VERSION = 2


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    lines: list[str] = []
    for finding in sort_findings(result.findings):
        lines.append(
            f"{finding.location()}: {finding.rule} [{finding.severity}] "
            f"{finding.message}"
        )
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    if verbose:
        for finding in sort_findings(result.baselined):
            lines.append(
                f"{finding.location()}: {finding.rule} baselined: "
                f"{finding.message}"
            )
        for finding in sort_findings(result.suppressed):
            lines.append(
                f"{finding.location()}: {finding.rule} suppressed inline"
            )
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry (matched nothing): "
            f"{entry['rule']} {entry['path']} — consider deleting it"
        )
    counts = result.counts()
    summary = (
        ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
        if counts
        else "clean"
    )
    lines.append(
        f"{len(result.findings)} finding(s) "
        f"({summary}) in {result.files_analyzed} file(s), "
        f"{len(result.rules_run)} rule(s), {result.seconds:.2f}s"
        + (
            f"; {len(result.suppressed)} suppressed, "
            f"{len(result.baselined)} baselined"
            if result.suppressed or result.baselined
            else ""
        )
    )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    rules = {
        rule.id: {
            "severity": rule.severity,
            "title": rule.title,
            "rationale": rule.rationale,
        }
        for rule in all_rules()
        if rule.id in result.rules_run
    }
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "rules": rules,
        "findings": [f.to_dict() for f in sort_findings(result.findings)],
        "suppressed": [f.to_dict() for f in sort_findings(result.suppressed)],
        "baselined": [f.to_dict() for f in sort_findings(result.baselined)],
        "stale_baseline": result.stale_baseline,
        "counts": dict(sorted(result.counts().items())),
        "files_analyzed": result.files_analyzed,
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2)


def _annotation_property(value: str) -> str:
    """GitHub workflow-command property escaping."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
        .replace(":", "%3A")
        .replace(",", "%2C")
    )


def _annotation_message(value: str) -> str:
    """GitHub workflow-command message escaping."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _annotation(finding: Finding) -> str:
    level = "error" if finding.severity == "error" else "warning"
    message = finding.message
    if finding.hint:
        message = f"{message} — hint: {finding.hint}"
    return (
        f"::{level} "
        f"file={_annotation_property(finding.path)},"
        f"line={finding.line},"
        f"title={_annotation_property(finding.rule)}"
        f"::{_annotation_message(message)}"
    )


def render_github(result: AnalysisResult) -> str:
    """GitHub Actions ``::error``/``::warning`` annotations — one per
    finding, so violations render inline on the PR diff.  A trailing
    plain summary line keeps the raw log readable."""
    lines = [_annotation(f) for f in sort_findings(result.findings)]
    lines.append(
        f"{len(result.findings)} finding(s) in "
        f"{result.files_analyzed} file(s), "
        f"{len(result.rules_run)} rule(s)"
    )
    return "\n".join(lines)
