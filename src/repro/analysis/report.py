"""Human-text and JSON reporters over an :class:`AnalysisResult`."""

from __future__ import annotations

import json

from repro.analysis.core import AnalysisResult, sort_findings
from repro.analysis.rules import all_rules

#: Bumped when the JSON layout changes incompatibly; CI consumers pin it.
JSON_SCHEMA_VERSION = 1


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    lines: list[str] = []
    for finding in sort_findings(result.findings):
        lines.append(
            f"{finding.location()}: {finding.rule} [{finding.severity}] "
            f"{finding.message}"
        )
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    if verbose:
        for finding in sort_findings(result.baselined):
            lines.append(
                f"{finding.location()}: {finding.rule} baselined: "
                f"{finding.message}"
            )
        for finding in sort_findings(result.suppressed):
            lines.append(
                f"{finding.location()}: {finding.rule} suppressed inline"
            )
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry (matched nothing): "
            f"{entry['rule']} {entry['path']} — consider deleting it"
        )
    counts = result.counts()
    summary = (
        ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
        if counts
        else "clean"
    )
    lines.append(
        f"{len(result.findings)} finding(s) "
        f"({summary}) in {result.files_analyzed} file(s), "
        f"{len(result.rules_run)} rule(s), {result.seconds:.2f}s"
        + (
            f"; {len(result.suppressed)} suppressed, "
            f"{len(result.baselined)} baselined"
            if result.suppressed or result.baselined
            else ""
        )
    )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    rules = {
        rule.id: {
            "severity": rule.severity,
            "title": rule.title,
            "rationale": rule.rationale,
        }
        for rule in all_rules()
        if rule.id in result.rules_run
    }
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "rules": rules,
        "findings": [f.to_dict() for f in sort_findings(result.findings)],
        "suppressed": [f.to_dict() for f in sort_findings(result.suppressed)],
        "baselined": [f.to_dict() for f in sort_findings(result.baselined)],
        "stale_baseline": result.stale_baseline,
        "counts": result.counts(),
        "files_analyzed": result.files_analyzed,
        "seconds": result.seconds,
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2)
