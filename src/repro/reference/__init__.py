"""Exact dense-statevector oracle for validation (small qubit counts)."""

from repro.reference.statevector import StatevectorSimulator

__all__ = ["StatevectorSimulator"]
