"""Brute-force statevector simulation of noisy stabilizer circuits.

Exponential in qubit count — strictly a test oracle.  Noise channels are
sampled concretely per run (Monte Carlo over Pauli faults), so comparing
*distributions* of measurement records against the fast samplers
validates the whole pipeline end to end.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.instructions import Instruction
from repro.gates.database import get_gate
from repro.gates.unitaries import UNITARIES_1Q, UNITARIES_2Q
from repro.noise.channels import noise_groups
from repro.rng import as_generator

_MAX_QUBITS = 12

_PAULI = {
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

_BASIS_CONJUGATION = {"X": "H", "Y": "H_YZ"}


class StatevectorSimulator:
    """One-shot dense simulation; qubit 0 is the most significant bit."""

    def __init__(
        self, n_qubits: int, rng: int | np.random.Generator | None = None
    ):
        if n_qubits > _MAX_QUBITS:
            raise ValueError(
                f"statevector oracle is capped at {_MAX_QUBITS} qubits"
            )
        self.n = max(n_qubits, 1)
        self.rng = as_generator(rng)
        self.state = np.zeros(2**self.n, dtype=complex)
        self.state[0] = 1.0
        self.record: list[int] = []

    # -- gate application ---------------------------------------------------

    def _apply_1q(self, unitary: np.ndarray, qubit: int) -> None:
        psi = self.state.reshape([2] * self.n)
        psi = np.moveaxis(psi, qubit, 0)
        psi = np.tensordot(unitary, psi, axes=([1], [0]))
        self.state = np.moveaxis(psi, 0, qubit).reshape(-1)

    def _apply_2q(self, unitary: np.ndarray, a: int, b: int) -> None:
        psi = self.state.reshape([2] * self.n)
        psi = np.moveaxis(psi, (a, b), (0, 1))
        psi = np.tensordot(
            unitary.reshape(2, 2, 2, 2), psi, axes=([2, 3], [0, 1])
        )
        self.state = np.moveaxis(psi, (0, 1), (a, b)).reshape(-1)

    def apply_gate(self, name: str, targets: tuple[int, ...]) -> None:
        canonical = get_gate(name).name
        if canonical in UNITARIES_1Q:
            for qubit in targets:
                self._apply_1q(UNITARIES_1Q[canonical], qubit)
        elif canonical in UNITARIES_2Q:
            for a, b in zip(targets[0::2], targets[1::2]):
                self._apply_2q(UNITARIES_2Q[canonical], a, b)
        else:
            raise ValueError(f"{name} is not a unitary gate")

    # -- measurement / reset --------------------------------------------------

    def _measure_z(self, qubit: int) -> int:
        psi = np.moveaxis(self.state.reshape([2] * self.n), qubit, 0)
        p0 = float(np.linalg.norm(psi[0]) ** 2)
        outcome = 0 if self.rng.random() < p0 else 1
        keep = psi[outcome]
        norm = np.linalg.norm(keep)
        collapsed = np.zeros_like(psi)
        collapsed[outcome] = keep / norm
        self.state = np.moveaxis(collapsed, 0, qubit).reshape(-1)
        return outcome

    def _measure(self, qubit: int, basis: str) -> int:
        conj = _BASIS_CONJUGATION.get(basis)
        if conj:
            self.apply_gate(conj, (qubit,))
        outcome = self._measure_z(qubit)
        if conj:
            self.apply_gate(conj, (qubit,))
        return outcome

    def _flip_after_measure(self, qubit: int, basis: str) -> None:
        flip = {"Z": "X", "X": "Z", "Y": "X"}[basis]
        self.apply_gate(flip, (qubit,))

    # -- full runs ---------------------------------------------------------------

    def do_instruction(self, instruction: Instruction) -> None:
        from repro.circuit.instructions import RecTarget

        gate = instruction.gate
        if gate.is_unitary:
            if any(isinstance(t, RecTarget) for t in instruction.targets):
                letter = {"CX": "X", "CY": "Y", "CZ": "Z"}[gate.name]
                targets = instruction.targets
                for control, qubit in zip(targets[0::2], targets[1::2]):
                    if isinstance(control, RecTarget):
                        if self.record[len(self.record) + control.offset]:
                            self._apply_1q(_PAULI[letter], qubit)
                    else:
                        self.apply_gate(gate.name, (control, qubit))
            else:
                self.apply_gate(gate.name, instruction.targets)
        elif gate.kind == "measure":
            for qubit in instruction.targets:
                self.record.append(self._measure(qubit, gate.basis))
        elif gate.kind == "reset":
            for qubit in instruction.targets:
                if self._measure(qubit, gate.basis):
                    self._flip_after_measure(qubit, gate.basis)
        elif gate.kind == "measure_reset":
            for qubit in instruction.targets:
                outcome = self._measure(qubit, gate.basis)
                self.record.append(outcome)
                if outcome:
                    self._flip_after_measure(qubit, gate.basis)
        elif gate.kind == "noise":
            for group in noise_groups(instruction):
                pattern = int(group.sample_patterns(1, self.rng)[0])
                for j, action in enumerate(group.actions):
                    if (pattern >> j) & 1:
                        for letter, qubit in action:
                            self._apply_1q(_PAULI[letter], qubit)
        elif gate.kind == "annotation":
            pass
        else:
            raise ValueError(f"unhandled instruction kind {gate.kind!r}")

    def run(self, circuit: Circuit) -> np.ndarray:
        for instruction in circuit.flattened():
            self.do_instruction(instruction)
        return np.array(self.record, dtype=np.uint8)


def sample_records(
    circuit: Circuit, shots: int, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Monte-Carlo sample measurement records with the dense oracle."""
    rng = as_generator(rng)
    n = max(circuit.n_qubits, 1)
    out = np.zeros((shots, circuit.num_measurements), dtype=np.uint8)
    for shot in range(shots):
        sim = StatevectorSimulator(n, rng)
        out[shot] = sim.run(circuit)
    return out
