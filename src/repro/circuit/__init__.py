"""Circuit intermediate representation and Stim-dialect text format.

A :class:`Circuit` is a flat list of :class:`Instruction` and
:class:`RepeatBlock` entries.  The text format is a compatible subset of
Stim's: one instruction per line, optional parenthesized arguments,
qubit / ``rec[-k]`` / Pauli targets, ``REPEAT n { ... }`` blocks, and
``#`` comments.
"""

from repro.circuit.circuit import Circuit
from repro.circuit.instructions import (
    Instruction,
    PauliTarget,
    RecTarget,
    RepeatBlock,
    Target,
)
from repro.circuit.parser import parse_circuit
from repro.circuit.transforms import (
    depth,
    inverse_circuit,
    moments,
    remap_qubits,
    resolve_record_annotations,
    without_noise,
)

__all__ = [
    "Circuit",
    "Instruction",
    "PauliTarget",
    "RecTarget",
    "RepeatBlock",
    "Target",
    "depth",
    "inverse_circuit",
    "moments",
    "parse_circuit",
    "remap_qubits",
    "resolve_record_annotations",
    "without_noise",
]
