"""The Circuit container and its builder interface."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.circuit.instructions import (
    Instruction,
    PauliTarget,
    RecTarget,
    RepeatBlock,
    Target,
)
from repro.gates.database import get_gate


class Circuit:
    """An ordered list of instructions with REPEAT blocks.

    Builder usage::

        c = Circuit()
        c.append("H", [0])
        c.append("CX", [0, 1])
        c.append("DEPOLARIZE1", [0, 1], 0.001)
        c.append("M", [0, 1])

    or the shorthand methods (``c.h(0)``, ``c.cx(0, 1)``, ``c.m(0, 1)``).
    """

    def __init__(self, entries: Iterable[Instruction | RepeatBlock] | None = None):
        self.entries: list[Instruction | RepeatBlock] = list(entries or [])

    # -- construction ----------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "Circuit":
        """Parse the Stim-dialect text format."""
        from repro.circuit.parser import parse_circuit

        return parse_circuit(text)

    def append(
        self,
        name: str,
        targets: Sequence[Target] = (),
        args: float | Sequence[float] = (),
    ) -> "Circuit":
        """Append one instruction; returns self for chaining."""
        canonical = get_gate(name).name
        if isinstance(args, (int, float)):
            args = (float(args),)
        instruction = Instruction(canonical, tuple(targets), tuple(float(a) for a in args))
        instruction.validate()
        self.entries.append(instruction)
        return self

    def append_repeat(self, count: int, body: "Circuit") -> "Circuit":
        """Append a ``REPEAT count { body }`` block."""
        self.entries.append(RepeatBlock(count, body))
        return self

    def __iadd__(self, other: "Circuit") -> "Circuit":
        self.entries.extend(other.entries)
        return self

    def __add__(self, other: "Circuit") -> "Circuit":
        return Circuit(self.entries + other.entries)

    def __mul__(self, count: int) -> "Circuit":
        """``circuit * k`` wraps the circuit in a REPEAT block."""
        if count < 1:
            raise ValueError("repetition count must be at least 1")
        if count == 1:
            return self.copy()
        return Circuit([RepeatBlock(count, self.copy())])

    def copy(self) -> "Circuit":
        out = Circuit()
        for entry in self.entries:
            if isinstance(entry, RepeatBlock):
                out.entries.append(RepeatBlock(entry.count, entry.body.copy()))
            else:
                out.entries.append(entry)
        return out

    # -- shorthand builders ----------------------------------------------

    def h(self, *qubits: int) -> "Circuit":
        return self.append("H", qubits)

    def s(self, *qubits: int) -> "Circuit":
        return self.append("S", qubits)

    def x(self, *qubits: int) -> "Circuit":
        return self.append("X", qubits)

    def y(self, *qubits: int) -> "Circuit":
        return self.append("Y", qubits)

    def z(self, *qubits: int) -> "Circuit":
        return self.append("Z", qubits)

    def cx(self, *qubits: int) -> "Circuit":
        return self.append("CX", qubits)

    def cz(self, *qubits: int) -> "Circuit":
        return self.append("CZ", qubits)

    def swap(self, *qubits: int) -> "Circuit":
        return self.append("SWAP", qubits)

    def m(self, *qubits: int) -> "Circuit":
        return self.append("M", qubits)

    def r(self, *qubits: int) -> "Circuit":
        return self.append("R", qubits)

    def mr(self, *qubits: int) -> "Circuit":
        return self.append("MR", qubits)

    def x_error(self, p: float, *qubits: int) -> "Circuit":
        return self.append("X_ERROR", qubits, p)

    def z_error(self, p: float, *qubits: int) -> "Circuit":
        return self.append("Z_ERROR", qubits, p)

    def depolarize1(self, p: float, *qubits: int) -> "Circuit":
        return self.append("DEPOLARIZE1", qubits, p)

    def depolarize2(self, p: float, *qubits: int) -> "Circuit":
        return self.append("DEPOLARIZE2", qubits, p)

    def detector(self, *lookbacks: int) -> "Circuit":
        return self.append("DETECTOR", [RecTarget(k) for k in lookbacks])

    def observable_include(self, index: int, *lookbacks: int) -> "Circuit":
        return self.append(
            "OBSERVABLE_INCLUDE", [RecTarget(k) for k in lookbacks], float(index)
        )

    def tick(self) -> "Circuit":
        return self.append("TICK")

    # -- traversal and statistics ------------------------------------------

    def flattened(self) -> Iterator[Instruction]:
        """Yield instructions in execution order with REPEATs expanded."""
        for entry in self.entries:
            if isinstance(entry, RepeatBlock):
                for _ in range(entry.count):
                    yield from entry.body.flattened()
            else:
                yield entry

    @property
    def n_qubits(self) -> int:
        """1 + highest qubit index mentioned anywhere (0 when empty)."""
        highest = -1
        for entry in self.entries:
            if isinstance(entry, RepeatBlock):
                highest = max(highest, entry.body.n_qubits - 1)
                continue
            for t in entry.targets:
                if isinstance(t, int):
                    highest = max(highest, t)
                elif isinstance(t, PauliTarget):
                    highest = max(highest, t.qubit)
        return highest + 1

    @property
    def num_measurements(self) -> int:
        """Total measurement-record bits produced by one execution."""
        total = 0
        for entry in self.entries:
            if isinstance(entry, RepeatBlock):
                total += entry.count * entry.body.num_measurements
            elif entry.gate.produces_record:
                total += len(entry.targets)
        return total

    @property
    def num_detectors(self) -> int:
        total = 0
        for entry in self.entries:
            if isinstance(entry, RepeatBlock):
                total += entry.count * entry.body.num_detectors
            elif entry.name == "DETECTOR":
                total += 1
        return total

    @property
    def num_observables(self) -> int:
        highest = -1
        for entry in self.entries:
            if isinstance(entry, RepeatBlock):
                highest = max(highest, entry.body.num_observables - 1)
            elif entry.name == "OBSERVABLE_INCLUDE":
                highest = max(highest, int(entry.args[0]))
        return highest + 1

    def count_operations(self) -> dict[str, int]:
        """Instruction applications by kind (gates count per target pair)."""
        counts = {"gates": 0, "measurements": 0, "noise_sites": 0, "resets": 0}
        for instruction in self.flattened():
            gate = instruction.gate
            arity = max(gate.targets_per_op, 1)
            n_ops = len(instruction.targets) // arity if arity else 1
            if gate.is_unitary:
                counts["gates"] += n_ops
            elif gate.kind in ("measure", "measure_reset"):
                counts["measurements"] += len(instruction.targets)
                if gate.kind == "measure_reset":
                    counts["resets"] += len(instruction.targets)
            elif gate.kind == "reset":
                counts["resets"] += len(instruction.targets)
            elif gate.kind == "noise":
                counts["noise_sites"] += n_ops
        return counts

    # -- compilation --------------------------------------------------------

    def compile(
        self,
        *,
        sampler: str = "symbolic",
        decoder: str = "compiled-matching",
    ) -> "CompiledCircuit":
        """Bind this circuit to a sampler backend and a decoder, once.

        Returns a :class:`~repro.study.CompiledCircuit`: one handle
        whose backend sampler, detector error model and compiled decoder
        are built lazily on first use and memoized through the engine's
        fingerprint-keyed cache.  ``sampler`` is any registered
        :mod:`repro.backends` name, ``decoder`` any registered
        :mod:`repro.decoders` name (or ``"none"``)::

            compiled = circuit.compile(sampler="frame")
            detectors, observables = compiled.detect(100_000, seed_or_rng=0)
            rate = compiled.logical_error_rate(100_000, seed=0)

        Do not mutate the circuit after compiling it (identity is
        fingerprint-cached).
        """
        from repro.study import CompiledCircuit

        return CompiledCircuit(self, sampler=sampler, decoder=decoder)

    # -- identity -----------------------------------------------------------

    _COSMETIC = frozenset({"TICK", "QUBIT_COORDS", "SHIFT_COORDS"})

    def canonical_text(self) -> str:
        """Canonical serialization: the flattened execution stream.

        REPEAT blocks are expanded and purely cosmetic annotations (TICK,
        QUBIT_COORDS, SHIFT_COORDS — none of which carry simulation
        semantics) are dropped, so two circuits with the same canonical
        text are consumed identically by every simulator in this package.
        Instruction grouping is preserved: ``H 0 1`` and ``H 0`` + ``H 1``
        serialize differently (they interleave RNG streams differently).
        """
        return "\n".join(
            str(instruction)
            for instruction in self.flattened()
            if instruction.name not in self._COSMETIC
        )

    def fingerprint(self) -> str:
        """Stable content hash of :meth:`canonical_text` (sha256 hex).

        Circuits that flatten to the same execution stream — e.g. a
        ``REPEAT 3 {...}`` block versus its unrolled form, or a parsed
        round-trip of a builder-constructed circuit — share a
        fingerprint; any differing gate, target, argument or ordering
        changes it.  The engine keys its sampler cache and result store
        on this value.
        """
        import hashlib

        return hashlib.sha256(self.canonical_text().encode()).hexdigest()

    # -- formatting ---------------------------------------------------------

    def to_text(self, indent: str = "") -> str:
        """Serialize back to the text format (round-trips with the parser)."""
        lines: list[str] = []
        for entry in self.entries:
            if isinstance(entry, RepeatBlock):
                lines.append(f"{indent}REPEAT {entry.count} {{")
                lines.append(entry.body.to_text(indent + "    "))
                lines.append(f"{indent}}}")
            else:
                lines.append(f"{indent}{entry}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:
        stats = self.count_operations()
        return (
            f"Circuit(n_qubits={self.n_qubits}, gates={stats['gates']}, "
            f"measurements={stats['measurements']}, "
            f"noise_sites={stats['noise_sites']})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return self.to_text() == other.to_text()

    def __len__(self) -> int:
        return len(self.entries)
