"""Parser for the Stim-dialect circuit text format.

Grammar (per line)::

    instruction ::= NAME [ "(" arg ("," arg)* ")" ] target*
    target      ::= INT | "rec[" NEG_INT "]" | PAULI INT
    block       ::= "REPEAT" INT "{" ... "}"

Comments start with ``#``.  Blank lines are ignored.  ``}`` closes the
innermost REPEAT block and must appear on its own line.
"""

from __future__ import annotations

import re

from repro.circuit.circuit import Circuit
from repro.circuit.instructions import (
    Instruction,
    PauliTarget,
    RecTarget,
    RepeatBlock,
    Target,
)
from repro.gates.database import get_gate

_REC_RE = re.compile(r"^rec\[(-\d+)\]$")
_PAULI_RE = re.compile(r"^([XYZ])(\d+)$")
_REPEAT_RE = re.compile(r"^REPEAT\s+(\d+)\s*\{$", re.IGNORECASE)
_NAME_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*(?:\(([^)]*)\))?\s*(.*)$")


class CircuitParseError(ValueError):
    """Raised with a line number when circuit text is malformed."""

    def __init__(self, line_number: int, message: str):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _parse_target(token: str, line_number: int) -> Target:
    if token.isdigit():
        return int(token)
    match = _REC_RE.match(token)
    if match:
        return RecTarget(int(match.group(1)))
    match = _PAULI_RE.match(token)
    if match:
        return PauliTarget(match.group(1), int(match.group(2)))
    raise CircuitParseError(line_number, f"unrecognized target {token!r}")


def parse_circuit(text: str) -> Circuit:
    """Parse circuit text into a :class:`Circuit`."""
    root = Circuit()
    # (circuit, repeat_count) — repeat_count applies when the block closes.
    stack: list[tuple[Circuit, int]] = []
    current = root

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue

        if line == "}":
            if not stack:
                raise CircuitParseError(line_number, "unmatched '}'")
            parent, count = stack.pop()
            parent.entries.append(RepeatBlock(count, current))
            current = parent
            continue

        repeat_match = _REPEAT_RE.match(line)
        if repeat_match:
            stack.append((current, int(repeat_match.group(1))))
            current = Circuit()
            continue

        name_match = _NAME_RE.match(line)
        if not name_match:
            raise CircuitParseError(line_number, f"cannot parse {line!r}")
        name, args_text, targets_text = name_match.groups()

        try:
            gate = get_gate(name)
        except KeyError as exc:
            raise CircuitParseError(line_number, str(exc)) from exc

        args: tuple[float, ...] = ()
        if args_text is not None and args_text.strip():
            try:
                args = tuple(
                    float(a) for a in args_text.replace(",", " ").split()
                )
            except ValueError as exc:
                raise CircuitParseError(
                    line_number, f"bad arguments {args_text!r}"
                ) from exc

        targets = tuple(
            _parse_target(token, line_number)
            for token in targets_text.split()
        )

        instruction = Instruction(gate.name, targets, args)
        try:
            instruction.validate()
        except ValueError as exc:
            raise CircuitParseError(line_number, str(exc)) from exc
        current.entries.append(instruction)

    if stack:
        raise CircuitParseError(len(text.splitlines()), "unclosed REPEAT block")
    return root
