"""Instruction and target types for the circuit IR."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.gates.database import GateData, get_gate


@dataclass(frozen=True)
class RecTarget:
    """A measurement-record lookback target, ``rec[-k]`` (offset < 0)."""

    offset: int

    def __post_init__(self) -> None:
        if self.offset >= 0:
            raise ValueError("record lookback offsets must be negative")

    def __str__(self) -> str:
        return f"rec[{self.offset}]"


@dataclass(frozen=True)
class PauliTarget:
    """A Pauli-on-qubit target such as ``X3`` (used by CORRELATED_ERROR)."""

    pauli: str
    qubit: int

    def __post_init__(self) -> None:
        if self.pauli not in ("X", "Y", "Z"):
            raise ValueError(f"invalid Pauli target letter {self.pauli!r}")
        if self.qubit < 0:
            raise ValueError("qubit indices must be non-negative")

    def __str__(self) -> str:
        return f"{self.pauli}{self.qubit}"


Target = Union[int, RecTarget, PauliTarget]


@dataclass(frozen=True)
class Instruction:
    """One instruction: canonical gate name, targets, float arguments."""

    name: str
    targets: tuple[Target, ...] = ()
    args: tuple[float, ...] = ()

    @property
    def gate(self) -> GateData:
        return get_gate(self.name)

    def validate(self) -> None:
        """Raise ValueError if targets/args are malformed for this gate."""
        gate = self.gate
        if gate.n_args >= 0 and len(self.args) != gate.n_args:
            raise ValueError(
                f"{self.name} expects {gate.n_args} argument(s), "
                f"got {len(self.args)}"
            )
        if gate.kind == "noise":
            if not 0.0 <= sum(self.args) <= 1.0 + 1e-12:
                raise ValueError(
                    f"{self.name} probabilities must lie in [0, 1] "
                    f"and sum to at most 1, got {self.args}"
                )
        if gate.name == "CORRELATED_ERROR":
            if not all(isinstance(t, PauliTarget) for t in self.targets):
                raise ValueError("CORRELATED_ERROR takes Pauli targets only")
            return
        if gate.name in ("DETECTOR", "OBSERVABLE_INCLUDE"):
            if not all(isinstance(t, RecTarget) for t in self.targets):
                raise ValueError(f"{gate.name} takes rec[-k] targets only")
            return
        if gate.name in ("QUBIT_COORDS", "SHIFT_COORDS", "TICK"):
            return
        if gate.targets_per_op == 2 and len(self.targets) % 2 != 0:
            raise ValueError(
                f"{self.name} is a two-qubit operation and needs an even "
                f"number of targets, got {len(self.targets)}"
            )
        if gate.targets_per_op == 2:
            feedback_ok = gate.name in ("CX", "CY", "CZ")
            for a, b in zip(self.targets[0::2], self.targets[1::2]):
                if isinstance(a, RecTarget):
                    # Classically-controlled Pauli: control is a recorded
                    # measurement bit (the paper's §6 conditional P^e).
                    if not feedback_ok:
                        raise ValueError(
                            f"{self.name} does not support rec[] controls"
                        )
                    if not isinstance(b, int) or b < 0:
                        raise ValueError(
                            "feedback target must be a qubit index"
                        )
                    continue
                if not isinstance(a, int) or not isinstance(b, int):
                    raise ValueError(f"{self.name} takes qubit targets only")
                if a < 0 or b < 0:
                    raise ValueError("qubit indices must be non-negative")
                if a == b:
                    raise ValueError(
                        f"{self.name} applied to a repeated qubit {a}"
                    )
            return
        if not all(isinstance(t, int) and t >= 0 for t in self.targets):
            raise ValueError(f"{self.name} takes qubit targets only")

    def __str__(self) -> str:
        parts = [self.name]
        if self.args:
            formatted = ", ".join(_format_float(a) for a in self.args)
            parts[0] += f"({formatted})"
        parts.extend(str(t) for t in self.targets)
        return " ".join(parts)


@dataclass(frozen=True)
class RepeatBlock:
    """``REPEAT count { body }`` — body is a Circuit (import-cycle-free)."""

    count: int
    body: "object"  # repro.circuit.circuit.Circuit

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("REPEAT count must be at least 1")


def _format_float(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)
