"""Circuit transformations: inversion, noise stripping, remapping.

These are the utility passes a circuit library is expected to ship.
Gate inverses are *derived* from the conjugation tables (a gate's
inverse is the registered gate whose symplectic action and signs undo
it), so the inverse map can never drift from the unitaries.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.instructions import (
    Instruction,
    PauliTarget,
    RecTarget,
    RepeatBlock,
)
from repro.gates.database import GATES
from repro.gates.tables import conjugation_table


@lru_cache(maxsize=None)
def inverse_gate_name(name: str) -> str:
    """The registered gate undoing ``name`` (exact, including signs)."""
    table = conjugation_table(name)
    outputs, flips = table.outputs, table.flips
    for candidate, data in GATES.items():
        if not data.is_unitary:
            continue
        other = conjugation_table(candidate)
        if other.n_qubits != table.n_qubits:
            continue
        if _composes_to_identity(outputs, flips, other.outputs, other.flips):
            return candidate
    raise LookupError(f"no registered inverse for {name}")


def _composes_to_identity(out_a, flip_a, out_b, flip_b) -> bool:
    """Does applying table A then table B fix every basis Pauli with +sign?"""
    n_entries, width = out_a.shape
    for index in range(n_entries):
        bits = [(index >> (width - 1 - j)) & 1 for j in range(width)]
        mid = out_a[index]
        mid_index = 0
        for b in mid:
            mid_index = (mid_index << 1) | int(b)
        final = out_b[mid_index]
        if not np.array_equal(final, np.array(bits, dtype=np.uint8)):
            return False
        if (flip_a[index] ^ flip_b[mid_index]) != 0:
            return False
    return True


def inverse_circuit(circuit: Circuit) -> Circuit:
    """The inverse of a purely unitary circuit (gates reversed+inverted)."""
    out = Circuit()
    for entry in reversed(circuit.entries):
        if isinstance(entry, RepeatBlock):
            out.entries.append(
                RepeatBlock(entry.count, inverse_circuit(entry.body))
            )
            continue
        gate = entry.gate
        if gate.kind == "annotation":
            continue
        if not gate.is_unitary:
            raise ValueError(
                f"cannot invert non-unitary instruction {entry.name}"
            )
        if any(isinstance(t, RecTarget) for t in entry.targets):
            raise ValueError("cannot invert feedback instructions")
        inverse_name = inverse_gate_name(gate.name)
        if gate.targets_per_op == 2:
            # Reverse the pair order too (pairs act left to right).
            pairs = list(zip(entry.targets[0::2], entry.targets[1::2]))
            targets: list[int] = []
            for a, b in reversed(pairs):
                targets.extend((a, b))
            out.append(inverse_name, targets)
        else:
            out.append(inverse_name, tuple(reversed(entry.targets)))
    return out


def without_noise(circuit: Circuit) -> Circuit:
    """A copy with every noise instruction removed (records unchanged)."""
    out = Circuit()
    for entry in circuit.entries:
        if isinstance(entry, RepeatBlock):
            out.entries.append(RepeatBlock(entry.count, without_noise(entry.body)))
        elif entry.gate.kind != "noise":
            out.entries.append(entry)
    return out


def remap_qubits(circuit: Circuit, mapping: dict[int, int]) -> Circuit:
    """Relabel qubits; unmapped indices stay put."""
    def map_target(target):
        if isinstance(target, int):
            return mapping.get(target, target)
        if isinstance(target, PauliTarget):
            return PauliTarget(target.pauli, mapping.get(target.qubit, target.qubit))
        return target

    out = Circuit()
    for entry in circuit.entries:
        if isinstance(entry, RepeatBlock):
            out.entries.append(
                RepeatBlock(entry.count, remap_qubits(entry.body, mapping))
            )
        else:
            remapped = Instruction(
                entry.name,
                tuple(map_target(t) for t in entry.targets),
                entry.args,
            )
            remapped.validate()
            out.entries.append(remapped)
    return out


def resolve_record_annotations(
    instructions,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Resolve DETECTOR / OBSERVABLE_INCLUDE lookbacks to absolute indices.

    ``instructions`` is a flattened instruction stream (REPEATs already
    expanded).  Returns ``(detectors, observables)`` where each entry is
    an int64 array of absolute measurement-record indices; observables
    are ordered by their OBSERVABLE_INCLUDE index.  Every sampler
    backend shares this resolution so detector semantics can never
    drift between them.
    """
    measured = 0
    detectors: list[np.ndarray] = []
    observables: dict[int, list[int]] = {}
    for instruction in instructions:
        if instruction.gate.produces_record:
            measured += len(instruction.targets)
        elif instruction.name == "DETECTOR":
            indices = [
                measured + t.offset
                for t in instruction.targets
                if isinstance(t, RecTarget)
            ]
            detectors.append(np.array(indices, dtype=np.int64))
        elif instruction.name == "OBSERVABLE_INCLUDE":
            observables.setdefault(int(instruction.args[0]), []).extend(
                measured + t.offset
                for t in instruction.targets
                if isinstance(t, RecTarget)
            )
    observable_list = [
        np.array(observables[k], dtype=np.int64) for k in sorted(observables)
    ]
    return detectors, observable_list


def moments(circuit: Circuit) -> list[list[Instruction]]:
    """Greedy scheduling of instructions into parallel layers.

    Instructions land in the earliest layer where none of their qubits
    are busy.  Noise/annotation entries ride along with the previous
    layer's constraints (they share their targets' slots).  REPEAT blocks
    are expanded.
    """
    layers: list[list[Instruction]] = []
    busy_until: dict[int, int] = {}
    record_layer = 0  # feedback must come after the measurement layer
    for instruction in circuit.flattened():
        qubits = [
            t.qubit if isinstance(t, PauliTarget) else t
            for t in instruction.targets
            if isinstance(t, (int, PauliTarget))
        ]
        earliest = max((busy_until.get(q, 0) for q in qubits), default=0)
        if any(isinstance(t, RecTarget) for t in instruction.targets):
            earliest = max(earliest, record_layer)
        while len(layers) <= earliest:
            layers.append([])
        layers[earliest].append(instruction)
        for q in qubits:
            busy_until[q] = earliest + 1
        if instruction.gate.produces_record:
            record_layer = earliest + 1
    return layers


def depth(circuit: Circuit) -> int:
    """Number of parallel layers under greedy scheduling."""
    return len(moments(circuit))
