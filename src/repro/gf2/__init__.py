"""GF(2) linear algebra substrate.

Bit-packed (uint64) vectors and matrices over the two-element field,
plus the dense (uint8) elimination routines used for rank/solve.

This package is the computational foundation of the SymPhase
reproduction: symbolic phases are GF(2) bit-vectors, sampling is a GF(2)
matrix product, and the data-layout experiments (paper Fig. 2) operate on
packed bit-matrices.
"""

from repro.gf2.bitmat import BitMatrix
from repro.gf2.bitops import (
    WORD_BITS,
    bit_to_word,
    get_bit,
    get_column,
    pack_bits,
    pack_rows,
    parity_words,
    popcount,
    random_packed,
    set_bit,
    unpack_bits,
    unpack_rows,
    words_for,
    xor_bit,
    xor_select_rows,
)
from repro.gf2.linalg import (
    inverse,
    nullspace,
    rank,
    rref,
    solve,
)
from repro.gf2.matmul import (
    mul_dense,
    mul_packed_abt,
    mul_sparse_columns,
)
from repro.gf2.transpose import (
    transpose_bitmatrix,
    transpose_words_64,
)

__all__ = [
    "WORD_BITS",
    "BitMatrix",
    "bit_to_word",
    "get_bit",
    "get_column",
    "inverse",
    "mul_dense",
    "mul_packed_abt",
    "mul_sparse_columns",
    "nullspace",
    "pack_bits",
    "pack_rows",
    "parity_words",
    "popcount",
    "random_packed",
    "rank",
    "rref",
    "set_bit",
    "solve",
    "transpose_bitmatrix",
    "transpose_words_64",
    "unpack_bits",
    "unpack_rows",
    "words_for",
    "xor_bit",
    "xor_select_rows",
]
