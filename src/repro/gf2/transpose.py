"""Bit-level transposition of packed GF(2) matrices.

The 64x64 in-register transpose is the classic mask-and-shift network
(Hacker's Delight, fig. 7-3, widened to 64 bits), vectorized across an
arbitrary number of blocks with NumPy.  The full-matrix transpose tiles
the input into 64-row x 1-word blocks and transposes each block locally —
the same "local transposition" idea the paper's §4 data layout relies on.
"""

from __future__ import annotations

import numpy as np

from repro.gf2.bitops import WORD_BITS, words_for

_U64 = np.uint64


def transpose_words_64(blocks: np.ndarray) -> np.ndarray:
    """Transpose 64x64 bit blocks.

    ``blocks[..., k]`` is interpreted as row ``k`` of a 64x64 bit matrix
    (bit ``i`` of the word = column ``i``).  Returns an array of the same
    shape holding the transposed blocks.
    """
    a = np.ascontiguousarray(blocks, dtype=_U64).copy()
    if a.shape[-1] != WORD_BITS:
        raise ValueError("last axis must have exactly 64 words")
    # Mirrored Hacker's Delight network: our words are LSB-first (bit i =
    # column i), so the off-diagonal block swap shifts left, not right.
    j = 32
    m = _U64(0xFFFFFFFF00000000)
    idx = np.arange(WORD_BITS)
    while j:
        shift = _U64(j)
        lo = idx[(idx & j) == 0]
        hi = lo + j
        t = (a[..., lo] ^ (a[..., hi] << shift)) & m
        a[..., lo] ^= t
        a[..., hi] ^= t >> shift
        j >>= 1
        if j:
            m = m ^ (m >> _U64(j))
    return a


def transpose_bitmatrix(
    packed: np.ndarray, n_rows: int, n_cols: int
) -> np.ndarray:
    """Transpose a packed bit-matrix.

    ``packed`` has shape ``(n_rows, words_for(n_cols))``; the result has
    shape ``(n_cols, words_for(n_rows))``.
    """
    if packed.shape != (n_rows, words_for(n_cols)):
        raise ValueError(
            f"packed shape {packed.shape} does not match "
            f"({n_rows}, words_for({n_cols}))"
        )
    row_blocks = words_for(n_rows)
    col_words = words_for(n_cols)
    padded = np.zeros((row_blocks * WORD_BITS, col_words), dtype=_U64)
    padded[:n_rows] = packed
    # (row_block, word, 64 rows-within-block) -> local 64x64 transposes.
    blocks = padded.reshape(row_blocks, WORD_BITS, col_words).transpose(0, 2, 1)
    transposed = transpose_words_64(blocks)
    # Output bit (c, r): block row c // 64, local row c % 64, word r // 64.
    out = transposed.transpose(1, 2, 0).reshape(col_words * WORD_BITS, row_blocks)
    return np.ascontiguousarray(out[:n_cols])
