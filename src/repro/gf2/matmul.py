"""GF(2) matrix multiplication kernels.

Three kernels back the paper's sampling step (Eq. 4):

* :func:`mul_dense` — unpacked uint8 operands, NumPy integer matmul with a
  final ``& 1`` (sums wrap mod 256, which preserves parity).
* :func:`mul_packed_abt` — both operands bit-packed along the contraction
  axis; each output bit is the parity of a word-wise AND, evaluated with
  ``np.bitwise_count``.  Computes ``A @ B.T``.
* :func:`mul_sparse_columns` — the paper's "sparse implementation": each
  output row is the XOR of a small set of packed rows of ``B``; cost is
  proportional to the number of set bits in ``A`` (O(n_smp * n_m) for
  sparse circuits, per Table 1's footnote).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.gf2.bitops import parity_words

_U64 = np.uint64


def mul_dense(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """GF(2) product of unpacked 0/1 matrices: ``(a @ b) mod 2``."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape[-1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    return (a @ b) & 1


def mul_packed_abt(
    a_packed: np.ndarray,
    b_packed: np.ndarray,
    row_chunk: int = 256,
) -> np.ndarray:
    """Parity-of-AND product of packed matrices: unpacked ``A @ B.T``.

    Both operands are packed along their second axis with the same bit
    width.  The result is an unpacked uint8 matrix of shape
    ``(a_rows, b_rows)``.  Work is chunked over rows of ``a`` to bound the
    intermediate ``(chunk, b_rows, words)`` tensor.
    """
    a_packed = np.asarray(a_packed, dtype=_U64)
    b_packed = np.asarray(b_packed, dtype=_U64)
    if a_packed.shape[1] != b_packed.shape[1]:
        raise ValueError("operands are packed with different word counts")
    n_a = a_packed.shape[0]
    out = np.empty((n_a, b_packed.shape[0]), dtype=np.uint8)
    for start in range(0, n_a, row_chunk):
        stop = min(start + row_chunk, n_a)
        both = a_packed[start:stop, None, :] & b_packed[None, :, :]
        out[start:stop] = parity_words(both, axis=-1)
    return out


def mul_sparse_columns(
    supports: Sequence[np.ndarray],
    b_rows_packed: np.ndarray,
    constants: np.ndarray | None = None,
) -> np.ndarray:
    """Sparse GF(2) product: row ``i`` of the result is the XOR of the
    packed rows ``b_rows_packed[supports[i]]``.

    ``constants`` (one bit per output row, optional) complements the whole
    output row — it carries the constant-1 symbol ``s_0`` of the paper's
    bit-vector encoding, so callers never need a dense constant column.
    Returns a packed matrix of shape ``(len(supports), b_words)``.
    """
    b_rows_packed = np.asarray(b_rows_packed, dtype=_U64)
    n_words = b_rows_packed.shape[1]
    out = np.zeros((len(supports), n_words), dtype=_U64)
    for i, support in enumerate(supports):
        if len(support):
            out[i] = np.bitwise_xor.reduce(b_rows_packed[support], axis=0)
    if constants is not None:
        flip = np.asarray(constants, dtype=bool)
        out[flip] ^= _U64(0xFFFFFFFFFFFFFFFF)
    return out
