"""Primitive operations on bit-packed uint64 vectors.

Conventions
-----------
A *packed vector* of ``n`` bits is a ``numpy`` array of dtype ``uint64``
with ``words_for(n)`` entries.  Bit ``i`` lives in word ``i // 64`` at bit
position ``i % 64`` (little-endian bit order, matching
``np.packbits(..., bitorder="little")`` viewed as little-endian words).

A *packed matrix* is a 2-D ``uint64`` array whose rows are packed vectors;
row ``r``, column ``c`` is bit ``c`` of row ``r``.
"""

from __future__ import annotations

import numpy as np

WORD_BITS = 64

_U64 = np.uint64
_ONE = _U64(1)


def words_for(n_bits: int) -> int:
    """Number of 64-bit words needed to hold ``n_bits`` bits."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    return (n_bits + WORD_BITS - 1) // WORD_BITS


def bit_to_word(index: int) -> tuple[int, np.uint64]:
    """Map a bit index to ``(word_index, single-bit mask)``."""
    if index < 0:
        raise ValueError(f"bit index must be non-negative, got {index}")
    return index // WORD_BITS, _ONE << _U64(index % WORD_BITS)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a 1-D array of 0/1 values into a packed vector."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1:
        raise ValueError("pack_bits expects a 1-D array")
    n_words = words_for(bits.size)
    padded = np.zeros(n_words * WORD_BITS, dtype=np.uint8)
    padded[: bits.size] = bits & 1
    return np.packbits(padded, bitorder="little").view(_U64)


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack a packed vector back into a uint8 0/1 array of length ``n_bits``."""
    words = np.ascontiguousarray(words, dtype=_U64)
    raw = np.unpackbits(words.view(np.uint8), bitorder="little")
    return raw[:n_bits]


def pack_rows(bits: np.ndarray) -> np.ndarray:
    """Pack a 2-D array of 0/1 values row-wise into a packed matrix."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 2:
        raise ValueError("pack_rows expects a 2-D array")
    n_rows, n_cols = bits.shape
    n_words = words_for(n_cols)
    padded = np.zeros((n_rows, n_words * WORD_BITS), dtype=np.uint8)
    padded[:, :n_cols] = bits & 1
    return np.packbits(padded, axis=1, bitorder="little").view(_U64)


def unpack_rows(words: np.ndarray, n_cols: int) -> np.ndarray:
    """Unpack a packed matrix into a uint8 0/1 matrix with ``n_cols`` columns."""
    words = np.ascontiguousarray(words, dtype=_U64)
    if words.ndim != 2:
        raise ValueError("unpack_rows expects a 2-D packed matrix")
    raw = np.unpackbits(words.view(np.uint8), axis=1, bitorder="little")
    return raw[:, :n_cols]


def get_bit(words: np.ndarray, index: int) -> int:
    """Read bit ``index`` of a packed vector."""
    w, mask = bit_to_word(index)
    return int((words[w] & mask) != 0)


def set_bit(words: np.ndarray, index: int, value: int) -> None:
    """Write bit ``index`` of a packed vector in place."""
    w, mask = bit_to_word(index)
    if value:
        words[w] |= mask
    else:
        words[w] &= ~mask


def xor_bit(words: np.ndarray, index: int, value: int = 1) -> None:
    """XOR ``value`` into bit ``index`` of a packed vector in place."""
    if value:
        w, mask = bit_to_word(index)
        words[w] ^= mask


def get_column(matrix: np.ndarray, col: int) -> np.ndarray:
    """Extract column ``col`` of a packed matrix as a uint8 0/1 vector."""
    w, mask = bit_to_word(col)
    return ((matrix[:, w] & mask) != 0).astype(np.uint8)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-word population count."""
    return np.bitwise_count(words)


def popcount_rows(matrix: np.ndarray) -> np.ndarray:
    """Set-bit count of every row of a packed matrix (int64 vector).

    Correct only under the packing invariant that padding bits (bits at
    or beyond the logical column count) are zero — every producer in
    this package maintains it.
    """
    matrix = np.asarray(matrix, dtype=_U64)
    if matrix.ndim != 2:
        raise ValueError("popcount_rows expects a 2-D packed matrix")
    return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)


def nonzero_rows_packed(matrix: np.ndarray) -> np.ndarray:
    """Indices of the rows of a packed matrix with any bit set.

    The hot-path zero-row short-circuit: at QEC-relevant error rates a
    sizable fraction of syndromes is all-zero and can skip dedupe and
    decoding entirely.
    """
    matrix = np.asarray(matrix, dtype=_U64)
    if matrix.ndim != 2:
        raise ValueError("nonzero_rows_packed expects a 2-D packed matrix")
    return np.flatnonzero(matrix.any(axis=1))


def dedupe_rows_packed(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unique rows of a packed matrix plus the flat inverse gather.

    The packed counterpart of
    :func:`repro.decoders.matching.dedupe_rows`: each row is viewed as
    one contiguous void scalar (``n_words * 8`` bytes), so ``np.unique``
    sorts fixed-width byte strings instead of lexsorting unpacked
    columns — same unique *set*, far less data moved.  The unique rows
    are returned in void-sort order, which differs from the unpacked
    column-lexicographic order; callers must treat row order as
    arbitrary (per-row decoding does).
    """
    matrix = np.ascontiguousarray(matrix, dtype=_U64)
    if matrix.ndim != 2:
        raise ValueError("dedupe_rows_packed expects a 2-D packed matrix")
    n_rows, n_words = matrix.shape
    if n_words == 0:
        # Every zero-width row is identical: one unique row if any.
        unique = matrix[: min(n_rows, 1)]
        return unique, np.zeros(n_rows, dtype=np.int64)
    voided = matrix.view(np.dtype((np.void, n_words * 8)))[:, 0]
    unique, inverse = np.unique(voided, return_inverse=True)
    return (
        unique.view(_U64).reshape(-1, n_words),
        np.asarray(inverse).reshape(-1),
    )


def xor_rows_any(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-row "does ``a`` XOR ``b`` have any set bit" (bool vector).

    With ``a`` and ``b`` packed matrices of the same shape this answers
    "which rows differ" — the packed error count is
    ``np.count_nonzero(xor_rows_any(predictions, observables))`` with no
    uint8 matrices ever materialized.
    """
    a = np.asarray(a, dtype=_U64)
    b = np.asarray(b, dtype=_U64)
    if a.ndim != 2 or a.shape != b.shape:
        raise ValueError("xor_rows_any expects two equal-shape packed matrices")
    return (a != b).any(axis=1)


def nonzero_bits(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Set-bit coordinates of a packed matrix: ``(row_indices, bit_indices)``.

    The packed counterpart of ``np.nonzero`` on the unpacked matrix
    (same ordering: row-major, bits ascending within a row), touching
    only the nonzero *words*: each one expands through a little-endian
    byte view, so cost scales with the number of set words, not with
    the unpacked width.
    """
    matrix = np.asarray(matrix, dtype=_U64)
    if matrix.ndim != 2:
        raise ValueError("nonzero_bits expects a 2-D packed matrix")
    rows, words = np.nonzero(matrix)
    if rows.size == 0:
        return rows, words
    values = np.ascontiguousarray(matrix[rows, words])
    bits = np.unpackbits(
        values[:, None].view(np.uint8), axis=1, bitorder="little"
    )
    word_row, bit_position = np.nonzero(bits)
    return rows[word_row], words[word_row] * WORD_BITS + bit_position


def parity_words(words: np.ndarray, axis: int | None = None) -> np.ndarray:
    """Overall GF(2) parity of the set bits (optionally along ``axis``)."""
    counts = np.bitwise_count(np.asarray(words, dtype=_U64))
    total = counts.sum(axis=axis, dtype=np.int64)
    return (total & 1).astype(np.uint8)


def xor_select_rows(matrix: np.ndarray, index_lists) -> np.ndarray:
    """XOR-combine selected rows of a packed matrix.

    ``out[i]`` is the GF(2) sum (XOR) of ``matrix[j]`` for ``j`` in
    ``index_lists[i]``; an empty list yields a zero row.  This is the
    packed-domain parity behind derived rows — detectors and observables
    are XORs of measurement rows — shared by the frame and symbolic
    samplers.  One gather plus one segmented reduce; no per-row Python
    loop over the (typically thousands of) derived rows.
    """
    matrix = np.ascontiguousarray(matrix, dtype=_U64)
    if matrix.ndim != 2:
        raise ValueError("xor_select_rows expects a 2-D packed matrix")
    out = np.zeros((len(index_lists), matrix.shape[1]), dtype=_U64)
    lengths = np.array([len(ix) for ix in index_lists], dtype=np.int64)
    nonempty = np.nonzero(lengths)[0]
    if nonempty.size == 0:
        return out
    flat = np.concatenate(
        [np.asarray(index_lists[i], dtype=np.int64) for i in nonempty]
    )
    offsets = np.zeros(nonempty.size, dtype=np.int64)
    np.cumsum(lengths[nonempty][:-1], out=offsets[1:])
    out[nonempty] = np.bitwise_xor.reduceat(matrix[flat], offsets, axis=0)
    return out


def random_packed(
    shape: tuple[int, int],
    n_bits: int,
    rng: np.random.Generator,
    p: float = 0.5,
) -> np.ndarray:
    """Random packed matrix: ``shape[0]`` rows of ``n_bits`` Bernoulli(p) bits.

    ``shape[1]`` must equal ``words_for(n_bits)``; bits beyond ``n_bits``
    are zero so that parity/popcount never see garbage padding.
    """
    n_rows, n_words = shape
    if n_words != words_for(n_bits):
        raise ValueError("word count does not match n_bits")
    if p == 0.5:
        out = rng.integers(0, 2**64, size=(n_rows, n_words), dtype=np.uint64)
    else:
        bits = (rng.random((n_rows, n_words * WORD_BITS)) < p).astype(np.uint8)
        return pack_rows(bits[:, :n_bits]) if n_bits else bits[:, :0].view(_U64)
    tail = n_bits % WORD_BITS
    if tail and n_words:
        out[:, -1] &= (_ONE << _U64(tail)) - _ONE
    return out
