"""Primitive operations on bit-packed uint64 vectors.

Conventions
-----------
A *packed vector* of ``n`` bits is a ``numpy`` array of dtype ``uint64``
with ``words_for(n)`` entries.  Bit ``i`` lives in word ``i // 64`` at bit
position ``i % 64`` (little-endian bit order, matching
``np.packbits(..., bitorder="little")`` viewed as little-endian words).

A *packed matrix* is a 2-D ``uint64`` array whose rows are packed vectors;
row ``r``, column ``c`` is bit ``c`` of row ``r``.
"""

from __future__ import annotations

import numpy as np

WORD_BITS = 64

_U64 = np.uint64
_ONE = _U64(1)


def words_for(n_bits: int) -> int:
    """Number of 64-bit words needed to hold ``n_bits`` bits."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    return (n_bits + WORD_BITS - 1) // WORD_BITS


def bit_to_word(index: int) -> tuple[int, np.uint64]:
    """Map a bit index to ``(word_index, single-bit mask)``."""
    if index < 0:
        raise ValueError(f"bit index must be non-negative, got {index}")
    return index // WORD_BITS, _ONE << _U64(index % WORD_BITS)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a 1-D array of 0/1 values into a packed vector."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1:
        raise ValueError("pack_bits expects a 1-D array")
    n_words = words_for(bits.size)
    padded = np.zeros(n_words * WORD_BITS, dtype=np.uint8)
    padded[: bits.size] = bits & 1
    return np.packbits(padded, bitorder="little").view(_U64)


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack a packed vector back into a uint8 0/1 array of length ``n_bits``."""
    words = np.ascontiguousarray(words, dtype=_U64)
    raw = np.unpackbits(words.view(np.uint8), bitorder="little")
    return raw[:n_bits]


def pack_rows(bits: np.ndarray) -> np.ndarray:
    """Pack a 2-D array of 0/1 values row-wise into a packed matrix."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 2:
        raise ValueError("pack_rows expects a 2-D array")
    n_rows, n_cols = bits.shape
    n_words = words_for(n_cols)
    padded = np.zeros((n_rows, n_words * WORD_BITS), dtype=np.uint8)
    padded[:, :n_cols] = bits & 1
    return np.packbits(padded, axis=1, bitorder="little").view(_U64)


def unpack_rows(words: np.ndarray, n_cols: int) -> np.ndarray:
    """Unpack a packed matrix into a uint8 0/1 matrix with ``n_cols`` columns."""
    words = np.ascontiguousarray(words, dtype=_U64)
    if words.ndim != 2:
        raise ValueError("unpack_rows expects a 2-D packed matrix")
    raw = np.unpackbits(words.view(np.uint8), axis=1, bitorder="little")
    return raw[:, :n_cols]


def get_bit(words: np.ndarray, index: int) -> int:
    """Read bit ``index`` of a packed vector."""
    w, mask = bit_to_word(index)
    return int((words[w] & mask) != 0)


def set_bit(words: np.ndarray, index: int, value: int) -> None:
    """Write bit ``index`` of a packed vector in place."""
    w, mask = bit_to_word(index)
    if value:
        words[w] |= mask
    else:
        words[w] &= ~mask


def xor_bit(words: np.ndarray, index: int, value: int = 1) -> None:
    """XOR ``value`` into bit ``index`` of a packed vector in place."""
    if value:
        w, mask = bit_to_word(index)
        words[w] ^= mask


def get_column(matrix: np.ndarray, col: int) -> np.ndarray:
    """Extract column ``col`` of a packed matrix as a uint8 0/1 vector."""
    w, mask = bit_to_word(col)
    return ((matrix[:, w] & mask) != 0).astype(np.uint8)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-word population count."""
    return np.bitwise_count(words)


def parity_words(words: np.ndarray, axis: int | None = None) -> np.ndarray:
    """Overall GF(2) parity of the set bits (optionally along ``axis``)."""
    counts = np.bitwise_count(np.asarray(words, dtype=_U64))
    total = counts.sum(axis=axis, dtype=np.int64)
    return (total & 1).astype(np.uint8)


def xor_select_rows(matrix: np.ndarray, index_lists) -> np.ndarray:
    """XOR-combine selected rows of a packed matrix.

    ``out[i]`` is the GF(2) sum (XOR) of ``matrix[j]`` for ``j`` in
    ``index_lists[i]``; an empty list yields a zero row.  This is the
    packed-domain parity behind derived rows — detectors and observables
    are XORs of measurement rows — shared by the frame and symbolic
    samplers.  One gather plus one segmented reduce; no per-row Python
    loop over the (typically thousands of) derived rows.
    """
    matrix = np.ascontiguousarray(matrix, dtype=_U64)
    if matrix.ndim != 2:
        raise ValueError("xor_select_rows expects a 2-D packed matrix")
    out = np.zeros((len(index_lists), matrix.shape[1]), dtype=_U64)
    lengths = np.array([len(ix) for ix in index_lists], dtype=np.int64)
    nonempty = np.nonzero(lengths)[0]
    if nonempty.size == 0:
        return out
    flat = np.concatenate(
        [np.asarray(index_lists[i], dtype=np.int64) for i in nonempty]
    )
    offsets = np.zeros(nonempty.size, dtype=np.int64)
    np.cumsum(lengths[nonempty][:-1], out=offsets[1:])
    out[nonempty] = np.bitwise_xor.reduceat(matrix[flat], offsets, axis=0)
    return out


def random_packed(
    shape: tuple[int, int],
    n_bits: int,
    rng: np.random.Generator,
    p: float = 0.5,
) -> np.ndarray:
    """Random packed matrix: ``shape[0]`` rows of ``n_bits`` Bernoulli(p) bits.

    ``shape[1]`` must equal ``words_for(n_bits)``; bits beyond ``n_bits``
    are zero so that parity/popcount never see garbage padding.
    """
    n_rows, n_words = shape
    if n_words != words_for(n_bits):
        raise ValueError("word count does not match n_bits")
    if p == 0.5:
        out = rng.integers(0, 2**64, size=(n_rows, n_words), dtype=np.uint64)
    else:
        bits = (rng.random((n_rows, n_words * WORD_BITS)) < p).astype(np.uint8)
        return pack_rows(bits[:, :n_bits]) if n_bits else bits[:, :0].view(_U64)
    tail = n_bits % WORD_BITS
    if tail and n_words:
        out[:, -1] &= (_ONE << _U64(tail)) - _ONE
    return out
