"""Dense GF(2) elimination: RREF, rank, solve, nullspace, inverse.

These run on small unpacked uint8 matrices (symbol-table sized, not
tableau sized) and favour clarity over raw speed.  They back the fault
analysis example and several test oracles.
"""

from __future__ import annotations

import numpy as np


def rref(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Reduced row echelon form over GF(2).

    Returns ``(rref_matrix, pivot_columns)``; the input is not modified.
    """
    m = (np.asarray(matrix, dtype=np.uint8) & 1).copy()
    if m.ndim != 2:
        raise ValueError("rref expects a 2-D matrix")
    n_rows, n_cols = m.shape
    pivots: list[int] = []
    row = 0
    for col in range(n_cols):
        if row >= n_rows:
            break
        candidates = np.nonzero(m[row:, col])[0]
        if candidates.size == 0:
            continue
        pivot = row + int(candidates[0])
        if pivot != row:
            m[[row, pivot]] = m[[pivot, row]]
        others = np.nonzero(m[:, col])[0]
        others = others[others != row]
        m[others] ^= m[row]
        pivots.append(col)
        row += 1
    return m, pivots


def rank(matrix: np.ndarray) -> int:
    """Rank of a GF(2) matrix."""
    _, pivots = rref(matrix)
    return len(pivots)


def solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray | None:
    """One solution ``x`` of ``matrix @ x = rhs`` over GF(2), or ``None``.

    Free variables are set to zero.
    """
    a = np.asarray(matrix, dtype=np.uint8) & 1
    b = np.asarray(rhs, dtype=np.uint8) & 1
    if b.ndim != 1 or b.size != a.shape[0]:
        raise ValueError("rhs length must equal the number of rows")
    augmented = np.concatenate([a, b[:, None]], axis=1)
    reduced, pivots = rref(augmented)
    n_cols = a.shape[1]
    if n_cols in pivots:
        return None  # A pivot in the RHS column means the system is inconsistent.
    x = np.zeros(n_cols, dtype=np.uint8)
    for row, col in enumerate(pivots):
        x[col] = reduced[row, n_cols]
    return x


def nullspace(matrix: np.ndarray) -> np.ndarray:
    """Basis of the right nullspace, one vector per row (possibly empty)."""
    a = np.asarray(matrix, dtype=np.uint8) & 1
    reduced, pivots = rref(a)
    n_cols = a.shape[1]
    free = [c for c in range(n_cols) if c not in pivots]
    basis = np.zeros((len(free), n_cols), dtype=np.uint8)
    for i, fc in enumerate(free):
        basis[i, fc] = 1
        for row, pc in enumerate(pivots):
            basis[i, pc] = reduced[row, fc]
    return basis


def inverse(matrix: np.ndarray) -> np.ndarray:
    """Inverse of a square invertible GF(2) matrix.

    Raises ``np.linalg.LinAlgError`` if the matrix is singular.
    """
    a = np.asarray(matrix, dtype=np.uint8) & 1
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError("inverse expects a square matrix")
    augmented = np.concatenate([a, np.eye(n, dtype=np.uint8)], axis=1)
    reduced, pivots = rref(augmented)
    if pivots != list(range(n)):
        raise np.linalg.LinAlgError("matrix is singular over GF(2)")
    return reduced[:, n:]
