"""A bit-packed GF(2) matrix with row- and column-level operations.

``BitMatrix`` is the storage object shared by the data-layout experiments
(paper §4) and by tests.  Rows are contiguous uint64 words, which makes
*row* operations (measurement-style) fast; *column* operations
(gate-style) go through masked word updates.  The layout subpackage
builds the tiled variants on top of the same primitives.
"""

from __future__ import annotations

import numpy as np

from repro.gf2 import bitops
from repro.gf2.transpose import transpose_bitmatrix

_U64 = np.uint64


class BitMatrix:
    """Dense GF(2) matrix stored as packed uint64 words, row-major."""

    def __init__(self, n_rows: int, n_cols: int, words: np.ndarray | None = None):
        if n_rows < 0 or n_cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        self.n_rows = n_rows
        self.n_cols = n_cols
        n_words = bitops.words_for(n_cols)
        if words is None:
            self.words = np.zeros((n_rows, n_words), dtype=_U64)
        else:
            if words.shape != (n_rows, n_words):
                raise ValueError(
                    f"words shape {words.shape} != ({n_rows}, {n_words})"
                )
            self.words = np.ascontiguousarray(words, dtype=_U64)

    # -- construction -------------------------------------------------

    @classmethod
    def from_dense(cls, bits: np.ndarray) -> "BitMatrix":
        """Build from an unpacked 0/1 matrix."""
        bits = np.asarray(bits, dtype=np.uint8)
        out = cls(bits.shape[0], bits.shape[1], bitops.pack_rows(bits))
        return out

    @classmethod
    def identity(cls, n: int) -> "BitMatrix":
        """The n x n identity matrix."""
        out = cls(n, n)
        for i in range(n):
            out[i, i] = 1
        return out

    @classmethod
    def random(
        cls, n_rows: int, n_cols: int, rng: np.random.Generator
    ) -> "BitMatrix":
        """Uniformly random bits."""
        words = bitops.random_packed(
            (n_rows, bitops.words_for(n_cols)), n_cols, rng
        )
        return cls(n_rows, n_cols, words)

    def to_dense(self) -> np.ndarray:
        """Unpack into a uint8 0/1 matrix."""
        if self.n_rows == 0:
            return np.zeros((0, self.n_cols), dtype=np.uint8)
        return bitops.unpack_rows(self.words, self.n_cols)

    def copy(self) -> "BitMatrix":
        return BitMatrix(self.n_rows, self.n_cols, self.words.copy())

    # -- element access ------------------------------------------------

    def __getitem__(self, key: tuple[int, int]) -> int:
        row, col = key
        return bitops.get_bit(self.words[row], col)

    def __setitem__(self, key: tuple[int, int], value: int) -> None:
        row, col = key
        bitops.set_bit(self.words[row], col, value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitMatrix):
            return NotImplemented
        return (
            self.n_rows == other.n_rows
            and self.n_cols == other.n_cols
            and bool(np.array_equal(self.words, other.words))
        )

    def __repr__(self) -> str:
        return f"BitMatrix({self.n_rows}x{self.n_cols})"

    # -- row operations (measurement-style) -----------------------------

    def xor_row_into(self, src: int, dst: int) -> None:
        """Row ``dst`` ^= row ``src``."""
        self.words[dst] ^= self.words[src]

    def swap_rows(self, a: int, b: int) -> None:
        self.words[[a, b]] = self.words[[b, a]]

    def row(self, index: int) -> np.ndarray:
        """Packed view of one row (shared memory)."""
        return self.words[index]

    # -- column operations (gate-style) ---------------------------------

    def get_column(self, col: int) -> np.ndarray:
        """Column ``col`` as an unpacked uint8 vector."""
        return bitops.get_column(self.words, col)

    def xor_column_into(self, src: int, dst: int) -> None:
        """Column ``dst`` ^= column ``src`` (a CNOT-style update)."""
        ws, ms = bitops.bit_to_word(src)
        wd, md = bitops.bit_to_word(dst)
        src_bits = (self.words[:, ws] & ms) != 0
        self.words[src_bits, wd] ^= md

    def swap_columns(self, a: int, b: int) -> None:
        """Swap two bit-columns (an H-style / SWAP-style update)."""
        wa, ma = bitops.bit_to_word(a)
        wb, mb = bitops.bit_to_word(b)
        bits_a = (self.words[:, wa] & ma) != 0
        bits_b = (self.words[:, wb] & mb) != 0
        diff = bits_a != bits_b
        self.words[diff, wa] ^= ma
        self.words[diff, wb] ^= mb

    # -- whole-matrix operations ----------------------------------------

    def transpose(self) -> "BitMatrix":
        """Bit-level transpose (uses the 64x64 block kernel)."""
        words = transpose_bitmatrix(self.words, self.n_rows, self.n_cols)
        return BitMatrix(self.n_cols, self.n_rows, words)
