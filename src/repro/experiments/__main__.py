"""CLI entry point: ``python -m repro.experiments <experiment> [options]``."""

from __future__ import annotations

import argparse

from repro.experiments import harness


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "fig3a", "fig3b", "fig3c", "table1", "fig2", "sparse",
            "threshold", "all",
        ],
    )
    parser.add_argument(
        "--sizes", type=str, default=None,
        help="comma-separated qubit counts for fig3 sweeps",
    )
    parser.add_argument("--shots", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="engine worker processes for the threshold experiment",
    )
    parser.add_argument(
        "--decoder", default="compiled-matching",
        help="registry decoder for the threshold experiment "
             "(see `python -m repro decoders`)",
    )
    args = parser.parse_args(argv)

    sizes = None
    if args.sizes:
        sizes = [int(s) for s in args.sizes.split(",")]

    if args.experiment in ("fig3a", "fig3b", "fig3c"):
        harness.run_fig3(args.experiment, sizes, args.shots, args.seed)
    elif args.experiment == "table1":
        harness.run_table1(seed=args.seed)
    elif args.experiment == "fig2":
        harness.run_fig2(seed=args.seed)
    elif args.experiment == "sparse":
        harness.run_sparse(shots=args.shots, seed=args.seed)
    elif args.experiment == "threshold":
        harness.run_threshold(
            shots=args.shots, seed=args.seed, workers=args.workers,
            decoder=args.decoder,
        )
    elif args.experiment == "all":
        for variant in ("fig3a", "fig3b", "fig3c"):
            harness.run_fig3(variant, sizes, args.shots, args.seed)
        harness.run_table1(seed=args.seed)
        harness.run_fig2(seed=args.seed)
        harness.run_sparse(shots=args.shots, seed=args.seed)
        harness.run_threshold(
            shots=args.shots, seed=args.seed, workers=args.workers,
            decoder=args.decoder,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
