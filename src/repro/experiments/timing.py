"""Small timing utilities for the experiment harness."""

from __future__ import annotations

import time
from collections.abc import Callable


def time_call(fn: Callable[[], object], repeats: int = 1) -> tuple[float, object]:
    """Best-of-``repeats`` wall time in seconds, plus the last result."""
    best = float("inf")
    result: object = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Fixed-width ASCII table."""
    columns = [headers] + [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(row[i])) for row in columns) for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in columns[1:]:
        lines.append("  ".join(str(v).rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
