"""Regeneration of every table and figure of the paper's evaluation.

The paper compares SymPhase.jl against Stim on (a) the time to
*initialize a sampler* and (b) the time to *generate 10,000 samples*.
Here the symbolic sampler (:mod:`repro.core`) plays SymPhase and the
Pauli-frame simulator (:mod:`repro.frame`) plays Stim — see DESIGN.md §2
for why that substitution preserves the comparison's shape.
"""

from __future__ import annotations

import numpy as np

from repro.backends import compile_backend
from repro.circuit.circuit import Circuit
from repro.experiments.timing import format_table, time_call
from repro.layout import make_layout
from repro.qec import surface_code_memory
from repro.rng import as_generator
from repro.workloads.layered import (
    fig3a_circuit,
    fig3b_circuit,
    fig3c_circuit,
)


def _cached_sampler(circuit: Circuit, backend: str = "symbolic"):
    """Backend sampler via ``Circuit.compile()``'s fingerprint-keyed cache.

    Used wherever the harness needs a sampler but is *not* timing its
    construction — repeated invocations (sweeps, ``all``) then pay each
    backend's one-time compile once per distinct circuit.
    """
    return circuit.compile(sampler=backend).sampler

_FIG3_BUILDERS = {
    "fig3a": fig3a_circuit,
    "fig3b": fig3b_circuit,
    "fig3c": fig3c_circuit,
}


def measure_circuit(
    circuit: Circuit, shots: int, seed: int = 0,
    frame_backend: str = "frame",
) -> dict[str, float]:
    """Init + sampling wall time for both samplers on one circuit.

    ``frame_backend`` picks the Stim-role baseline: ``"frame"`` (the
    compiled frame program — the strongest baseline) or
    ``"frame-interp"`` (the pre-compilation interpreter).
    """
    rng = as_generator(seed)

    init_sym, sampler = time_call(
        lambda: compile_backend(circuit, "symbolic")
    )
    sample_sym, _ = time_call(lambda: sampler.sample(shots, rng))
    # Eq. 4 evaluation alone, with the symbol draw (identical for every
    # algorithm — Table 1, footnote 2) hoisted out.
    symbol_values = sampler.draw_symbols(shots, rng)
    sample_sym_eval, _ = time_call(
        lambda: sampler.sample(shots, rng, symbol_values=symbol_values)
    )

    init_frame, frame = time_call(
        lambda: compile_backend(circuit, frame_backend)
    )
    sample_frame, _ = time_call(lambda: frame.sample(shots, rng))

    return {
        "init_symphase": init_sym,
        "init_frame": init_frame,
        "sample_symphase": sample_sym,
        "sample_symphase_eval": sample_sym_eval,
        "sample_frame": sample_frame,
    }


def run_fig3(
    variant: str,
    sizes: list[int] | None = None,
    shots: int = 10_000,
    seed: int = 0,
) -> list[dict[str, float]]:
    """Fig. 3a/3b/3c: init and 10k-sample time vs qubit/layer count ``n``.

    The paper sweeps n to 1000 on a C++-class implementation; the default
    sweep here is scaled to pure-Python speeds, but the series shape (who
    wins on sampling, who wins on init) is size-independent.
    """
    if variant not in _FIG3_BUILDERS:
        raise ValueError(f"variant must be one of {sorted(_FIG3_BUILDERS)}")
    sizes = sizes or [20, 40, 60, 80]
    builder = _FIG3_BUILDERS[variant]
    rows = []
    for n in sizes:
        circuit = builder(n, seed=seed)
        stats = circuit.count_operations()
        timings = measure_circuit(circuit, shots, seed)
        rows.append({"n": n, **stats, **timings})

    print(f"\n== {variant}: layered random circuits, {shots} samples ==")
    print(
        format_table(
            ["n", "gates", "meas", "noise", "init sym (s)", "init frame (s)",
             "sample sym (s)", "sym eval (s)", "sample frame (s)"],
            [
                [r["n"], r["gates"], r["measurements"], r["noise_sites"],
                 r["init_symphase"], r["init_frame"],
                 r["sample_symphase"], r["sample_symphase_eval"],
                 r["sample_frame"]]
                for r in rows
            ],
        )
    )
    return rows


def run_table1(
    n_qubits: int = 40,
    layer_sweep: list[int] | None = None,
    shot_sweep: list[int] | None = None,
    seed: int = 0,
) -> dict[str, list[dict[str, float]]]:
    """Table 1: how init and sampling cost scale with n_g and n_smp.

    The paper's claim: SymPhase sampling is independent of the gate count
    n_g while frame sampling grows linearly with it; both grow linearly
    in n_smp, with SymPhase's slope far smaller on sparse circuits.
    """
    from repro.workloads.layered import layered_random_circuit

    layer_sweep = layer_sweep or [10, 20, 40, 80]
    shot_sweep = shot_sweep or [1000, 2000, 4000, 8000]

    gate_rows = []
    for layers in layer_sweep:
        circuit = layered_random_circuit(
            n_qubits, n_layers=layers, cnot_pairs_per_layer=5, seed=seed
        )
        timings = measure_circuit(circuit, 2000, seed)
        gate_rows.append(
            {"layers": layers, "gates": circuit.count_operations()["gates"],
             **timings}
        )

    circuit = layered_random_circuit(
        n_qubits, n_layers=40, cnot_pairs_per_layer=5, seed=seed
    )
    sampler = _cached_sampler(circuit)
    frame = _cached_sampler(circuit, "frame")
    shot_rows = []
    rng = as_generator(seed)
    for shots in shot_sweep:
        t_sym, _ = time_call(lambda: sampler.sample(shots, rng))
        t_frame, _ = time_call(lambda: frame.sample(shots, rng))
        shot_rows.append(
            {"shots": shots, "sample_symphase": t_sym, "sample_frame": t_frame}
        )

    print("\n== Table 1 (a): sampling cost vs gate count (fixed 2000 shots) ==")
    print(format_table(
        ["layers", "gates", "sample sym (s)", "sample frame (s)"],
        [[r["layers"], r["gates"], r["sample_symphase"], r["sample_frame"]]
         for r in gate_rows],
    ))
    print("\n== Table 1 (b): sampling cost vs shot count (fixed circuit) ==")
    print(format_table(
        ["shots", "sample sym (s)", "sample frame (s)"],
        [[r["shots"], r["sample_symphase"], r["sample_frame"]]
         for r in shot_rows],
    ))
    return {"gate_sweep": gate_rows, "shot_sweep": shot_rows}


def run_fig2(
    n: int = 2048, n_ops: int = 512, seed: int = 0
) -> list[dict[str, float]]:
    """Fig. 2 / §4: row ops, column ops and mode switches per layout."""
    rng = as_generator(seed)
    rows = []
    for kind in ("chp", "stim8", "symphase512"):
        layout = make_layout(kind, n)
        layout.load_dense((rng.random((n, n)) < 0.5).astype(np.uint8))
        picks = rng.integers(0, n, size=(n_ops, 2))

        layout.set_mode("gate")
        t_cols, _ = time_call(
            lambda: [layout.column_xor(int(a), int(b))
                     for a, b in picks if a != b]
        )
        t_switch, _ = time_call(lambda: layout.set_mode("measure"))
        t_rows, _ = time_call(
            lambda: [layout.row_xor(int(a), int(b))
                     for a, b in picks if a != b]
        )
        rows.append({
            "layout": kind,
            "column_ops": t_cols,
            "mode_switch": t_switch,
            "row_ops": t_rows,
        })

    print(f"\n== Fig. 2 / §4: {n_ops} ops on a {n}x{n} bit-matrix ==")
    print(format_table(
        ["layout", "col ops (s)", "switch (s)", "row ops (s)"],
        [[r["layout"], r["column_ops"], r["mode_switch"], r["row_ops"]]
         for r in rows],
    ))
    return rows


def run_sparse(
    distance: int = 5, rounds: int = 5, shots: int = 20_000, seed: int = 0
) -> dict[str, float]:
    """§5's sparse-circuit claim: sparse vs dense sampling on a surface
    code, where the measurement matrix is column-sparse."""
    circuit = surface_code_memory(
        distance, rounds,
        after_clifford_depolarization=0.002,
        before_measure_flip_probability=0.002,
    )
    sampler = _cached_sampler(circuit)
    rng = as_generator(seed)
    t_sparse, _ = time_call(lambda: sampler.sample(shots, rng, strategy="sparse"))
    t_dense, _ = time_call(lambda: sampler.sample(shots, rng, strategy="dense"))
    result = {
        "avg_support": sampler.average_support(),
        "n_symbols": sampler.symbols.n_symbols,
        "sparse_s": t_sparse,
        "dense_s": t_dense,
        "auto": sampler.choose_strategy(),
    }
    print(f"\n== sparse sampling: surface code d={distance}, r={rounds}, "
          f"{shots} shots ==")
    print(format_table(
        ["n_symbols", "avg support", "sparse (s)", "dense (s)", "auto picks"],
        [[result["n_symbols"], result["avg_support"], t_sparse, t_dense,
          result["auto"]]],
    ))
    return result


def run_threshold(
    distances: list[int] | None = None,
    probabilities: list[float] | None = None,
    rounds: int = 3,
    shots: int = 4_000,
    seed: int = 0,
    workers: int = 1,
    store_path: str | None = None,
    decoder: str = "compiled-matching",
) -> list[dict]:
    """Repetition-code threshold sweep on the study API.

    The intro's workload, end to end: the (d, p) grid is a
    :class:`repro.study.Sweep`; the engine compiles each circuit once,
    splits the shot budget into derived-seed chunks (optionally across
    ``workers`` processes) and aggregates Wilson-interval logical error
    rates.  Counts are independent of ``workers``.

    ``decoder`` is any registered :mod:`repro.decoders` name; the
    default batched compiled matcher keeps decoding off the sweep's
    critical path (its predictions are bitwise identical to
    ``"matching"``, so the estimated rates are too).
    """
    from repro.study import ExecutionOptions, Sweep

    sweep = Sweep(
        codes="repetition",
        distances=distances or [3, 5, 7],
        probabilities=probabilities or [0.02, 0.05, 0.10, 0.20],
        rounds=rounds,
        decoders=decoder,
        max_shots=shots,
    )
    result = sweep.collect(
        ExecutionOptions(base_seed=seed, workers=workers, store=store_path)
    )
    rows = result.to_rows()

    print(f"\n== threshold: repetition code, {shots} shots/point, "
          f"decoder={result[0].decoder}, workers={workers} ==")
    print(format_table(
        ["d", "p", "shots", "errors", "LER", "wilson low", "wilson high"],
        [[r["metadata"]["distance"], r["metadata"]["p"], r["shots"],
          r["errors"], r["error_rate"], r["wilson_low"], r["wilson_high"]]
         for r in rows],
    ))
    estimate = result.threshold_estimate()
    if estimate is not None:
        print(f"threshold estimate (d={min(sweep.distances)} x "
              f"d={max(sweep.distances)} crossing): p ~ {estimate:.3f}")
    return rows
