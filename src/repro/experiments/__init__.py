"""Paper-figure regeneration harness.

Each public function reproduces one table or figure of the paper and
prints the same rows/series the paper reports (init time and per-batch
sampling time for the symbolic sampler vs the Pauli-frame baseline).
Run from the command line::

    python -m repro.experiments fig3a --sizes 20,40,80 --shots 2000
    python -m repro.experiments table1
    python -m repro.experiments fig2
    python -m repro.experiments sparse
"""

from repro.experiments.harness import (
    run_fig2,
    run_fig3,
    run_sparse,
    run_table1,
)

__all__ = ["run_fig2", "run_fig3", "run_sparse", "run_table1"]
