"""Clifford unitaries as conjugation maps (operator-level API).

A :class:`CliffordMap` stores the sign-exact images of the symplectic
basis — ``U X_i U†`` and ``U Z_i U†`` for every qubit — which determines
the Clifford up to global phase.  Supports composition, inversion, exact
conjugation of arbitrary Pauli strings, and construction from circuits.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.gf2.linalg import inverse as gf2_inverse
from repro.pauli.pauli_string import PauliString


class CliffordMap:
    """An n-qubit Clifford, represented by basis-Pauli images.

    ``images[i]`` is the image of ``X_i`` for ``i < n`` and of
    ``Z_{i-n}`` for ``i >= n``; every image is a Hermitian
    :class:`PauliString`.
    """

    def __init__(self, images: list[PauliString]):
        if not images or len(images) % 2 != 0:
            raise ValueError("need 2n basis images")
        n = len(images) // 2
        if any(p.n_qubits != n for p in images):
            raise ValueError("image qubit counts are inconsistent")
        if any(not p.is_hermitian for p in images):
            raise ValueError("basis images must be Hermitian")
        self.n = n
        self.images = images

    # -- constructors -------------------------------------------------------

    @classmethod
    def identity(cls, n_qubits: int) -> "CliffordMap":
        images = [
            PauliString.single(n_qubits, q, "X") for q in range(n_qubits)
        ] + [
            PauliString.single(n_qubits, q, "Z") for q in range(n_qubits)
        ]
        return cls(images)

    @classmethod
    def from_circuit(
        cls, circuit: Circuit, n_qubits: int | None = None
    ) -> "CliffordMap":
        """The map of a purely unitary circuit (no measurement/noise)."""
        n = n_qubits if n_qubits is not None else max(circuit.n_qubits, 1)
        out = cls.identity(n)
        for instruction in circuit.flattened():
            gate = instruction.gate
            if gate.kind == "annotation":
                continue
            if not gate.is_unitary:
                raise ValueError(
                    f"{gate.name} is not unitary; CliffordMap is for "
                    "unitary circuits only"
                )
            out = out.then_gate(gate.name, instruction.targets)
        return out

    @classmethod
    def random(
        cls, n_qubits: int, rng: np.random.Generator, depth: int | None = None
    ) -> "CliffordMap":
        """A random Clifford via a deep random circuit.

        Scrambles well for ``depth >> n`` (default ``20 n + 20``), though
        it is not exactly Haar-uniform over the Clifford group.
        """
        depth = depth if depth is not None else 20 * n_qubits + 20
        single = ("H", "S", "SQRT_X", "X", "Z", "C_XYZ")
        out = cls.identity(n_qubits)
        for _ in range(depth):
            if n_qubits >= 2 and rng.random() < 0.4:
                a, b = rng.choice(n_qubits, 2, replace=False)
                out = out.then_gate(
                    str(rng.choice(("CX", "CZ", "SWAP"))), (int(a), int(b))
                )
            else:
                out = out.then_gate(
                    str(rng.choice(single)), (int(rng.integers(n_qubits)),)
                )
        return out

    # -- composition ------------------------------------------------------

    def then_gate(self, name: str, targets: tuple[int, ...]) -> "CliffordMap":
        """The map followed by one more gate (returns a new map)."""
        from repro.gates.database import get_gate

        table = get_gate(name).table
        images = []
        for pauli in self.images:
            xs = pauli.xs.copy()
            zs = pauli.zs.copy()
            sign = pauli.sign_bit
            if table.n_qubits == 1:
                for qubit in targets:
                    x, z = int(xs[qubit]), int(zs[qubit])
                    out = table.outputs[(x << 1) | z]
                    sign ^= int(table.flips[(x << 1) | z])
                    xs[qubit], zs[qubit] = out[0], out[1]
            else:
                for a, b in zip(targets[0::2], targets[1::2]):
                    idx = (int(xs[a]) << 3) | (int(zs[a]) << 2) \
                        | (int(xs[b]) << 1) | int(zs[b])
                    out = table.outputs[idx]
                    sign ^= int(table.flips[idx])
                    xs[a], zs[a], xs[b], zs[b] = out
            y_count = int(np.count_nonzero(xs & zs))
            images.append(PauliString(xs, zs, 2 * sign + y_count))
        return CliffordMap(images)

    def then(self, other: "CliffordMap") -> "CliffordMap":
        """Sequential composition: first self, then other (V∘U)."""
        if other.n != self.n:
            raise ValueError("qubit counts differ")
        return CliffordMap([other.conjugate(p) for p in self.images])

    # -- action ----------------------------------------------------------------

    def conjugate(self, pauli: PauliString) -> PauliString:
        """Exact ``U P U†`` for an arbitrary (phased) Pauli string.

        Decomposes P as ``i^k ∏ X_q^{x_q} ∏ Z_q^{z_q}`` (applying X parts
        before Z parts, matching PauliString's internal convention) and
        multiplies the corresponding images.
        """
        if pauli.n_qubits != self.n:
            raise ValueError("qubit count mismatch")
        out = PauliString.identity(self.n)
        # X^x Z^z per qubit: X factors of *all* qubits commute with each
        # other, as do Z factors; the only ordering that matters is X
        # before Z per qubit, which ∏X ∏Z respects.
        for q in range(self.n):
            if pauli.xs[q]:
                out = out * self.images[q]
        for q in range(self.n):
            if pauli.zs[q]:
                out = out * self.images[self.n + q]
        return PauliString(out.xs, out.zs, out.phase_exponent + pauli.phase_exponent)

    # -- inversion ---------------------------------------------------------------

    def symplectic_matrix(self) -> np.ndarray:
        """(2n x 2n) GF(2) matrix: column j = (x|z) bits of image j."""
        n = self.n
        m = np.zeros((2 * n, 2 * n), dtype=np.uint8)
        for j, pauli in enumerate(self.images):
            m[:n, j] = pauli.xs
            m[n:, j] = pauli.zs
        return m

    def inverse(self) -> "CliffordMap":
        """The inverse map (bit structure by GF(2) inversion, signs fixed
        by requiring ``self.conjugate(inverse_image) == basis Pauli``)."""
        n = self.n
        inv = gf2_inverse(self.symplectic_matrix())
        images = []
        for j in range(2 * n):
            xs = inv[:n, j]
            zs = inv[n:, j]
            y_count = int(np.count_nonzero(xs & zs))
            candidate = PauliString(xs, zs, y_count)  # sign +1 guess
            basis = (
                PauliString.single(n, j, "X") if j < n
                else PauliString.single(n, j - n, "Z")
            )
            if self.conjugate(candidate).sign_bit != basis.sign_bit:
                candidate = PauliString(xs, zs, y_count + 2)
            images.append(candidate)
        return CliffordMap(images)

    # -- misc -----------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CliffordMap):
            return NotImplemented
        return self.n == other.n and all(
            a == b for a, b in zip(self.images, other.images)
        )

    def __repr__(self) -> str:
        return f"CliffordMap(n={self.n})"

    def __str__(self) -> str:
        lines = []
        for q in range(self.n):
            lines.append(f"X{q} -> {self.images[q]}")
        for q in range(self.n):
            lines.append(f"Z{q} -> {self.images[self.n + q]}")
        return "\n".join(lines)
