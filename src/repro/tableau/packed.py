"""Bit-packed, qubit-major tableau: 64 generators per word op.

This is the §4 storage story made executable: in *gate mode* the tableau
is kept qubit-major (``xs[q]`` holds qubit ``q``'s X bit for all ``2n``
generators, packed), so a gate is a handful of word-wide ANF operations
updating every generator at once.  Measurements need generator-major
rows, so a simulation alternates: bursts of gates on the packed form,
one bit-transpose ("local transposition" in the paper's layout), bursts
of measurements on the row-major :class:`Tableau`, transpose back.
:func:`simulate_hybrid` implements exactly that loop.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.gates.anf import gate_kernel
from repro.gates.database import get_gate
from repro.gf2 import bitops
from repro.gf2.transpose import transpose_bitmatrix
from repro.tableau.tableau import Tableau

_U64 = np.uint64


class PackedTableau:
    """Qubit-major packed destabilizer tableau (gate-optimized form)."""

    def __init__(self, n_qubits: int):
        if n_qubits < 1:
            raise ValueError("need at least one qubit")
        self.n = n_qubits
        n_rows = 2 * n_qubits
        n_words = bitops.words_for(n_rows)
        self.xs = np.zeros((n_qubits, n_words), dtype=_U64)
        self.zs = np.zeros((n_qubits, n_words), dtype=_U64)
        self.rs = np.zeros(n_words, dtype=_U64)
        for i in range(n_qubits):
            bitops.set_bit(self.xs[i], i, 1)              # destabilizer X_i
            bitops.set_bit(self.zs[i], n_qubits + i, 1)    # stabilizer Z_i
        tail = n_rows % bitops.WORD_BITS
        self._tail_mask = (
            (_U64(1) << _U64(tail)) - _U64(1) if tail else _U64(0xFFFFFFFFFFFFFFFF)
        )

    # -- gates (word-parallel) ---------------------------------------------

    def apply_gate(self, name: str, targets: tuple[int, ...]) -> None:
        """Apply a unitary gate; O(2n / 64) word ops per application."""
        gate = get_gate(name)
        kernel = gate_kernel(gate.name)
        if kernel.n_qubits == 1:
            for qubit in targets:
                new_x, new_z, flip = kernel.evaluate(
                    [self.xs[qubit], self.zs[qubit]]
                )
                self.xs[qubit] = new_x
                self.zs[qubit] = new_z
                self.rs ^= flip
        else:
            for a, b in zip(targets[0::2], targets[1::2]):
                outs = kernel.evaluate(
                    [self.xs[a], self.zs[a], self.xs[b], self.zs[b]]
                )
                self.xs[a], self.zs[a] = outs[0], outs[1]
                self.xs[b], self.zs[b] = outs[2], outs[3]
                self.rs ^= outs[4]
        # Constant ANF terms set padding bits; keep them clean.
        self.xs[:, -1] &= self._tail_mask
        self.zs[:, -1] &= self._tail_mask
        self.rs[-1] &= self._tail_mask

    # -- conversion (the layout "mode switch") ---------------------------------

    @classmethod
    def from_tableau(cls, tableau: Tableau) -> "PackedTableau":
        out = cls(tableau.n)
        n_rows = 2 * tableau.n
        out.xs = transpose_bitmatrix(
            bitops.pack_rows(tableau.xs), n_rows, tableau.n
        )
        out.zs = transpose_bitmatrix(
            bitops.pack_rows(tableau.zs), n_rows, tableau.n
        )
        out.rs = bitops.pack_bits(tableau.rs)
        return out

    def to_tableau(self) -> Tableau:
        out = Tableau(self.n)
        n_rows = 2 * self.n
        out.xs = bitops.unpack_rows(
            transpose_bitmatrix(self.xs, self.n, n_rows), self.n
        )
        out.zs = bitops.unpack_rows(
            transpose_bitmatrix(self.zs, self.n, n_rows), self.n
        )
        out.rs = bitops.unpack_bits(self.rs, n_rows)
        return out


def simulate_hybrid(
    circuit: Circuit,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Single-shot noiseless-measurement simulation with the §4 strategy:
    word-parallel gates on the packed form, row-major measurements, with
    bit transposes only at mode boundaries.  Returns the record.

    Noise instructions are sampled concretely (like TableauSimulator).
    """
    from repro.tableau.simulator import TableauSimulator

    rng = rng or np.random.default_rng()
    n = max(circuit.n_qubits, 1)
    packed = PackedTableau(n)
    record: list[int] = []
    helper = TableauSimulator(n, rng)  # reused for measure/reset/noise

    def to_measure_mode():
        helper.tableau = packed.to_tableau()
        helper.record = record

    def to_gate_mode():
        nonlocal packed
        packed = PackedTableau.from_tableau(helper.tableau)

    mode = "gate"
    for instruction in circuit.flattened():
        gate = instruction.gate
        is_gate = gate.is_unitary and not any(
            not isinstance(t, int) for t in instruction.targets
        )
        if is_gate:
            if mode != "gate":
                to_gate_mode()
                mode = "gate"
            packed.apply_gate(gate.name, instruction.targets)
        elif gate.kind == "annotation":
            continue
        else:
            if mode != "measure":
                to_measure_mode()
                mode = "measure"
            helper.do_instruction(instruction)
    if mode == "measure":
        record = helper.record
    return np.array(record, dtype=np.uint8)
