"""Single-shot circuit execution on the A-G tableau.

This is the classic Monte-Carlo way to sample a noisy stabilizer circuit
(one full circuit traversal per shot).  It doubles as:

* the correctness oracle for the fast samplers (shot-for-shot agreement
  when driven by the same fault patterns), and
* the producer of the *reference sample* the Pauli-frame simulator needs
  (noiseless execution with random outcomes pinned to 0).
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.instructions import Instruction, RecTarget
from repro.noise.channels import noise_groups, pattern_bits
from repro.rng import as_generator
from repro.tableau.tableau import Tableau

_BASIS_CONJUGATION = {"X": "H", "Y": "H_YZ"}  # maps the basis onto Z
_FEEDBACK_LETTER = {"CX": "X", "CY": "Y", "CZ": "Z"}


class TableauSimulator:
    """Stateful single-shot simulator over a Tableau."""

    def __init__(
        self, n_qubits: int, rng: int | np.random.Generator | None = None
    ):
        self.tableau = Tableau(n_qubits)
        self.rng = as_generator(rng)
        self.record: list[int] = []

    # -- instruction dispatch ---------------------------------------------

    def do_instruction(
        self,
        instruction: Instruction,
        force_random_outcomes: int | None = None,
        disable_noise: bool = False,
    ) -> None:
        gate = instruction.gate
        if gate.is_unitary:
            self._apply_unitary(instruction)
        elif gate.kind == "measure":
            for qubit in instruction.targets:
                self.record.append(
                    self._measure(qubit, gate.basis, force_random_outcomes)
                )
        elif gate.kind == "reset":
            for qubit in instruction.targets:
                self._reset(qubit, gate.basis, force_random_outcomes)
        elif gate.kind == "measure_reset":
            for qubit in instruction.targets:
                outcome = self._measure(qubit, gate.basis, force_random_outcomes)
                self.record.append(outcome)
                if outcome:
                    self._flip_after_measure(qubit, gate.basis)
        elif gate.kind == "noise":
            if not disable_noise:
                self._apply_noise(instruction)
        elif gate.kind == "annotation":
            pass
        else:
            raise ValueError(f"unhandled instruction kind {gate.kind!r}")

    def run(
        self,
        circuit: Circuit,
        force_random_outcomes: int | None = None,
        disable_noise: bool = False,
    ) -> np.ndarray:
        """Execute a circuit; returns the measurement record as uint8."""
        for instruction in circuit.flattened():
            self.do_instruction(instruction, force_random_outcomes, disable_noise)
        return np.array(self.record, dtype=np.uint8)

    def _apply_unitary(self, instruction: Instruction) -> None:
        gate = instruction.gate
        targets = instruction.targets
        if not any(isinstance(t, RecTarget) for t in targets):
            self.tableau.apply_gate(gate.name, targets)
            return
        # Classically-controlled Pauli: apply when the recorded bit is 1.
        letter = _FEEDBACK_LETTER[gate.name]
        for control, qubit in zip(targets[0::2], targets[1::2]):
            if isinstance(control, RecTarget):
                if self.record[len(self.record) + control.offset]:
                    self.tableau.apply_gate(letter, (qubit,))
            else:
                self.tableau.apply_gate(gate.name, (control, qubit))

    # -- measurement / reset -------------------------------------------------

    def _measure(
        self, qubit: int, basis: str, forced: int | None
    ) -> int:
        conj = _BASIS_CONJUGATION.get(basis)
        if conj:
            self.tableau.apply_gate(conj, (qubit,))
        outcome, _ = self.tableau.measure(qubit, self.rng, forced)
        if conj:
            self.tableau.apply_gate(conj, (qubit,))
        return outcome

    def _flip_after_measure(self, qubit: int, basis: str) -> None:
        """Return the post-measurement +1 eigenstate (used by MR/R)."""
        flip_gate = {"Z": "X", "X": "Z", "Y": "X"}[basis]
        self.tableau.apply_gate(flip_gate, (qubit,))

    def _reset(self, qubit: int, basis: str, forced: int | None) -> None:
        outcome = self._measure(qubit, basis, forced)
        if outcome:
            self._flip_after_measure(qubit, basis)

    # -- noise -------------------------------------------------------------------

    def _apply_noise(self, instruction: Instruction) -> None:
        for group in noise_groups(instruction):
            pattern = int(group.sample_patterns(1, self.rng)[0])
            self.apply_fault_pattern(group, pattern)

    def apply_fault_pattern(self, group, pattern: int) -> None:
        """Apply the concrete Paulis selected by a joint bit pattern."""
        for symbol_index in range(group.n_symbols):
            if pattern_bits(np.array([pattern]), symbol_index)[0]:
                for letter, qubit in group.actions[symbol_index]:
                    self.tableau.apply_gate(letter, (qubit,))


def reference_sample(circuit: Circuit) -> np.ndarray:
    """A valid noiseless sample with all random outcomes pinned to 0.

    This is the baseline record the Pauli-frame simulator XORs its frame
    flips into.
    """
    sim = TableauSimulator(max(circuit.n_qubits, 1))
    return sim.run(circuit, force_random_outcomes=0, disable_noise=True)
