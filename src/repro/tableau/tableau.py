"""The Aaronson–Gottesman destabilizer/stabilizer tableau.

Rows ``0 .. n-1`` are destabilizer generators, rows ``n .. 2n-1``
stabilizer generators.  X/Z bits are unpacked uint8 arrays (fast NumPy
column slicing for gates); phases are one bit per row.

The phase bookkeeping of row multiplication follows A-G exactly: the
accumulated i-exponent of the product of two Hermitian rows is always
even, so the new phase bit is ``(2 r_h + 2 r_i + sum g_j) mod 4 / 2``.
"""

from __future__ import annotations

import numpy as np

from repro.gates.database import get_gate
from repro.pauli.pauli_string import PauliString


def g_exponents(
    x1: np.ndarray, z1: np.ndarray, x2: np.ndarray, z2: np.ndarray
) -> np.ndarray:
    """A-G's g function, elementwise: the i-exponent contributed when the
    single-qubit Pauli (x1, z1) is multiplied by (x2, z2).  Values in
    {-1, 0, +1}."""
    x1 = x1.astype(np.int8)
    z1 = z1.astype(np.int8)
    x2 = x2.astype(np.int8)
    z2 = z2.astype(np.int8)
    case_y = (x1 & z1) * (z2 - x2)
    case_x = (x1 & (1 - z1)) * (z2 * (2 * x2 - 1))
    case_z = ((1 - x1) & z1) * (x2 * (1 - 2 * z2))
    return case_y + case_x + case_z


class Tableau:
    """A 2n-row destabilizer tableau over ``n`` qubits, initially |0...0>."""

    def __init__(self, n_qubits: int):
        if n_qubits < 1:
            raise ValueError("tableau needs at least one qubit")
        n = n_qubits
        self.n = n
        self.xs = np.zeros((2 * n, n), dtype=np.uint8)
        self.zs = np.zeros((2 * n, n), dtype=np.uint8)
        self.rs = np.zeros(2 * n, dtype=np.uint8)
        idx = np.arange(n)
        self.xs[idx, idx] = 1          # destabilizer i = X_i
        self.zs[n + idx, idx] = 1      # stabilizer  i = Z_i

    # -- gates -------------------------------------------------------------

    def apply_gate(self, name: str, targets: tuple[int, ...]) -> None:
        """Apply a named unitary gate to each (pair of) target(s)."""
        gate = get_gate(name)
        table = gate.table
        if gate.targets_per_op == 1:
            for qubit in targets:
                x, z = self.xs[:, qubit], self.zs[:, qubit]
                nx, nz, flip = table.apply_1q(x, z)
                self.xs[:, qubit] = nx
                self.zs[:, qubit] = nz
                self.rs ^= flip
        else:
            for a, b in zip(targets[0::2], targets[1::2]):
                x1, z1 = self.xs[:, a], self.zs[:, a]
                x2, z2 = self.xs[:, b], self.zs[:, b]
                nx1, nz1, nx2, nz2, flip = table.apply_2q(x1, z1, x2, z2)
                self.xs[:, a] = nx1
                self.zs[:, a] = nz1
                self.xs[:, b] = nx2
                self.zs[:, b] = nz2
                self.rs ^= flip

    def apply_pauli(self, pauli: PauliString) -> None:
        """Conjugate by a Pauli string: flips phases of anticommuting rows."""
        anti = ((self.xs @ pauli.zs) + (self.zs @ pauli.xs)) & 1
        self.rs ^= anti.astype(np.uint8)

    def apply_x(self, qubit: int) -> None:
        self.rs ^= self.zs[:, qubit]

    def apply_y(self, qubit: int) -> None:
        self.rs ^= self.xs[:, qubit] ^ self.zs[:, qubit]

    def apply_z(self, qubit: int) -> None:
        self.rs ^= self.xs[:, qubit]

    # -- row operations ------------------------------------------------------

    def rowsum_many(self, rows: np.ndarray, src: int) -> None:
        """Row h *= row src, for every h in ``rows`` (vectorized)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        g_sum = g_exponents(
            self.xs[rows], self.zs[rows], self.xs[src], self.zs[src]
        ).sum(axis=1, dtype=np.int64)
        total = (2 * self.rs[rows].astype(np.int64)
                 + 2 * int(self.rs[src]) + g_sum) % 4
        # Stabilizer rows always commute pairwise, so their products stay
        # Hermitian (even i-exponent).  The one destabilizer row paired with
        # the source stabilizer anticommutes; its phase is junk by
        # construction (as in chp.c) and is rounded without checking.
        if np.any((total & 1) & (rows >= self.n)):
            raise AssertionError("odd i-exponent on a stabilizer row — tableau corrupt")
        self.rs[rows] = (total >> 1).astype(np.uint8)
        self.xs[rows] ^= self.xs[src]
        self.zs[rows] ^= self.zs[src]

    def _accumulate_product(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
        """Product of stabilizer rows ``rows`` into a scratch Pauli;
        returns (x, z, phase_bit)."""
        x = np.zeros(self.n, dtype=np.uint8)
        z = np.zeros(self.n, dtype=np.uint8)
        phase = 0
        for row in rows:
            g_sum = int(g_exponents(x, z, self.xs[row], self.zs[row]).sum())
            total = (2 * phase + 2 * int(self.rs[row]) + g_sum) % 4
            if total & 1:
                raise AssertionError("odd i-exponent in scratch product")
            phase = total >> 1
            x ^= self.xs[row]
            z ^= self.zs[row]
        return x, z, phase

    # -- measurement ----------------------------------------------------------

    def measure(
        self,
        qubit: int,
        rng: np.random.Generator | None = None,
        forced_outcome=None,
    ) -> tuple[int, bool]:
        """Computational-basis measurement.  Returns (outcome, was_random).

        Random outcomes use ``forced_outcome`` when given (an int, or a
        zero-argument callable evaluated only when the outcome really is
        random), otherwise draw from ``rng``.
        """
        n = self.n
        stab_candidates = np.nonzero(self.xs[n:, qubit])[0]
        if stab_candidates.size:
            p = n + int(stab_candidates[0])
            others = np.nonzero(self.xs[:, qubit])[0]
            others = others[others != p]
            self.rowsum_many(others, p)
            # Destabilizer slot remembers the old stabilizer row.
            self.xs[p - n] = self.xs[p]
            self.zs[p - n] = self.zs[p]
            self.rs[p - n] = self.rs[p]
            self.xs[p] = 0
            self.zs[p] = 0
            self.zs[p, qubit] = 1
            if callable(forced_outcome):
                outcome = int(forced_outcome())
            elif forced_outcome is not None:
                outcome = int(forced_outcome)
            else:
                if rng is None:
                    raise ValueError("random measurement needs an rng")
                outcome = int(rng.integers(2))
            self.rs[p] = outcome
            return outcome, True

        # Determinate: product of stabilizer rows indexed by destabilizer X hits.
        hits = np.nonzero(self.xs[:n, qubit])[0] + n
        _, _, phase = self._accumulate_product(hits)
        return phase, False

    def peek_determined(self, qubit: int) -> int | None:
        """Outcome of a Z measurement if determinate, else None (no collapse)."""
        if np.any(self.xs[self.n:, qubit]):
            return None
        hits = np.nonzero(self.xs[: self.n, qubit])[0] + self.n
        _, _, phase = self._accumulate_product(hits)
        return phase

    # -- introspection -----------------------------------------------------------

    def stabilizers(self) -> list[PauliString]:
        """Current stabilizer generators as sign-exact Pauli strings."""
        return [self._row_pauli(self.n + i) for i in range(self.n)]

    def destabilizers(self) -> list[PauliString]:
        return [self._row_pauli(i) for i in range(self.n)]

    def _row_pauli(self, row: int) -> PauliString:
        y_count = int(np.count_nonzero(self.xs[row] & self.zs[row]))
        return PauliString(
            self.xs[row].copy(),
            self.zs[row].copy(),
            2 * int(self.rs[row]) + y_count,
        )

    def is_valid(self) -> bool:
        """Check the symplectic pairing of destabilizer/stabilizer rows."""
        sym = (self.xs @ self.zs.T + self.zs @ self.xs.T) & 1
        n = self.n
        expected = np.zeros((2 * n, 2 * n), dtype=np.uint8)
        idx = np.arange(n)
        expected[idx, n + idx] = 1
        expected[n + idx, idx] = 1
        return bool(np.array_equal(sym.astype(np.uint8), expected))

    def copy(self) -> "Tableau":
        out = Tableau.__new__(Tableau)
        out.n = self.n
        out.xs = self.xs.copy()
        out.zs = self.zs.copy()
        out.rs = self.rs.copy()
        return out
