"""Aaronson–Gottesman stabilizer tableau (concrete phases).

:class:`Tableau` implements the improved tableau algorithm of
Aaronson & Gottesman (2004): n destabilizer rows + n stabilizer rows,
O(n) Clifford gates and O(n^2) computational-basis measurements.
:class:`TableauSimulator` executes whole circuits on it, sampling noise
concretely (one shot per run) — the classic way to sample, and the
source of the *reference sample* for the Pauli-frame baseline.
"""

from repro.tableau.clifford_map import CliffordMap
from repro.tableau.packed import PackedTableau, simulate_hybrid
from repro.tableau.sampler import TableauSampler
from repro.tableau.simulator import TableauSimulator, reference_sample
from repro.tableau.tableau import Tableau

__all__ = [
    "CliffordMap",
    "PackedTableau",
    "Tableau",
    "TableauSampler",
    "TableauSimulator",
    "reference_sample",
    "simulate_hybrid",
]
