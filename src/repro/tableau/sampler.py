"""Per-shot Monte-Carlo sampling on the Aaronson–Gottesman tableau.

:class:`TableauSampler` adapts the single-shot
:class:`~repro.tableau.simulator.TableauSimulator` to the sampler
backend protocol (``sample`` / ``sample_detectors``).  Every shot is a
full circuit traversal, so throughput is orders of magnitude below the
batch samplers — this backend exists as an exact, assumption-free
oracle for cross-backend validation and tiny-circuit exploration, not
for production sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.transforms import resolve_record_annotations
from repro.rng import as_generator
from repro.tableau.simulator import TableauSimulator


class TableauSampler:
    """Sampler-protocol adapter over per-shot tableau simulation."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.n_qubits = max(circuit.n_qubits, 1)
        self.instructions = list(circuit.flattened())
        self.detectors, self.observables = resolve_record_annotations(
            self.instructions
        )
        self.n_measurements = circuit.num_measurements

    def sample(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Sample measurement records: uint8 array of shape (shots, n_m)."""
        if shots < 1:
            raise ValueError("shots must be positive")
        rng = as_generator(rng)
        records = np.zeros((shots, self.n_measurements), dtype=np.uint8)
        for shot in range(shots):
            simulator = TableauSimulator(self.n_qubits, rng)
            for instruction in self.instructions:
                simulator.do_instruction(instruction)
            records[shot] = simulator.record
        return records

    def sample_detectors(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Detector and observable samples derived from the records."""
        records = self.sample(shots, rng)
        return (
            self._derive(records, self.detectors),
            self._derive(records, self.observables),
        )

    def sample_detectors_packed(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Packed (detectors, observables) via the generic pack-adapter
        (per-shot simulation has no packed-native representation)."""
        from repro.backends.protocol import pack_detector_samples

        return pack_detector_samples(self, shots, rng)

    @staticmethod
    def _derive(records: np.ndarray, index_lists) -> np.ndarray:
        out = np.zeros((records.shape[0], len(index_lists)), dtype=np.uint8)
        for i, indices in enumerate(index_lists):
            if len(indices):
                out[:, i] = records[:, indices].sum(axis=1) & 1
        return out
