"""Zero-copy chunk transport over POSIX shared memory.

The pool's pickle wire is the scaling bottleneck PR 6's telemetry
attributed: every chunk re-ships the circuit's ~4KB text serialization
out and a telemetry-laden result back, ~129KB per small run.  This
module moves both payloads into ``multiprocessing.shared_memory``
segments so only tiny headers cross the process boundary:

* **Blob slab** — an append-only arena of write-once byte blobs, keyed
  and deduplicated (circuit texts keyed by fingerprint).  The parent
  writes each distinct circuit exactly once; chunk headers carry a
  ``(segment, offset, length)`` :class:`BlobRef` instead of the text.
* **Result slots** — a fixed ring of per-in-flight-chunk slots the
  workers write their piggybacked telemetry wire into (the bulk of a
  profiled run's result payload), so the pickled ``ChunkResult`` going
  back through the pool queue stays header-sized.

Slot writes are guarded by a per-run token: a stale write from an
abandoned run's still-draining chunk can never be confused with the
current run's payload (the parent drops token mismatches and undecodable
slots — telemetry is lossy by design, counts never travel through
slots).

Lifecycle: the parent creates and owns every segment and unlinks them
all in :meth:`SlabArena.close` — called from ``ChunkRunner.__exit__``
on *every* exit path and backstopped by a ``weakref.finalize`` — so a
failed or interrupted run leaves nothing in ``/dev/shm``.  Workers only
ever attach by name (and unregister their attachment from the resource
tracker, which on CPython < 3.13 would otherwise double-unlink and warn
at exit).
"""

from __future__ import annotations

import contextlib
import itertools
import os
import struct
import threading
import weakref
from typing import NamedTuple

import repro.obs as obs

try:  # pragma: no cover - import guard exercised via shm_available()
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm
    _shared_memory = None

#: Segment name prefix; the leak test (and operators) can audit
#: ``/dev/shm/repro_*`` against it.
SEGMENT_PREFIX = "repro_"

#: Slot header: (run token, payload length), both uint64 little-endian.
_SLOT_HEADER = struct.Struct("<QQ")

_segment_counter = itertools.count()

_available: bool | None = None


def shm_available() -> bool:
    """Whether this platform can create + attach shared-memory segments.

    Probed once per process with a tiny create/close/unlink round trip
    (import success alone does not guarantee a usable ``/dev/shm`` —
    locked-down containers exist).
    """
    global _available
    if _available is None:
        if _shared_memory is None:
            _available = False
        else:
            try:
                probe = _shared_memory.SharedMemory(
                    name=f"{SEGMENT_PREFIX}probe_{os.getpid()}",
                    create=True,
                    size=16,
                )
                probe.close()
                probe.unlink()
                _available = True
            except (OSError, ValueError):
                _available = False
    return _available


class BlobRef(NamedTuple):
    """Where a write-once blob lives: segment name, offset, length."""

    segment: str
    offset: int
    length: int


class SlotRef(NamedTuple):
    """One result slot: segment name, offset, capacity (incl. header)."""

    segment: str
    offset: int
    size: int


def _new_segment(size: int):
    name = f"{SEGMENT_PREFIX}{os.getpid()}_{next(_segment_counter)}"
    return _shared_memory.SharedMemory(name=name, create=True, size=size)


def _unlink_segments(segments: list) -> None:
    """Close + unlink, ignoring already-gone segments (idempotent)."""
    for segment in segments:
        with contextlib.suppress(OSError):
            segment.close()
        with contextlib.suppress(OSError, FileNotFoundError):
            segment.unlink()
    segments.clear()


class SlabArena:
    """Parent-side owner of the shared-memory transport segments.

    One arena per pooled :class:`~repro.engine.workers.ChunkRunner`
    context: a growable list of blob slabs plus one fixed slot segment
    sized ``slot_count * slot_bytes``.  All mutation happens on the
    parent (feeder/consumer threads — internally locked); workers only
    read blobs and write into their assigned slot.
    """

    def __init__(
        self,
        slot_count: int,
        slot_bytes: int = 1 << 16,
        slab_bytes: int = 1 << 20,
    ):
        if not shm_available():
            raise RuntimeError("shared memory is not available on this host")
        if slot_count < 1 or slot_bytes <= _SLOT_HEADER.size:
            raise ValueError("need at least one usable result slot")
        self.slot_count = slot_count
        self.slot_bytes = slot_bytes
        self.slab_bytes = slab_bytes
        self._lock = threading.Lock()
        self._segments: list = []
        self._blobs: dict[object, BlobRef] = {}
        self._slab = None  # current blob slab (SharedMemory)
        self._slab_used = 0
        self._slots = _new_segment(slot_count * slot_bytes)
        self._segments.append(self._slots)
        # Safety net: unlink at GC / interpreter exit even if close()
        # was never reached (close() detaches the finalizer).
        self._finalizer = weakref.finalize(
            self, _unlink_segments, self._segments
        )
        if obs.is_metrics():
            obs.counter("repro_shm_segments_total").inc()
            obs.gauge("repro_shm_arena_bytes").set(self.capacity_bytes)

    # -- blobs -----------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        with self._lock:
            return sum(segment.size for segment in self._segments)

    def put_blob(self, key, data: bytes) -> BlobRef:
        """Write ``data`` once under ``key``; later puts return the
        first ref (write-once semantics make concurrent reads safe)."""
        with self._lock:
            ref = self._blobs.get(key)
            if ref is not None:
                return ref
            if self._slab is None or (
                self._slab.size - self._slab_used < len(data)
            ):
                self._slab = _new_segment(max(self.slab_bytes, len(data)))
                self._segments.append(self._slab)
                self._slab_used = 0
                if obs.is_metrics():
                    obs.counter("repro_shm_segments_total").inc()
            offset = self._slab_used
            self._slab.buf[offset : offset + len(data)] = data
            self._slab_used += len(data)
            ref = BlobRef(self._slab.name, offset, len(data))
            self._blobs[key] = ref
        if obs.is_metrics():
            obs.counter("repro_shm_blob_bytes_total").inc(len(data))
            obs.gauge("repro_shm_arena_bytes").set(self.capacity_bytes)
        return ref

    def has_blob(self, key) -> bool:
        with self._lock:
            return key in self._blobs

    # -- result slots ----------------------------------------------------

    def slot_ref(self, slot_id: int) -> SlotRef:
        if not 0 <= slot_id < self.slot_count:
            raise IndexError(f"slot {slot_id} out of range")
        return SlotRef(
            self._slots.name, slot_id * self.slot_bytes, self.slot_bytes
        )

    def read_slot(self, slot_id: int, token: int) -> bytes | None:
        """The payload a worker wrote into ``slot_id`` for run ``token``,
        or ``None`` for a stale/foreign/over-long write."""
        offset = slot_id * self.slot_bytes
        buf = self._slots.buf
        written_token, length = _SLOT_HEADER.unpack_from(buf, offset)
        if written_token != token:
            return None
        if length > self.slot_bytes - _SLOT_HEADER.size:
            return None
        start = offset + _SLOT_HEADER.size
        return bytes(buf[start : start + length])

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Unlink every segment (idempotent; safe mid-run on POSIX —
        attached workers keep their mappings until they exit)."""
        self._finalizer.detach()
        with self._lock:
            self._slab = None
            self._blobs.clear()
            _unlink_segments(self._segments)

    @property
    def closed(self) -> bool:
        with self._lock:
            return not self._segments

    def __enter__(self) -> "SlabArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- worker side -------------------------------------------------------------

_ATTACHED: dict[str, object] = {}


def _attach(name: str):
    """Attach (and cache) a segment by name in this process.

    The attachment must not register with the resource tracker: the
    parent already owns the segment, and on CPython < 3.13 attaching
    registers the name again — under ``fork`` the tracker process is
    *shared* with the parent, so either the duplicate registration
    re-unlinks at worker exit or a compensating ``unregister`` knocks
    out the parent's own entry.  Python 3.13 exposes ``track=False``;
    earlier versions get the standard workaround of stubbing
    ``resource_tracker.register`` for the duration of the attach
    (workers attach single-threaded, so the swap is race-free).
    """
    segment = _ATTACHED.get(name)
    if segment is None:
        try:
            segment = _shared_memory.SharedMemory(
                name=name, create=False, track=False
            )
        except TypeError:  # track= arrived in 3.13
            from multiprocessing import resource_tracker

            original = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                segment = _shared_memory.SharedMemory(name=name, create=False)
            finally:
                resource_tracker.register = original
        _ATTACHED[name] = segment
    return segment


def read_blob(ref: BlobRef) -> bytes:
    """A blob's bytes, read through this process's cached attachment."""
    segment = _attach(ref.segment)
    return bytes(segment.buf[ref.offset : ref.offset + ref.length])


def write_slot(ref: SlotRef, token: int, payload: bytes) -> bool:
    """Write ``payload`` into a result slot; ``False`` when it does not
    fit (the caller falls back to the pickle wire)."""
    if len(payload) > ref.size - _SLOT_HEADER.size:
        return False
    segment = _attach(ref.segment)
    start = ref.offset + _SLOT_HEADER.size
    segment.buf[start : start + len(payload)] = payload
    # Header last: a reader that raced ahead sees the old token, not a
    # token pointing at half-written bytes.
    _SLOT_HEADER.pack_into(segment.buf, ref.offset, token, len(payload))
    return True


def detach_all() -> None:
    """Drop this process's cached attachments (tests / worker teardown)."""
    for segment in _ATTACHED.values():
        with contextlib.suppress(OSError):
            segment.close()
    _ATTACHED.clear()
