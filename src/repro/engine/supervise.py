"""Supervised worker processes: pipes, heartbeats, crash detection.

This is the actor-style supervision layer under
:class:`~repro.engine.workers.ChunkRunner`.  Where the old executor
handed chunks to an opaque ``multiprocessing.Pool`` — whose
``imap_unordered`` hangs forever if a worker is SIGKILLed mid-chunk —
:class:`SupervisedPool` owns each worker :class:`multiprocessing.Process`
directly:

* **One duplex pipe per worker.**  The parent *leases* chunks to a
  specific worker over its pipe, so it always knows exactly which
  chunks a dead worker was holding — a crash fails only those leases,
  never the run.
* **Liveness, two ways.**  Every worker's process ``sentinel`` is
  polled together with its pipe in one :func:`multiprocessing.connection.wait`
  call, so a death wakes the supervisor immediately; and a daemon
  thread in each worker stamps a shared heartbeat slab every
  ``heartbeat_interval`` seconds (and ticks a
  ``repro_worker_heartbeats_total`` counter that rides the existing
  piggybacked telemetry wire), so a *hung* worker — alive but stuck —
  is detectable too.
* **Replenishment.**  :meth:`SupervisedPool.respawn` replaces a dead
  worker in place; the scheduler re-leases its chunks and the sweep
  continues.  The derived per-chunk seed scheme makes every replayed
  chunk bitwise identical, so recovery can never skew counts.

The worker main loop (:func:`worker_main`) is deliberately dumb: recv a
message, do the work, send the reply.  All policy — retry budgets,
backoff, quarantine, lease deadlines — lives with the scheduler in
:mod:`repro.engine.workers`; all *mechanism* for keeping processes
alive lives here.  This split is the single-node version of the
scheduler/worker contract the ROADMAP's multi-node sharded collection
item needs: the messages crossing the pipe are already lease-shaped.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass
from multiprocessing import connection
from typing import Any, Iterable

import repro.obs as obs
from repro.engine import faults

__all__ = ["SupervisedPool", "WorkerEvent", "worker_main"]

#: How long a graceful stop waits for workers to drain their queued
#: messages before escalating to terminate/kill.
_STOP_GRACE_SECONDS = 30.0


# -- worker side -------------------------------------------------------------


def _heartbeat_loop(heartbeats, slot: int, interval: float, stop) -> None:
    """Stamp this worker's heartbeat slab slot until told to stop.

    Runs on a daemon thread so a chunk busy in numpy keeps beating
    (NumPy releases the GIL in its kernels).  The obs counter is the
    telemetry-wire echo of the slab: it ships to the parent piggybacked
    on the next chunk result, making liveness visible in Prometheus
    dumps, not just to the supervisor.
    """
    pid = str(os.getpid())
    while not stop.is_set():
        heartbeats[slot] = time.monotonic()
        if obs.is_metrics():
            obs.counter("repro_worker_heartbeats_total", pid=pid).inc()
        stop.wait(interval)


def worker_main(
    conn,
    slot: int,
    wire_config: tuple,
    heartbeats,
    heartbeat_interval: float,
    fault_plan,
) -> None:
    """A supervised worker: heartbeat thread + recv/execute/send loop.

    Messages in: ``("chunk", token, index, payload)``,
    ``("warm", payload)``, ``("stop",)``.  Messages out:
    ``("result", token, index, ChunkResult)``,
    ``("error", token, index, message, kind)``,
    ``("warm", pid, spans, metrics)``.

    A chunk that raises does **not** kill the worker: the error is
    reported (with ``kind="shm"`` for transport failures, so the parent
    can degrade the wire) and the loop continues — the parent decides
    whether to retry or quarantine.  Only a ``stop`` message, a closed
    pipe, or an actual process death ends the loop.
    """
    # Imported lazily: workers imports this module at top level, and
    # the late import also means a monkeypatched workers.run_chunk
    # (inherited under fork) is honored.
    from repro.engine import workers

    workers.enter_worker(wire_config)
    faults.install(fault_plan)
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(heartbeats, slot, heartbeat_interval, stop),
        daemon=True,
    )
    beat.start()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "stop":
                break
            if kind == "warm":
                reply = workers.warm_in_worker(message[1])
                _send(conn, ("warm",) + reply)
            elif kind == "chunk":
                token, index, payload = message[1], message[2], message[3]
                try:
                    result = workers.execute_chunk(payload)
                except Exception as exc:
                    error_kind = (
                        "shm"
                        if isinstance(exc, workers.ShmTransportError)
                        else "exception"
                    )
                    _send(
                        conn,
                        (
                            "error",
                            token,
                            index,
                            f"{type(exc).__name__}: {exc}",
                            error_kind,
                        ),
                    )
                else:
                    _send(conn, ("result", token, index, result))
    finally:
        stop.set()
        with contextlib.suppress(OSError):
            conn.close()


def _send(conn, message: tuple) -> None:
    # A send can only fail when the parent is gone (closed its end or
    # died); the next recv then raises EOFError and ends the loop, so
    # suppressing here never hides a live failure.
    with contextlib.suppress(OSError, ValueError):
        conn.send(message)


# -- parent side -------------------------------------------------------------


@dataclass
class WorkerEvent:
    """One supervision event: a worker message, or a worker death."""

    kind: str  # "message" | "died"
    slot: int
    pid: int
    payload: tuple = ()


class _Handle:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = ("process", "conn", "slot", "dead")

    def __init__(self, process, conn, slot: int):
        self.process = process
        self.conn = conn
        self.slot = slot
        self.dead = False


class SupervisedPool:
    """A fixed-size set of supervised worker processes.

    Mechanism only: spawn/respawn, targeted sends, event polling
    (messages + deaths in one wait), heartbeat ages, shutdown.  The
    chunk scheduler in :mod:`repro.engine.workers` layers leases,
    retries and quarantine on top.
    """

    def __init__(
        self,
        workers: int,
        wire_config: tuple | None = None,
        fault_plan=faults.NOOP,
        heartbeat_interval: float = 0.5,
    ):
        self.workers = workers
        self._wire_config = (
            wire_config if wire_config is not None else obs.wire_config()
        )
        self._fault_plan = fault_plan
        self._heartbeat_interval = heartbeat_interval
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        # lock=False: each slot has exactly one writer (its worker) and
        # one reader (the supervisor), and a torn read of a monotonic
        # stamp only mis-ages a heartbeat by one interval.
        self._heartbeats = self._context.Array("d", workers, lock=False)
        self._handles: list[_Handle | None] = [None] * workers

    def start(self) -> None:
        for slot in range(self.workers):
            self._spawn(slot)

    def _spawn(self, slot: int) -> _Handle:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=worker_main,
            args=(
                child_conn,
                slot,
                self._wire_config,
                self._heartbeats,
                self._heartbeat_interval,
                self._fault_plan,
            ),
            daemon=True,
            name=f"repro-worker-{slot}",
        )
        process.start()
        child_conn.close()
        self._heartbeats[slot] = time.monotonic()
        handle = _Handle(process, parent_conn, slot)
        self._handles[slot] = handle
        return handle

    # -- liveness --------------------------------------------------------

    def live_slots(self) -> list[int]:
        return [
            h.slot for h in self._handles if h is not None and not h.dead
        ]

    def worker_pid(self, slot: int) -> int:
        handle = self._handles[slot]
        return handle.process.pid if handle is not None else 0

    def heartbeat_age(self, slot: int) -> float:
        """Seconds since the worker last stamped its heartbeat slot."""
        return max(0.0, time.monotonic() - self._heartbeats[slot])

    def kill(self, slot: int) -> None:
        """Forcibly take a worker down (hung / lease-expired)."""
        handle = self._handles[slot]
        if handle is None or handle.dead:
            return
        handle.process.terminate()
        handle.process.join(1.0)
        if handle.process.is_alive():  # pragma: no cover - stuck in C
            handle.process.kill()
            handle.process.join(1.0)
        self._reap(handle)

    def respawn(self, slot: int) -> int:
        """Replace a dead worker in place; returns the new pid."""
        handle = self._handles[slot]
        if handle is not None and not handle.dead:
            self.kill(slot)
        return self._spawn(slot).process.pid or 0

    def _reap(self, handle: _Handle) -> None:
        handle.dead = True
        with contextlib.suppress(OSError):
            handle.conn.close()
        # join() on an already-exited process only collects the zombie.
        handle.process.join(0.1)

    # -- messaging -------------------------------------------------------

    def send(self, slot: int, message: tuple) -> bool:
        """Send to one worker; ``False`` means it is (now) dead."""
        handle = self._handles[slot]
        if handle is None or handle.dead:
            return False
        try:
            handle.conn.send(message)
        except (OSError, ValueError, BrokenPipeError):
            self._reap(handle)
            return False
        return True

    def poll(self, timeout: float) -> list[WorkerEvent]:
        """Wait up to ``timeout`` for worker messages and/or deaths.

        One ``connection.wait`` over every live worker's pipe *and*
        process sentinel: a result wakes us, and so does a SIGKILL.  A
        recv that fails mid-message (worker died while sending) is a
        death, not an error — the chunk it was carrying stays leased
        and the scheduler requeues it.
        """
        live = [h for h in self._handles if h is not None and not h.dead]
        if not live:
            return []
        waitables: list[Any] = []
        for handle in live:
            waitables.append(handle.conn)
            waitables.append(handle.process.sentinel)
        ready = set(connection.wait(waitables, timeout))
        events: list[WorkerEvent] = []
        for handle in live:
            pid = handle.process.pid or 0
            died = False
            if handle.conn in ready:
                while True:
                    try:
                        if not handle.conn.poll():
                            break
                        message = handle.conn.recv()
                    except Exception:
                        # EOF, a torn pickle from a mid-send death, or
                        # a closed pipe: all mean this worker is gone.
                        died = True
                        break
                    events.append(
                        WorkerEvent("message", handle.slot, pid, message)
                    )
            if not died and handle.process.sentinel in ready:
                died = not handle.process.is_alive()
            if died:
                self._reap(handle)
                events.append(WorkerEvent("died", handle.slot, pid))
        return events

    # -- shutdown --------------------------------------------------------

    def stop(self, graceful: bool = True) -> None:
        """Stop every worker.

        Graceful: send ``stop`` sentinels and give workers a bounded
        grace window to drain queued messages (so a clean exit never
        kills a worker mid-chunk), then escalate.  Non-graceful
        (exception path): terminate immediately — the shared-memory
        arena has already been unlinked by then, so even a worker stuck
        attaching cannot pin segments.
        """
        handles = [h for h in self._handles if h is not None]
        if graceful:
            for handle in handles:
                if not handle.dead:
                    self.send(handle.slot, ("stop",))
            deadline = time.monotonic() + _STOP_GRACE_SECONDS
            for handle in handles:
                if handle.dead:
                    continue
                handle.process.join(max(0.0, deadline - time.monotonic()))
        for handle in handles:
            if handle.process.is_alive():
                handle.process.terminate()
        for handle in handles:
            if handle.process.is_alive():
                handle.process.join(1.0)
            if handle.process.is_alive():  # pragma: no cover - stuck in C
                handle.process.kill()
                handle.process.join(1.0)
            with contextlib.suppress(OSError):
                handle.conn.close()
        self._handles = [None] * self.workers

    def drain_warm_acks(
        self, pending: Iterable[int], deadline: float
    ) -> dict[int, tuple]:
        """Collect one warm ack per ``pending`` slot until ``deadline``.

        Used by warm broadcasts outside a run: non-warm messages seen
        here can only be stale results of an abandoned run and are
        dropped.  A worker that dies mid-warm is respawned and counted
        as acked with an empty payload — it will pay its compile on its
        first chunk, which is the pre-warm behavior (and the respawn is
        observable via ``repro_worker_deaths_total``).
        """
        waiting = set(pending)
        acks: dict[int, tuple] = {}
        while waiting and time.monotonic() < deadline:
            remaining = max(0.05, min(0.25, deadline - time.monotonic()))
            for event in self.poll(remaining):
                if event.kind == "died":
                    if obs.is_metrics():
                        obs.counter("repro_worker_deaths_total").inc()
                    self.respawn(event.slot)
                    waiting.discard(event.slot)
                    acks.setdefault(event.slot, (0, (), ()))
                elif event.payload and event.payload[0] == "warm":
                    acks[event.slot] = tuple(event.payload[1:])
                    waiting.discard(event.slot)
        return acks
