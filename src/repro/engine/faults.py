"""Deterministic fault injection for the supervised chunk executor.

A :class:`FaultPlan` is a small declarative script of process-level
failures — *kill this worker right before chunk 2*, *stall chunk 5 for
half a second*, *corrupt chunk 1's shared-memory result slot*, *raise
inside chunk 3's decode* — that the executor's injection points consult
on the hot path.  It exists so the supervision machinery
(:mod:`repro.engine.supervise`) can be chaos-tested honestly: the chaos
suite and the CI chaos leg run real sweeps with faults firing and
assert the final counts are **bitwise identical** to an uninjected run.

Determinism: a clause fires on a specific ``chunk_index`` and, by
default, only on attempt 0 (``xN`` widens that to the first N attempts,
``x*`` to every attempt — the route to testing quarantine).  Because
the attempt number travels in the chunk spec and the chunk RNG is
derived purely from ``(base_seed, task_entropy, chunk_index)``, a
retried chunk replays the same shots, so an injected crash can delay a
result but never skew it.

Faults only ever fire inside pool workers (:func:`in_worker` is checked
at every injection point): a ``kill`` clause must never take down the
parent, and keeping serial runs fault-free gives every chaos test its
uninjected reference for free.

Activation: pass a plan (or its string syntax) as
``ExecutionOptions.fault_plan``, or set the ``REPRO_FAULTS``
environment variable — e.g. ``REPRO_FAULTS="kill@2,delay@5:0.5"`` —
which applies to any run that does not carry an explicit plan.  With
neither, the plan is the shared :data:`NOOP` and every injection point
is a single ``is``-check.

Syntax (comma-separated clauses)::

    kill@K            SIGKILL the worker right before it runs chunk K
    delay@K:SECONDS   sleep SECONDS before running chunk K
    raise@K           raise FaultInjected inside chunk K's decode stage
    corrupt-slot@K    scribble garbage over chunk K's shm result slot

    any clause may append xN (fire on attempts < N) or x* (always).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

__all__ = [
    "FaultClause",
    "FaultInjected",
    "FaultPlan",
    "NOOP",
    "active_plan",
    "install",
    "plan_from_env",
    "resolve_plan",
]

#: Environment variable carrying a fault-plan string for runs that do
#: not pass an explicit plan.
ENV_VAR = "REPRO_FAULTS"

ACTIONS = ("kill", "delay", "raise", "corrupt-slot")


class FaultInjected(RuntimeError):
    """The exception a ``raise`` clause throws inside a worker chunk."""


@dataclass(frozen=True)
class FaultClause:
    """One injected failure: ``action`` on ``chunk_index``.

    ``attempts`` bounds which retry attempts fire: the clause triggers
    while ``attempt < attempts`` (``None`` means every attempt — the
    way to manufacture a poison chunk).  ``arg`` is the action's
    parameter (delay seconds); actions without one keep it at 0.
    """

    action: str
    chunk_index: int
    arg: float = 0.0
    attempts: int | None = 1

    def fires(self, action: str, chunk_index: int, attempt: int) -> bool:
        return (
            self.action == action
            and self.chunk_index == chunk_index
            and (self.attempts is None or attempt < self.attempts)
        )

    def __str__(self) -> str:
        text = f"{self.action}@{self.chunk_index}"
        if self.arg:
            text += f":{self.arg:g}"
        if self.attempts is None:
            text += "x*"
        elif self.attempts != 1:
            text += f"x{self.attempts}"
        return text


@dataclass(frozen=True)
class FaultPlan:
    """A set of fault clauses consulted by the executor's injection
    points.  Empty (:data:`NOOP`) by default — the no-fault fast path
    is one identity check per injection point."""

    clauses: tuple[FaultClause, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``action@chunk[:arg][xN]`` comma syntax.

        An empty/whitespace string is the noop plan, so
        ``REPRO_FAULTS=""`` explicitly disables injection.
        """
        clauses = []
        for raw in text.split(","):
            part = raw.strip()
            if not part:
                continue
            action, sep, rest = part.partition("@")
            if action not in ACTIONS or not sep:
                raise ValueError(
                    f"bad fault clause {part!r}: expected "
                    f"action@chunk[:arg][xN] with action in {ACTIONS}"
                )
            attempts: int | None = 1
            if "x" in rest:
                rest, _, reps = rest.rpartition("x")
                attempts = None if reps == "*" else int(reps)
            chunk_text, _, arg_text = rest.partition(":")
            try:
                chunk_index = int(chunk_text)
                arg = float(arg_text) if arg_text else 0.0
            except ValueError:
                raise ValueError(
                    f"bad fault clause {part!r}: chunk must be an int, "
                    f"arg a float"
                ) from None
            clauses.append(FaultClause(action, chunk_index, arg, attempts))
        return cls(tuple(clauses))

    def __str__(self) -> str:
        return ",".join(str(clause) for clause in self.clauses)

    def __bool__(self) -> bool:
        return bool(self.clauses)

    def match(
        self, action: str, chunk_index: int, attempt: int
    ) -> FaultClause | None:
        for clause in self.clauses:
            if clause.fires(action, chunk_index, attempt):
                return clause
        return None


#: The shared empty plan; ``plan is NOOP`` short-circuits every hook.
NOOP = FaultPlan()


def plan_from_env() -> FaultPlan:
    """The plan :data:`ENV_VAR` describes (noop when unset/empty)."""
    text = os.environ.get(ENV_VAR, "")
    return FaultPlan.parse(text) if text.strip() else NOOP


def resolve_plan(plan: "FaultPlan | str | None") -> FaultPlan:
    """Normalize an options-level plan: an explicit plan (or syntax
    string) wins; ``None`` falls back to the environment.  Clauseless
    plans normalize to :data:`NOOP` so the hooks stay disarmed — an
    explicit empty plan is how a test opts out of ``REPRO_FAULTS``."""
    if plan is None:
        return plan_from_env()
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    return plan if plan.clauses else NOOP


# -- the installed plan ------------------------------------------------------

_ACTIVE: FaultPlan = NOOP


def install(plan: "FaultPlan | str | None") -> None:
    """Install the process's active plan (workers call this from their
    initializer with the plan the parent resolved)."""
    global _ACTIVE
    _ACTIVE = resolve_plan(plan)


def active_plan() -> FaultPlan:
    return _ACTIVE


# -- injection points --------------------------------------------------------
#
# Each hook is called from exactly one place in the executor; all of
# them no-op unless running inside a pool worker with a non-empty plan.


def _armed(in_worker: bool) -> bool:
    return in_worker and _ACTIVE is not NOOP


def on_chunk_start(chunk_index: int, attempt: int, in_worker: bool) -> None:
    """``kill`` / ``delay`` hooks, fired before a chunk executes."""
    if not _armed(in_worker):
        return
    if _ACTIVE.match("kill", chunk_index, attempt) is not None:
        # SIGKILL, not sys.exit: the point is an unflushable, no-cleanup
        # death — exactly what a segfault or OOM kill looks like.
        os.kill(os.getpid(), signal.SIGKILL)
    clause = _ACTIVE.match("delay", chunk_index, attempt)
    if clause is not None:
        time.sleep(clause.arg)


def on_decode(chunk_index: int, attempt: int, in_worker: bool) -> None:
    """``raise`` hook, fired at the top of a chunk's decode stage."""
    if not _armed(in_worker):
        return
    if _ACTIVE.match("raise", chunk_index, attempt) is not None:
        raise FaultInjected(
            f"injected decode failure (chunk {chunk_index}, "
            f"attempt {attempt})"
        )


def corrupt_slot(chunk_index: int, attempt: int, in_worker: bool) -> bool:
    """Whether a ``corrupt-slot`` clause wants this chunk's shm result
    slot scribbled (the writer substitutes garbage for the payload)."""
    if not _armed(in_worker):
        return False
    return _ACTIVE.match("corrupt-slot", chunk_index, attempt) is not None
