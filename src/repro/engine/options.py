"""Execution policy for collection runs, as one typed object.

:class:`ExecutionOptions` gathers every knob that describes *how* a
collection runs — worker count, chunk size, base seed, early-stop
policy, result store, progress hook — as distinct from the
:class:`~repro.engine.tasks.Task` list that describes *what* is being
measured.  One options object can drive many sweeps; none of its fields
participate in task identity (``strong_id``), so stored rows always
remain addressable.  ``workers``, ``store`` and ``progress`` are pure
scheduling/reporting choices and may vary freely between runs of one
store; ``base_seed`` is seed-checked on resume (a different explicit
seed re-collects, by design), and ``chunk_shots`` is part of the
statistical protocol (it sets which shots are drawn), so keep both
fixed across runs that share a store.

``base_seed=None`` requests fresh OS entropy: the run draws one random
seed word, records it in every row it writes (so the run itself remains
auditable), and accepts *any* completed row on resume — an unseeded run
asks for "a" sample, not a specific one.  Pass an int for reproducible,
seed-checked resumable runs.
"""

from __future__ import annotations

import os  # noqa: F401 - referenced in field annotations
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable  # noqa: F401

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.collector import TaskStats  # noqa: F401


# Shared "not passed" sentinel for keyword arguments whose defaults
# live elsewhere (ExecutionOptions fields, sweep-level settings):
# comparing against it distinguishes "not passed" from "passed the
# default", so explicit settings are never silently dropped.
UNSET: Any = object()


def explicit_kwargs(**kwargs: Any) -> dict[str, Any]:
    """The subset of ``kwargs`` that was actually passed (not UNSET)."""
    return {
        name: value for name, value in kwargs.items() if value is not UNSET
    }


@dataclass(frozen=True)
class ExecutionOptions:
    """How to run a collection (the engine's execution policy).

    * ``workers`` — process-pool size (``1`` = in-process serial).
      Aggregate counts are identical for every value, by construction.
    * ``chunk_shots`` — shots per derived-seed chunk.  Part of the
      statistical protocol (it sets the RNG chunking and the early-stop
      granularity), so keep it fixed across runs that share a store.
    * ``base_seed`` — int for reproducible runs, ``None`` (the
      default, matching every other seed entry point in the package)
      for fresh OS entropy — see the module docstring for the resume
      semantics.
    * ``max_errors`` — default early-stop policy applied to every task
      whose own ``max_errors`` is ``None``; a task-level value always
      wins.
    * ``store`` — JSONL result-store path (or ``ResultStore``); enables
      resume.
    * ``progress`` — callback invoked with each finished ``TaskStats``.
    * ``profile`` — turn on :mod:`repro.obs` metrics for the duration
      of the run (flags restored afterwards; the registry is left
      intact for the caller to read).  Purely observational: no effect
      on the collected counts.
    * ``transport`` — parent-worker wire for pooled runs: ``"pickle"``,
      ``"shm"`` (shared-memory slab arena, header-only pickles), or
      ``"auto"`` (shm when the host supports it, overridable via the
      ``REPRO_TRANSPORT`` environment variable).  Counts are bitwise
      identical on every wire; this is purely a performance choice.
    * ``adaptive_chunks`` — let an
      :class:`~repro.engine.adaptive.AdaptiveChunkSizer` steer chunk
      sizes toward ``target_chunk_seconds`` within
      ``[min_chunk_shots, max_chunk_shots]``.  Changes *which* shots
      are drawn (exactly like changing ``chunk_shots``), so it is
      off by default and should stay consistently on or off across
      runs that share a store.
    * ``max_chunk_retries`` — how many times a failed chunk lease
      (worker death, expired deadline, in-chunk exception) is retried
      before the chunk is quarantined as a structured failure row.
      Retries replay identical shots (the chunk RNG derives from the
      spec alone), so recovery never changes counts.
    * ``chunk_timeout_seconds`` — per-chunk lease deadline for pooled
      runs; an overdue lease kills its worker and requeues the chunk.
      ``None`` (the default) means no deadline.
    * ``retry_backoff`` — base of the bounded exponential retry delay
      (``retry_backoff * 2**attempt`` seconds, capped).
    * ``fault_plan`` — a :class:`repro.engine.faults.FaultPlan` (or its
      string syntax) injecting deterministic worker crashes for chaos
      testing; ``None`` defers to the ``REPRO_FAULTS`` environment
      variable, which is a noop when unset.  Faults fire only inside
      pool workers, so the counts still come out identical — that is
      the point.
    """

    workers: int = 1
    chunk_shots: int = 2_000
    base_seed: int | None = None
    max_errors: int | None = None
    store: "str | os.PathLike | Any | None" = None
    progress: "Callable[[TaskStats], None] | None" = field(
        default=None, compare=False
    )
    profile: bool = False
    transport: str = "auto"
    adaptive_chunks: bool = False
    target_chunk_seconds: float = 0.25
    min_chunk_shots: int = 256
    max_chunk_shots: int = 65_536
    max_chunk_retries: int = 2
    chunk_timeout_seconds: float | None = None
    retry_backoff: float = 0.1
    fault_plan: Any = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.chunk_shots < 1:
            raise ValueError("chunk_shots must be positive")
        if self.max_errors is not None and self.max_errors < 1:
            raise ValueError("max_errors must be positive when set")
        if self.transport not in ("auto", "pickle", "shm"):
            raise ValueError(
                "transport must be 'auto', 'pickle' or 'shm', "
                f"got {self.transport!r}"
            )
        if self.target_chunk_seconds <= 0:
            raise ValueError("target_chunk_seconds must be positive")
        if not 1 <= self.min_chunk_shots <= self.max_chunk_shots:
            raise ValueError(
                "need 1 <= min_chunk_shots <= max_chunk_shots"
            )
        if self.max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be >= 0")
        if (
            self.chunk_timeout_seconds is not None
            and self.chunk_timeout_seconds <= 0
        ):
            raise ValueError("chunk_timeout_seconds must be positive")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")

    def replace(self, **changes: Any) -> "ExecutionOptions":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return replace(self, **changes)

    @classmethod
    def resolve(
        cls, options: "ExecutionOptions | None", **overrides: Any
    ) -> "ExecutionOptions":
        """``options`` — or the defaults when ``None`` — with keyword
        ``overrides`` patched in.  The one resolution rule every
        ``collect()`` entry point shares."""
        resolved = options if options is not None else cls()
        return resolved.replace(**overrides) if overrides else resolved
