"""LRU memoization of per-circuit initialization work.

The paper's whole point is that Algorithm 1's Initialization is the
expensive part and Eq. 4 sampling is cheap; a collection run should
therefore pay initialization once per distinct circuit, not once per
chunk.  :class:`SamplerCache` memoizes any fingerprint-keyed artifact —
compiled samplers, frame simulators, decoders built from extracted DEMs
— with least-recently-used eviction so unbounded sweeps cannot exhaust
memory.

Each worker process owns one process-global cache (:func:`shared_cache`):
forked/spawned workers cannot share Python objects, but because chunks
of the same task always carry the same fingerprint, every worker pays
initialization at most once per distinct circuit it touches.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable

import repro.obs as obs


def _key_kind(key: Hashable) -> str:
    """The artifact family of a cache key (circuit/sampler/dem/decoder).

    Keys are ``(kind, fingerprint, ...)`` tuples by convention; the
    kind tags hit/miss metrics and build spans so per-artifact compile
    cost is attributable in profiles.
    """
    if isinstance(key, tuple) and key and isinstance(key[0], str):
        return key[0]
    return "other"


class SamplerCache:
    """Fingerprint-keyed LRU cache with build-on-miss semantics."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get_or_build(self, key: Hashable, build: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building and inserting it
        on a miss (evicting the least recently used entry if full).

        When :mod:`repro.obs` metrics are on, hits and misses count
        into ``repro_cache_{hits,misses}_total{kind,pid}`` and build
        time into ``repro_cache_build_seconds_total{kind,pid}`` — the
        per-worker compile column of ``repro collect --profile``; when
        tracing is on each miss's build runs inside a ``cache.build``
        span.
        """
        if key in self._entries:
            self.hits += 1
            if obs.is_metrics():
                obs.counter(
                    "repro_cache_hits_total",
                    kind=_key_kind(key), pid=str(os.getpid()),
                ).inc()
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        if not (obs.is_metrics() or obs.is_tracing()):
            value = build()
        else:
            kind = _key_kind(key)
            pid = str(os.getpid())
            if obs.is_metrics():
                obs.counter(
                    "repro_cache_misses_total", kind=kind, pid=pid
                ).inc()
            started = time.perf_counter()
            with obs.span("cache.build", kind=kind):
                value = build()
            if obs.is_metrics():
                obs.counter(
                    "repro_cache_build_seconds_total", kind=kind, pid=pid
                ).inc(time.perf_counter() - started)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
        }


_SHARED: SamplerCache | None = None


def shared_cache() -> SamplerCache:
    """The process-global cache used by engine workers (one per process)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = SamplerCache()
    return _SHARED


def reset_shared_cache() -> None:
    """Drop the process-global cache (tests / memory pressure)."""
    global _SHARED
    _SHARED = None
