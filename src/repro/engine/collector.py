"""Orchestration: run tasks to statistical convergence, resumably.

The collection loop mirrors sinter's shape: plan deterministic chunks,
stream them through a :class:`~repro.engine.workers.ChunkRunner`
(serial or pooled), and fold the results in **chunk-index order** into a
:class:`TaskStats`.  Early stopping is a pure function of that ordered
fold — a task stops at the first chunk where cumulative errors reach
``max_errors`` — so serial and pooled runs aggregate exactly the same
prefix of chunks and report bitwise-identical counts.

Results land in a JSONL :class:`ResultStore` (one row per finished
task, keyed by the task's content-based ``strong_id``).  Restarting a
collection against the same store skips every task that already has a
row, which makes long sweeps cheap to resume after interruption.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

import repro.obs as obs
from repro.decoders.metrics import wilson_interval
from repro.engine.adaptive import AdaptiveChunkSizer
from repro.engine.options import UNSET, ExecutionOptions, explicit_kwargs
from repro.engine.tasks import Task
from repro.engine.workers import (
    ChunkRunner,
    plan_chunks,
    plan_chunks_adaptive,
    warm_spec,
)


@dataclass
class TaskStats:
    """Aggregated counts for one task (the engine's unit of reporting).

    ``seconds`` is the task's wall-clock collection time;
    ``worker_seconds`` sums the chunks' in-worker time (across all
    workers, so it can exceed wall time on a pool), and
    ``sample_seconds`` / ``decode_seconds`` split that busy time into
    the two hot stages — the numbers behind ``repro collect --profile``.

    ``queue_wait_seconds`` (submit -> worker start) and
    ``hold_seconds`` (result received -> yielded past the reorder
    buffer) sum the runner's scheduling overheads across the task's
    chunks, and ``transport_bytes`` the pickled spec+result payloads
    both ways; all three stay 0 for in-process runs and for runs
    without telemetry (they are observations, not part of the counts).

    ``failed_chunks`` counts quarantined chunks — chunks that exhausted
    their retry budget.  Their shots are *not* in ``shots``: the task's
    counts stay honest, the task is considered incomplete (no store row
    is written for it), and a resume re-attempts it.
    """

    task_id: str
    decoder: str
    sampler: str
    metadata: dict[str, Any] = field(default_factory=dict)
    shots: int = 0
    errors: int = 0
    seconds: float = 0.0
    chunks: int = 0
    base_seed: int | None = None
    resumed: bool = False
    worker_seconds: float = 0.0
    sample_seconds: float = 0.0
    decode_seconds: float = 0.0
    queue_wait_seconds: float = 0.0
    hold_seconds: float = 0.0
    transport_bytes: int = 0
    failed_chunks: int = 0

    @property
    def error_rate(self) -> float:
        return self.errors / self.shots if self.shots else 0.0

    def wilson(self, z: float = 1.96) -> tuple[float, float]:
        return wilson_interval(self.errors, self.shots, z)

    def to_row(self) -> dict[str, Any]:
        low, high = self.wilson()
        row = asdict(self)
        row.pop("resumed")
        # Rows are only written for complete tasks, so the count is
        # always 0 there; it lives on the object for progress reporting.
        row.pop("failed_chunks")
        row.update(error_rate=self.error_rate, wilson_low=low, wilson_high=high)
        return row

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "TaskStats":
        metadata = row.get("metadata", {})
        if not isinstance(metadata, dict):
            raise ValueError("metadata is not a JSON object")
        return cls(
            task_id=row["task_id"],
            decoder=row.get("decoder", "matching"),
            sampler=row.get("sampler", "symbolic"),
            metadata=metadata,
            shots=int(row["shots"]),
            errors=int(row["errors"]),
            seconds=float(row.get("seconds", 0.0)),
            chunks=int(row.get("chunks", 0)),
            base_seed=row.get("base_seed"),
            resumed=True,
            worker_seconds=float(row.get("worker_seconds", 0.0)),
            sample_seconds=float(row.get("sample_seconds", 0.0)),
            decode_seconds=float(row.get("decode_seconds", 0.0)),
            # Telemetry fields arrived after the first store format;
            # older rows resume with them at zero.
            queue_wait_seconds=float(row.get("queue_wait_seconds", 0.0)),
            hold_seconds=float(row.get("hold_seconds", 0.0)),
            transport_bytes=int(row.get("transport_bytes", 0)),
        )


class ResultStore:
    """Append-only JSONL store of finished task rows.

    One line per finished task, written atomically enough for crash
    recovery: each append is a single ``write`` + ``flush`` +
    ``fsync``, so a killed run leaves at most one torn *final* line —
    which ``load()`` silently drops (the durability contract makes any
    earlier line complete, so mid-file garbage still warns).  Duplicate
    task ids keep the latest row on load.

    Besides task rows the store records *quarantine rows* — structured
    failure records (``{"kind": "quarantine", ...}``) for chunks that
    exhausted their retry budget.  A task with quarantined chunks gets
    no task row, so a resume re-attempts it (and thereby its poison
    chunks); the failure rows remain as the durable audit trail of what
    failed and why.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)

    def _iter_rows(self):
        """Parsed ``(line_number, row_dict)`` pairs, with crash-tail
        recovery: an unparsable *final* line with no trailing newline is
        what a killed ``append`` leaves behind and is skipped silently;
        corruption anywhere else still warns."""
        if not os.path.exists(self.path):
            return
        with open(self.path, errors="replace") as handle:
            content = handle.read()
        lines = content.split("\n")
        # A file ending in "\n" splits to a trailing "" — then no line
        # is torn.  Otherwise the final element is an unterminated
        # (possibly half-written) line.
        torn_candidate = len(lines) - 1 if lines[-1] != "" else -1
        for number, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                if not isinstance(row, dict):
                    raise ValueError("row is not a JSON object")
            except (json.JSONDecodeError, ValueError):
                if number == torn_candidate:
                    # Torn tail from a killed run: expected, recover
                    # silently; the row's task simply re-collects.
                    continue
                print(
                    f"warning: skipping corrupt row at "
                    f"{self.path}:{number + 1}",
                    file=sys.stderr,
                )
                continue
            yield number + 1, row

    def load(self) -> dict[str, TaskStats]:
        """All completed task rows keyed by ``task_id`` (empty if no
        file yet).  Kind-tagged rows (quarantine records) are not task
        rows and are skipped here — see :meth:`load_failures`."""
        rows: dict[str, TaskStats] = {}
        for number, row in self._iter_rows():
            if row.get("kind") is not None:
                continue
            try:
                stats = TaskStats.from_row(row)
            except (KeyError, TypeError, ValueError):
                print(
                    f"warning: skipping corrupt row at "
                    f"{self.path}:{number}",
                    file=sys.stderr,
                )
                continue
            rows[stats.task_id] = stats
        return rows

    def load_failures(self) -> list[dict[str, Any]]:
        """Every quarantine row, in append order."""
        return [
            row
            for _number, row in self._iter_rows()
            if row.get("kind") == "quarantine"
        ]

    def _append_row(self, row: dict[str, Any]) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(row) + "\n")
            handle.flush()
            # fsync bounds crash damage to one torn final line: every
            # preceding line is durably complete, which is what lets
            # load() treat mid-file corruption as an anomaly worth
            # warning about and the tail as routine crash recovery.
            os.fsync(handle.fileno())

    def append(self, stats: TaskStats) -> None:
        self._append_row(stats.to_row())

    def append_failure(
        self,
        task_id: str,
        chunk_index: int,
        attempts: int,
        error: str,
        base_seed: int | None = None,
    ) -> None:
        """Record one quarantined chunk as a structured failure row."""
        self._append_row(
            {
                "kind": "quarantine",
                "task_id": task_id,
                "chunk_index": chunk_index,
                "attempts": attempts,
                "error": error,
                "base_seed": base_seed,
            }
        )


def fresh_base_seed() -> int:
    """One 64-bit seed word drawn from OS entropy.

    Used when a run requests ``base_seed=None``: the drawn word is
    recorded in every row the run writes, so even "unseeded" results
    stay auditable and individually reproducible.
    """
    return int(np.random.SeedSequence().entropy) & ((1 << 64) - 1)


def collect(
    tasks: Iterable[Task],
    *,
    options: ExecutionOptions | None = None,
    base_seed: int | None = UNSET,
    workers: int = UNSET,
    chunk_shots: int = UNSET,
    max_errors: int | None = UNSET,
    store: ResultStore | str | os.PathLike | None = UNSET,
    progress: Callable[[TaskStats], None] | None = UNSET,
    profile: bool = UNSET,
    transport: str = UNSET,
    adaptive_chunks: bool = UNSET,
    max_chunk_retries: int = UNSET,
    chunk_timeout_seconds: float | None = UNSET,
    retry_backoff: float = UNSET,
    fault_plan: Any = UNSET,
) -> list[TaskStats]:
    """Collect statistics for every task; returns one TaskStats per task.

    Execution policy comes from ``options`` (an
    :class:`~repro.engine.options.ExecutionOptions`) when given, or
    from the loose keyword arguments — the same knobs — for direct
    calls.  Mixing the two raises :class:`TypeError` (explicit settings
    are never silently dropped).

    * ``workers`` — process-pool size (``1`` = in-process serial);
      aggregate counts are identical for every value, by construction.
    * ``chunk_shots`` — shots per chunk.  Part of the statistical
      protocol (it sets the early-stop granularity and the RNG chunking),
      so changing it changes which shots are drawn — keep it fixed
      across runs that share a store.
    * ``base_seed`` — int for reproducible runs; ``None`` draws one
      fresh OS-entropy seed for the whole run (recorded in every row)
      and accepts any completed stored row on resume.
    * ``max_errors`` — default early-stop policy for tasks whose own
      ``max_errors`` is ``None``; a task-level value always wins.
    * ``store`` — path or :class:`ResultStore`; tasks with an existing
      row are returned as ``resumed`` without sampling a single shot.
    * ``progress`` — callback invoked with each finished TaskStats.
    * ``profile`` — enable :mod:`repro.obs` metrics for this run
      (restored afterwards; the registry is left populated for the
      caller).  Observational only — counts are unaffected.
    * ``transport`` — pooled-run wire: ``"pickle"``, ``"shm"``, or
      ``"auto"`` (default).  Counts are bitwise identical either way.
    * ``adaptive_chunks`` — steer chunk sizes toward
      ``options.target_chunk_seconds`` instead of fixed
      ``chunk_shots``; changes which shots are drawn, so off by
      default (see :class:`~repro.engine.options.ExecutionOptions`).
    * ``max_chunk_retries`` / ``chunk_timeout_seconds`` /
      ``retry_backoff`` / ``fault_plan`` — fault-tolerance policy for
      pooled runs (lease deadlines, bounded-backoff retry, quarantine,
      chaos injection); see
      :class:`~repro.engine.options.ExecutionOptions`.  A task with
      quarantined chunks gets quarantine rows instead of a task row,
      so resuming against the same store re-attempts it.
    """
    passed = explicit_kwargs(
        base_seed=base_seed,
        workers=workers,
        chunk_shots=chunk_shots,
        max_errors=max_errors,
        store=store,
        progress=progress,
        profile=profile,
        transport=transport,
        adaptive_chunks=adaptive_chunks,
        max_chunk_retries=max_chunk_retries,
        chunk_timeout_seconds=chunk_timeout_seconds,
        retry_backoff=retry_backoff,
        fault_plan=fault_plan,
    )
    if options is None:
        options = ExecutionOptions(**passed)
    elif passed:
        raise TypeError(
            f"pass execution settings via options= or as loose keyword "
            f"arguments, not both (options given alongside "
            f"{', '.join(sorted(passed))}; use options.replace(...))"
        )
    task_list = list(tasks)
    store = options.store
    if isinstance(store, (str, os.PathLike)):
        store = ResultStore(store)
    progress = options.progress
    completed = store.load() if store is not None else {}
    run_seed = (
        options.base_seed if options.base_seed is not None else fresh_base_seed()
    )

    # --profile turns metrics on for the run only; the prior flag state
    # is restored afterwards but the registry is deliberately left
    # populated so the caller can read/print/export what was measured.
    restore_flags = None
    if options.profile and not obs.is_metrics():
        restore_flags = obs.wire_config()
        obs.enable(tracing=obs.is_tracing(), metrics=True)

    results: list[TaskStats] = []
    try:
        with ChunkRunner(
            workers=options.workers,
            transport=options.transport,
            max_chunk_retries=options.max_chunk_retries,
            chunk_timeout_seconds=options.chunk_timeout_seconds,
            retry_backoff=options.retry_backoff,
            fault_plan=options.fault_plan,
        ) as runner:
            for task in task_list:
                task_id = task.strong_id()
                stored = completed.get(task_id)
                # A row only satisfies this run if it was collected
                # under the same base seed (legacy rows without one are
                # accepted) — changing --seed must produce fresh,
                # independent counts.  An unseeded run (base_seed=None)
                # asks for *a* sample, not a specific one, so any
                # completed row satisfies it.
                if stored is not None and (
                    options.base_seed is None
                    or stored.base_seed in (None, options.base_seed)
                ):
                    results.append(stored)
                    if progress is not None:
                        progress(stored)
                    continue
                # Pooled runs pre-compile the task's circuit on every
                # worker before its first chunk (a no-op serially and
                # for already-warmed triples).
                runner.warm(warm_spec(task, run_seed))
                stats = _collect_one(task, runner, run_seed, options, store)
                # A task with quarantined chunks is incomplete: its
                # quarantine rows are already in the store, but no task
                # row is written, so a resume re-attempts the whole
                # task (and thereby its poison chunks).
                if store is not None and stats.failed_chunks == 0:
                    store.append(stats)
                results.append(stats)
                if progress is not None:
                    progress(stats)
    finally:
        if restore_flags is not None:
            obs.configure(restore_flags)
    return results


def _collect_one(
    task: Task,
    runner: ChunkRunner,
    base_seed: int,
    options: ExecutionOptions,
    store: ResultStore | None = None,
) -> TaskStats:
    """Run one task's chunks through the runner with ordered early stop."""
    stats = TaskStats(
        task_id=task.strong_id(),
        decoder=task.decoder,
        sampler=task.sampler,
        metadata=dict(task.metadata),
        base_seed=base_seed,
    )
    max_errors = (
        task.max_errors if task.max_errors is not None else options.max_errors
    )
    sizer = None
    if options.adaptive_chunks:
        sizer = AdaptiveChunkSizer(
            initial=options.chunk_shots,
            target_seconds=options.target_chunk_seconds,
            min_shots=options.min_chunk_shots,
            max_shots=options.max_chunk_shots,
        )
        specs = plan_chunks_adaptive(task, base_seed, sizer)
    else:
        specs = plan_chunks(task, base_seed, options.chunk_shots)
    wall_start = time.perf_counter()
    with obs.span(
        "task", task=stats.task_id, decoder=task.decoder, sampler=task.sampler
    ) as task_sp:
        for result in runner.run(specs):
            if result.failed:
                # Quarantined: the chunk's shots never happened, so
                # they must not enter the counts.  Record the failure
                # durably and keep folding — one poison chunk degrades
                # the task to partial instead of aborting the sweep.
                stats.failed_chunks += 1
                if store is not None:
                    store.append_failure(
                        task_id=stats.task_id,
                        chunk_index=result.chunk_index,
                        attempts=result.attempt + 1,
                        error=result.error,
                        base_seed=base_seed,
                    )
                continue
            if sizer is not None:
                sizer.observe(result.shots, result.seconds)
            stats.shots += result.shots
            stats.errors += result.errors
            stats.chunks += 1
            stats.worker_seconds += result.seconds
            stats.sample_seconds += result.sample_seconds
            stats.decode_seconds += result.decode_seconds
            stats.queue_wait_seconds += result.queue_wait_seconds
            stats.hold_seconds += result.hold_seconds
            stats.transport_bytes += result.spec_bytes + result.result_bytes
            if max_errors is not None and stats.errors >= max_errors:
                break
        task_sp.set(shots=stats.shots, errors=stats.errors,
                    chunks=stats.chunks)
    stats.seconds = time.perf_counter() - wall_start
    return stats
