"""Orchestration: run tasks to statistical convergence, resumably.

The collection loop mirrors sinter's shape: plan deterministic chunks,
stream them through a :class:`~repro.engine.workers.ChunkRunner`
(serial or pooled), and fold the results in **chunk-index order** into a
:class:`TaskStats`.  Early stopping is a pure function of that ordered
fold — a task stops at the first chunk where cumulative errors reach
``max_errors`` — so serial and pooled runs aggregate exactly the same
prefix of chunks and report bitwise-identical counts.

Results land in a JSONL :class:`ResultStore` (one row per finished
task, keyed by the task's content-based ``strong_id``).  Restarting a
collection against the same store skips every task that already has a
row, which makes long sweeps cheap to resume after interruption.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Iterable

from repro.decoders.metrics import wilson_interval
from repro.engine.tasks import Task
from repro.engine.workers import ChunkRunner, plan_chunks


@dataclass
class TaskStats:
    """Aggregated counts for one task (the engine's unit of reporting)."""

    task_id: str
    decoder: str
    sampler: str
    metadata: dict[str, Any] = field(default_factory=dict)
    shots: int = 0
    errors: int = 0
    seconds: float = 0.0
    chunks: int = 0
    base_seed: int | None = None
    resumed: bool = False

    @property
    def error_rate(self) -> float:
        return self.errors / self.shots if self.shots else 0.0

    def wilson(self, z: float = 1.96) -> tuple[float, float]:
        return wilson_interval(self.errors, self.shots, z)

    def to_row(self) -> dict[str, Any]:
        low, high = self.wilson()
        row = asdict(self)
        row.pop("resumed")
        row.update(error_rate=self.error_rate, wilson_low=low, wilson_high=high)
        return row

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "TaskStats":
        return cls(
            task_id=row["task_id"],
            decoder=row.get("decoder", "matching"),
            sampler=row.get("sampler", "symbolic"),
            metadata=row.get("metadata", {}),
            shots=int(row["shots"]),
            errors=int(row["errors"]),
            seconds=float(row.get("seconds", 0.0)),
            chunks=int(row.get("chunks", 0)),
            base_seed=row.get("base_seed"),
            resumed=True,
        )


class ResultStore:
    """Append-only JSONL store of finished task rows.

    One line per finished task.  Appends are flushed immediately, so a
    killed run loses at most the task in flight; duplicate task ids keep
    the latest row on load.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)

    def load(self) -> dict[str, TaskStats]:
        """All stored rows keyed by ``task_id`` (empty if no file yet)."""
        rows: dict[str, TaskStats] = {}
        if not os.path.exists(self.path):
            return rows
        with open(self.path) as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    # A torn trailing line is what a killed run leaves
                    # behind; the row's task simply re-collects.
                    print(
                        f"warning: skipping corrupt row at "
                        f"{self.path}:{number}",
                        file=sys.stderr,
                    )
                    continue
                rows[row["task_id"]] = TaskStats.from_row(row)
        return rows

    def append(self, stats: TaskStats) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(stats.to_row()) + "\n")
            handle.flush()


def collect(
    tasks: Iterable[Task],
    *,
    base_seed: int = 0,
    workers: int = 1,
    chunk_shots: int = 2_000,
    store: ResultStore | str | os.PathLike | None = None,
    progress: Callable[[TaskStats], None] | None = None,
) -> list[TaskStats]:
    """Collect statistics for every task; returns one TaskStats per task.

    * ``workers`` — process-pool size (``1`` = in-process serial);
      aggregate counts are identical for every value, by construction.
    * ``chunk_shots`` — shots per chunk.  Part of the statistical
      protocol (it sets the early-stop granularity and the RNG chunking),
      so changing it changes which shots are drawn — keep it fixed
      across runs that share a store.
    * ``store`` — path or :class:`ResultStore`; tasks with an existing
      row are returned as ``resumed`` without sampling a single shot.
    * ``progress`` — callback invoked with each finished TaskStats.
    """
    task_list = list(tasks)
    if isinstance(store, (str, os.PathLike)):
        store = ResultStore(store)
    completed = store.load() if store is not None else {}

    results: list[TaskStats] = []
    with ChunkRunner(workers=workers) as runner:
        for task in task_list:
            task_id = task.strong_id()
            stored = completed.get(task_id)
            # A row only satisfies this run if it was collected under the
            # same base seed (legacy rows without one are accepted) —
            # changing --seed must produce fresh, independent counts.
            if stored is not None and stored.base_seed in (None, base_seed):
                results.append(stored)
                if progress is not None:
                    progress(stored)
                continue
            stats = _collect_one(task, runner, base_seed, chunk_shots)
            if store is not None:
                store.append(stats)
            results.append(stats)
            if progress is not None:
                progress(stats)
    return results


def _collect_one(
    task: Task, runner: ChunkRunner, base_seed: int, chunk_shots: int
) -> TaskStats:
    """Run one task's chunks through the runner with ordered early stop."""
    stats = TaskStats(
        task_id=task.strong_id(),
        decoder=task.decoder,
        sampler=task.sampler,
        metadata=dict(task.metadata),
        base_seed=base_seed,
    )
    specs = plan_chunks(task, base_seed, chunk_shots)
    wall_start = time.perf_counter()
    for result in runner.run(specs):
        stats.shots += result.shots
        stats.errors += result.errors
        stats.chunks += 1
        if task.max_errors is not None and stats.errors >= task.max_errors:
            break
    stats.seconds = time.perf_counter() - wall_start
    return stats
