"""Chunked execution of collection tasks, serially or in a process pool.

A task's shot budget is split into fixed-size :class:`ChunkSpec`s.  Each
chunk is self-contained and picklable — it carries the circuit's text
serialization, the decoder/sampler choice, and the ``(base_seed,
task_entropy, chunk_index)`` triple of the derived-seed scheme
(:mod:`repro.rng`) — so it can run on any worker process in any order
and still produce exactly the same :class:`ChunkResult`.

Workers keep a process-global :class:`~repro.engine.cache.SamplerCache`;
the first chunk of a circuit a worker sees pays Algorithm 1's
Initialization (plus DEM extraction and decoder construction), every
later chunk is pure Eq. 4 sampling + decoding.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.engine.cache import shared_cache
from repro.engine.tasks import Task
from repro.rng import chunk_generator


@dataclass(frozen=True)
class ChunkSpec:
    """One self-contained unit of sampling + decoding work."""

    task_id: str
    fingerprint: str
    circuit_text: str
    decoder: str
    sampler: str
    chunk_index: int
    shots: int
    base_seed: int
    task_entropy: int


@dataclass(frozen=True)
class ChunkResult:
    """Counts streamed back from a worker for one chunk."""

    task_id: str
    chunk_index: int
    shots: int
    errors: int
    seconds: float


def plan_chunks(
    task: Task, base_seed: int, chunk_shots: int
) -> list[ChunkSpec]:
    """Split ``task``'s budget into deterministic chunk specs.

    The split depends only on the task and ``chunk_shots``, never on
    scheduling, so chunk ``i`` is the same work in every run.
    """
    if chunk_shots < 1:
        raise ValueError("chunk_shots must be positive")
    task_id = task.strong_id()
    fingerprint = task.circuit_fingerprint()
    text = task.circuit.to_text()
    entropy = task.seed_entropy()
    specs = []
    remaining = task.max_shots
    index = 0
    while remaining > 0:
        shots = min(chunk_shots, remaining)
        specs.append(
            ChunkSpec(
                task_id=task_id,
                fingerprint=fingerprint,
                circuit_text=text,
                decoder=task.decoder,
                sampler=task.sampler,
                chunk_index=index,
                shots=shots,
                base_seed=base_seed,
                task_entropy=entropy,
            )
        )
        remaining -= shots
        index += 1
    return specs


def _build_sampler(spec: ChunkSpec, circuit):
    from repro.backends import get_backend

    return get_backend(spec.sampler).compile(circuit)


def _build_decoder(spec: ChunkSpec, circuit):
    from repro.decoders import compile_decoder
    from repro.dem import extract_dem

    cache = shared_cache()
    dem = cache.get_or_build(
        ("dem", spec.fingerprint), lambda: extract_dem(circuit)
    )
    # spec.decoder is already canonical (Task resolves aliases), so one
    # compiled decoder per (circuit, decoder) serves every alias.
    return compile_decoder(dem, spec.decoder)


def run_chunk(spec: ChunkSpec) -> ChunkResult:
    """Sample + decode one chunk (runs in a worker or in-process).

    Reproducible in isolation: the RNG is seeded purely from the spec's
    ``(base_seed, task_entropy, chunk_index)`` triple.
    """
    from repro.circuit.circuit import Circuit

    started = time.perf_counter()
    cache = shared_cache()
    circuit = cache.get_or_build(
        ("circuit", spec.fingerprint),
        lambda: Circuit.from_text(spec.circuit_text),
    )
    sampler = cache.get_or_build(
        ("sampler", spec.fingerprint, spec.sampler),
        lambda: _build_sampler(spec, circuit),
    )
    rng = chunk_generator(spec.base_seed, spec.task_entropy, spec.chunk_index)
    detectors, observables = sampler.sample_detectors(spec.shots, rng)
    if spec.decoder == "none":
        errors = int(observables.any(axis=1).sum())
    else:
        decoder = cache.get_or_build(
            ("decoder", spec.fingerprint, spec.decoder),
            lambda: _build_decoder(spec, circuit),
        )
        predictions = decoder.decode_batch(detectors)
        errors = int((predictions != observables).any(axis=1).sum())
    return ChunkResult(
        task_id=spec.task_id,
        chunk_index=spec.chunk_index,
        shots=spec.shots,
        errors=errors,
        seconds=time.perf_counter() - started,
    )


class ChunkRunner:
    """Executes chunk specs, in-process (``workers <= 1``) or on a
    ``multiprocessing`` pool.  Context-managed so the pool is always
    reclaimed::

        with ChunkRunner(workers=4) as runner:
            for result in runner.run(specs):
                ...
    """

    def __init__(self, workers: int = 1):
        self.workers = max(1, int(workers))
        self._pool = None

    def __enter__(self) -> "ChunkRunner":
        if self.workers > 1:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self._pool = context.Pool(processes=self.workers)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def run(self, specs: Iterable[ChunkSpec]) -> Iterator[ChunkResult]:
        """Yield results in chunk-submission order.

        Pooled execution submits in waves of ``2 * workers`` chunks and
        yields each wave's results in order, so downstream aggregation
        sees the same stream serial execution produces — and a consumer
        that stops early (max-errors reached) wastes at most one wave of
        speculative work instead of the task's whole remaining budget
        (``Pool.imap``'s feeder thread would eagerly submit everything).
        """
        if self._pool is None:
            for spec in specs:
                yield run_chunk(spec)
            return
        wave_size = 2 * self.workers
        wave: list[ChunkSpec] = []
        for spec in specs:
            wave.append(spec)
            if len(wave) == wave_size:
                yield from self._pool.map(run_chunk, wave, chunksize=1)
                wave = []
        if wave:
            yield from self._pool.map(run_chunk, wave, chunksize=1)
