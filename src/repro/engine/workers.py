"""Chunked execution of collection tasks, serially or in a process pool.

A task's shot budget is split into fixed-size :class:`ChunkSpec`s.  Each
chunk is self-contained and picklable — it carries the circuit's text
serialization, the decoder/sampler choice, and the ``(base_seed,
task_entropy, chunk_index)`` triple of the derived-seed scheme
(:mod:`repro.rng`) — so it can run on any worker process in any order
and still produce exactly the same :class:`ChunkResult`.

Workers keep a process-global :class:`~repro.engine.cache.SamplerCache`;
the first chunk of a circuit a worker sees pays Algorithm 1's
Initialization (plus DEM extraction and decoder construction), every
later chunk is pure Eq. 4 sampling + decoding.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.engine.cache import shared_cache
from repro.engine.tasks import Task
from repro.gf2 import bitops
from repro.rng import chunk_generator


@dataclass(frozen=True)
class ChunkSpec:
    """One self-contained unit of sampling + decoding work."""

    task_id: str
    fingerprint: str
    circuit_text: str
    decoder: str
    sampler: str
    chunk_index: int
    shots: int
    base_seed: int
    task_entropy: int


@dataclass(frozen=True)
class ChunkResult:
    """Counts streamed back from a worker for one chunk.

    ``seconds`` is the chunk's whole in-worker time;
    ``sample_seconds`` / ``decode_seconds`` split out the two hot
    stages (the remainder is setup + aggregation), so per-stage
    profiles (``repro collect --profile``) come free with every run.
    """

    task_id: str
    chunk_index: int
    shots: int
    errors: int
    seconds: float
    sample_seconds: float = 0.0
    decode_seconds: float = 0.0


def plan_chunks(
    task: Task, base_seed: int, chunk_shots: int
) -> list[ChunkSpec]:
    """Split ``task``'s budget into deterministic chunk specs.

    The split depends only on the task and ``chunk_shots``, never on
    scheduling, so chunk ``i`` is the same work in every run.
    """
    if chunk_shots < 1:
        raise ValueError("chunk_shots must be positive")
    task_id = task.strong_id()
    fingerprint = task.circuit_fingerprint()
    text = task.circuit.to_text()
    entropy = task.seed_entropy()
    specs = []
    remaining = task.max_shots
    index = 0
    while remaining > 0:
        shots = min(chunk_shots, remaining)
        specs.append(
            ChunkSpec(
                task_id=task_id,
                fingerprint=fingerprint,
                circuit_text=text,
                decoder=task.decoder,
                sampler=task.sampler,
                chunk_index=index,
                shots=shots,
                base_seed=base_seed,
                task_entropy=entropy,
            )
        )
        remaining -= shots
        index += 1
    return specs


def _build_sampler(spec: ChunkSpec, circuit):
    from repro.backends import get_backend

    return get_backend(spec.sampler).compile(circuit)


def _build_decoder(spec: ChunkSpec, circuit):
    from repro.decoders import compile_decoder
    from repro.dem import extract_dem

    cache = shared_cache()
    dem = cache.get_or_build(
        ("dem", spec.fingerprint), lambda: extract_dem(circuit)
    )
    # spec.decoder is already canonical (Task resolves aliases), so one
    # compiled decoder per (circuit, decoder) serves every alias.
    return compile_decoder(dem, spec.decoder)


def _decoder_is_packed(name: str) -> bool:
    from repro.decoders import get_decoder

    return get_decoder(name).info.packed


def _sample_packed(sampler, shots: int, rng):
    from repro.backends.protocol import packed_detector_samples

    return packed_detector_samples(sampler, shots, rng)


def run_chunk(spec: ChunkSpec) -> ChunkResult:
    """Sample + decode one chunk (runs in a worker or in-process).

    Reproducible in isolation: the RNG is seeded purely from the spec's
    ``(base_seed, task_entropy, chunk_index)`` triple.

    The hot path stays in the packed domain end to end whenever the
    decoder speaks it (or there is no decoder): packed syndromes from
    ``sample_detectors_packed`` flow into ``decode_batch_packed``, and
    the error count is a row-any over ``predictions XOR observables`` —
    no unpacked uint8 matrix is ever materialized.  Counts are bitwise
    identical to the unpacked path because the packed and unpacked views
    draw the same RNG stream and the packed decoder predicts
    identically; unpacked-only decoders take the original route.
    """
    from repro.circuit.circuit import Circuit

    started = time.perf_counter()
    cache = shared_cache()
    circuit = cache.get_or_build(
        ("circuit", spec.fingerprint),
        lambda: Circuit.from_text(spec.circuit_text),
    )
    sampler = cache.get_or_build(
        ("sampler", spec.fingerprint, spec.sampler),
        lambda: _build_sampler(spec, circuit),
    )
    rng = chunk_generator(spec.base_seed, spec.task_entropy, spec.chunk_index)
    decode_seconds = 0.0
    if spec.decoder == "none":
        sample_started = time.perf_counter()
        _, observables = _sample_packed(sampler, spec.shots, rng)
        sample_seconds = time.perf_counter() - sample_started
        errors = int(bitops.nonzero_rows_packed(observables).size)
    elif _decoder_is_packed(spec.decoder):
        sample_started = time.perf_counter()
        detectors, observables = _sample_packed(sampler, spec.shots, rng)
        sample_seconds = time.perf_counter() - sample_started
        decoder = cache.get_or_build(
            ("decoder", spec.fingerprint, spec.decoder),
            lambda: _build_decoder(spec, circuit),
        )
        decode_started = time.perf_counter()
        predictions = decoder.decode_batch_packed(detectors)
        errors = int(
            np.count_nonzero(bitops.xor_rows_any(predictions, observables))
        )
        decode_seconds = time.perf_counter() - decode_started
    else:
        sample_started = time.perf_counter()
        detectors, observables = sampler.sample_detectors(spec.shots, rng)
        sample_seconds = time.perf_counter() - sample_started
        decoder = cache.get_or_build(
            ("decoder", spec.fingerprint, spec.decoder),
            lambda: _build_decoder(spec, circuit),
        )
        decode_started = time.perf_counter()
        predictions = decoder.decode_batch(detectors)
        errors = int((predictions != observables).any(axis=1).sum())
        decode_seconds = time.perf_counter() - decode_started
    return ChunkResult(
        task_id=spec.task_id,
        chunk_index=spec.chunk_index,
        shots=spec.shots,
        errors=errors,
        seconds=time.perf_counter() - started,
        sample_seconds=sample_seconds,
        decode_seconds=decode_seconds,
    )


def _indexed_run_chunk(
    indexed_spec: tuple[int, ChunkSpec],
) -> tuple[int, ChunkResult]:
    """Pool target: tag each result with its submission index so the
    order-restoring buffer can reassemble the deterministic stream."""
    index, spec = indexed_spec
    return index, run_chunk(spec)


class ChunkRunner:
    """Executes chunk specs, in-process (``workers <= 1``) or on a
    ``multiprocessing`` pool.  Context-managed so the pool is always
    reclaimed::

        with ChunkRunner(workers=4) as runner:
            for result in runner.run(specs):
                ...
    """

    def __init__(self, workers: int = 1):
        self.workers = max(1, int(workers))
        self._pool = None
        self._feeder_stop: threading.Event | None = None
        self._feeder_slots: threading.Semaphore | None = None

    def __enter__(self) -> "ChunkRunner":
        if self.workers > 1:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self._pool = context.Pool(processes=self.workers)
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self._pool is not None:
            self._release_feeder()
            if exc_type is None:
                # Clean shutdown: let in-flight chunks finish so forked
                # children flush coverage data and never die holding a
                # half-written sampler-cache entry.
                self._pool.close()
            else:
                self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _release_feeder(self) -> None:
        """Unblock the active run's feeder so close/join cannot hang on
        its in-flight-window semaphore."""
        if self._feeder_stop is not None:
            self._feeder_stop.set()
            if self._feeder_slots is not None:
                self._feeder_slots.release()
            self._feeder_stop = None
            self._feeder_slots = None

    def run(self, specs: Iterable[ChunkSpec]) -> Iterator[ChunkResult]:
        """Yield results in chunk-submission order.

        Pooled execution streams chunks through ``imap_unordered`` with
        a bounded in-flight window of ``2 * workers`` and an
        order-restoring reorder buffer, so downstream aggregation sees
        the same deterministic stream serial execution produces while a
        slow chunk never barriers its peers — the old wave scheduler
        made up to ``2 * workers - 1`` finished workers idle at every
        wave edge.  The window doubles as the speculative-overrun bound
        the max-errors early stop relies on: a consumer that stops
        early wastes at most one window of work (``Pool.imap``'s feeder
        thread would eagerly submit the task's whole remaining budget).

        One pooled run at a time: the pool drains one task stream fully
        before the next, so close (or exhaust) a run's iterator before
        starting another — abandoning it to the garbage collector also
        works, which is what a ``for``-loop ``break`` does.
        """
        if self._pool is None:
            for spec in specs:
                yield run_chunk(spec)
            return
        window = 2 * self.workers
        # The pool's task-handler thread pulls from this generator; the
        # semaphore blocks it once `window` chunks are in flight, and
        # each consumed result releases one slot.  The stop event makes
        # an abandoned run (early stop) drain instead of deadlocking
        # the handler thread against a full window.
        slots = threading.Semaphore(window)
        stop = threading.Event()
        self._feeder_stop = stop
        self._feeder_slots = slots

        def feed() -> Iterator[tuple[int, ChunkSpec]]:
            for indexed in enumerate(specs):
                slots.acquire()
                if stop.is_set():
                    return
                yield indexed

        reorder: dict[int, ChunkResult] = {}
        next_index = 0
        try:
            for index, result in self._pool.imap_unordered(
                _indexed_run_chunk, feed()
            ):
                reorder[index] = result
                # A slot is freed only when its result is *yielded*, not
                # when it lands in the reorder buffer: results parked
                # behind a slow head-of-line chunk keep holding slots,
                # so (running + buffered) never exceeds the window and
                # the early-stop overrun bound is strict, not
                # best-effort.  No deadlock: the feeder submits in
                # order, so the chunk `next_index` waits for is always
                # already in flight or buffered.
                while next_index in reorder:
                    yield reorder.pop(next_index)
                    next_index += 1
                    slots.release()
        finally:
            # Close over this run's own primitives: an abandoned older
            # generator being finalized must never trip a newer run's
            # stop event or semaphore.
            stop.set()
            slots.release()
            if self._feeder_stop is stop:
                self._feeder_stop = None
                self._feeder_slots = None
