"""Chunked execution of collection tasks, serially or on supervised workers.

A task's shot budget is split into fixed-size :class:`ChunkSpec`s.  Each
chunk is self-contained and picklable — it carries the circuit's text
serialization, the decoder/sampler choice, and the ``(base_seed,
task_entropy, chunk_index)`` triple of the derived-seed scheme
(:mod:`repro.rng`) — so it can run on any worker process in any order
and still produce exactly the same :class:`ChunkResult`.  That property
is also what makes the executor *fault tolerant*: a chunk whose worker
dies is simply leased to another worker, and the replay is bitwise
identical, so crashes can delay results but never skew counts.

Pooled execution runs on a :class:`~repro.engine.supervise.SupervisedPool`
of directly-owned worker processes rather than a fire-and-forget
``multiprocessing.Pool``: every in-flight chunk is a *lease* tied to a
specific worker with an optional deadline, worker deaths are detected
via process sentinels (and stalls via heartbeats), failed leases are
requeued with bounded exponential backoff, and a chunk that keeps
failing is quarantined as a structured failure result instead of
aborting the sweep.  :mod:`repro.engine.faults` injects deterministic
crashes into this machinery under test.

Workers keep a process-global :class:`~repro.engine.cache.SamplerCache`;
the first chunk of a circuit a worker sees pays Algorithm 1's
Initialization (plus DEM extraction and decoder construction), every
later chunk is pure Eq. 4 sampling + decoding.  A pooled runner can
also *warm* that cache up front — :meth:`ChunkRunner.warm` sends one
"compile this fingerprint" task to each worker over its own pipe (and
re-warms replacement workers after a crash), so ``backend.compile``
runs once per worker per circuit before the first real chunk instead
of serializing into it.

Transport between parent and workers is selectable
(``transport="pickle" | "shm" | "auto"``): the classic pickle wire
ships each spec whole, while the shared-memory wire
(:mod:`repro.engine.shm`) writes the circuit text into a slab arena
once per fingerprint and pickles only a small header per chunk, with
workers parking their telemetry payloads in preallocated result slots —
per-chunk transport collapses to headers.  Counts are bitwise identical
under every transport: the worker executes the same :func:`run_chunk`
on the same derived-seed spec either way.  Mid-run arena failures
(attach errors, slot corruption) degrade the wire to pickle instead of
aborting — counts never travel through shared memory, only telemetry
does.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

import numpy as np

import repro.engine.shm as shm
import repro.obs as obs
from repro.engine import faults
from repro.engine.cache import shared_cache
from repro.engine.supervise import SupervisedPool
from repro.engine.tasks import Task
from repro.gf2 import bitops
from repro.rng import chunk_generator

#: Transport choices ``ChunkRunner`` accepts; ``"auto"`` resolves to
#: shared memory when the host supports it (overridable via the
#: ``REPRO_TRANSPORT`` environment variable), else pickle.
TRANSPORTS = ("auto", "pickle", "shm")

#: Hard cap on the exponential retry backoff, whatever the attempt count.
_MAX_BACKOFF_SECONDS = 30.0

#: How long a warm broadcast waits for every worker's ack; generous
#: because it covers each worker's full compile, but bounded so a
#: wedged worker cannot stall collection forever (an unwarmed worker
#: just pays its compile on its first chunk).
_WARM_TIMEOUT_SECONDS = 60.0

#: Base supervisor poll tick: the longest the scheduler sleeps when no
#: worker message, lease deadline or retry timer is nearer.
_POLL_SECONDS = 0.25


@dataclass(frozen=True)
class ChunkSpec:
    """One self-contained unit of sampling + decoding work.

    ``attempt`` counts prior failed executions of this chunk (0 on the
    first try).  It exists for observability and fault-plan matching
    only — the RNG seed derives from ``(base_seed, task_entropy,
    chunk_index)`` alone, so every attempt replays identical shots.
    """

    task_id: str
    fingerprint: str
    circuit_text: str
    decoder: str
    sampler: str
    chunk_index: int
    shots: int
    base_seed: int
    task_entropy: int
    attempt: int = 0


@dataclass(frozen=True)
class ShmChunkSpec:
    """Header-only chunk spec: the circuit text lives in the arena.

    The shared-memory wire format.  Identical to :class:`ChunkSpec`
    except the ~KBs circuit text is replaced by a
    :class:`~repro.engine.shm.BlobRef` into the parent's slab arena
    (written once per fingerprint), and ``result_slot`` names the
    preallocated slot the worker may park its telemetry payload in
    (guarded by ``run_token`` against stale writes from abandoned
    runs).  Workers rebuild a plain :class:`ChunkSpec` from it, so
    execution — and therefore every count — is transport-independent.
    """

    task_id: str
    fingerprint: str
    circuit_ref: shm.BlobRef
    decoder: str
    sampler: str
    chunk_index: int
    shots: int
    base_seed: int
    task_entropy: int
    attempt: int = 0
    run_token: int = 0
    result_slot: shm.SlotRef | None = None


@dataclass(frozen=True)
class ChunkResult:
    """Counts streamed back from a worker for one chunk.

    ``seconds`` is the chunk's whole in-worker time;
    ``sample_seconds`` / ``decode_seconds`` split out the two hot
    stages (the remainder is setup + aggregation), so per-stage
    profiles (``repro collect --profile``) come free with every run.

    ``started_at``/``finished_at`` are the worker's ``perf_counter``
    stamps (comparable with the parent's on one machine) and ``pid``
    the process that ran the chunk; together with the scheduler's own
    stamps they become the chunk's :class:`repro.obs.ChunkTimeline`.
    ``queue_wait_seconds`` (submit -> worker start) and
    ``hold_seconds`` (result received -> yielded past the reorder
    buffer) are filled in by :meth:`ChunkRunner.run` on the way out;
    ``spec_bytes``/``result_bytes`` record the pickled transport
    payload both ways when :mod:`repro.obs` metrics are on (0 for
    in-process runs — there is no transport to account).

    ``attempt`` is the execution attempt that produced the result
    (counts are attempt-independent by construction).  ``failed`` marks
    a *quarantined* chunk — one that exhausted its retry budget; its
    ``shots``/``errors`` are then the planned shots and 0, its
    ``error`` the last failure, and downstream aggregation must skip
    it (the collector records it as a structured failure row instead
    of counting it).

    ``spans``/``metrics`` piggyback the worker's buffered
    :mod:`repro.obs` telemetry back to the parent (wire tuples; the
    runner absorbs them and strips both before yielding).
    """

    task_id: str
    chunk_index: int
    shots: int
    errors: int
    seconds: float
    sample_seconds: float = 0.0
    decode_seconds: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    pid: int = 0
    queue_wait_seconds: float = 0.0
    hold_seconds: float = 0.0
    spec_bytes: int = 0
    result_bytes: int = 0
    attempt: int = 0
    failed: bool = False
    error: str = ""
    spans: tuple = ()
    metrics: tuple = ()
    # True when the worker parked its telemetry payload in a
    # shared-memory result slot instead of the pickle wire; the runner
    # reads the slot and clears the flag before finalizing.
    slot_payload: bool = False


def plan_chunks(
    task: Task, base_seed: int, chunk_shots: int
) -> list[ChunkSpec]:
    """Split ``task``'s budget into deterministic chunk specs.

    The split depends only on the task and ``chunk_shots``, never on
    scheduling, so chunk ``i`` is the same work in every run.
    """
    if chunk_shots < 1:
        raise ValueError("chunk_shots must be positive")
    task_id = task.strong_id()
    fingerprint = task.circuit_fingerprint()
    text = task.circuit.to_text()
    entropy = task.seed_entropy()
    specs = []
    remaining = task.max_shots
    index = 0
    while remaining > 0:
        shots = min(chunk_shots, remaining)
        specs.append(
            ChunkSpec(
                task_id=task_id,
                fingerprint=fingerprint,
                circuit_text=text,
                decoder=task.decoder,
                sampler=task.sampler,
                chunk_index=index,
                shots=shots,
                base_seed=base_seed,
                task_entropy=entropy,
            )
        )
        remaining -= shots
        index += 1
    return specs


def plan_chunks_adaptive(
    task: Task, base_seed: int, sizer
) -> Iterator[ChunkSpec]:
    """Lazily plan ``task``'s chunks with sizes the ``sizer`` steers.

    Each spec's shot count is whatever
    :meth:`~repro.engine.adaptive.AdaptiveChunkSizer.next_shots`
    reports at plan time (capped by the remaining budget), so the split
    reacts to the latencies the consumer feeds back via ``observe``.
    Unlike :func:`plan_chunks` the split is machine-dependent — which
    shots get drawn depends on it — so this path is opt-in
    (``ExecutionOptions.adaptive_chunks``).
    """
    task_id = task.strong_id()
    fingerprint = task.circuit_fingerprint()
    text = task.circuit.to_text()
    entropy = task.seed_entropy()
    remaining = task.max_shots
    index = 0
    while remaining > 0:
        shots = min(sizer.next_shots(), remaining)
        yield ChunkSpec(
            task_id=task_id,
            fingerprint=fingerprint,
            circuit_text=text,
            decoder=task.decoder,
            sampler=task.sampler,
            chunk_index=index,
            shots=shots,
            base_seed=base_seed,
            task_entropy=entropy,
        )
        remaining -= shots
        index += 1


def _build_sampler(spec: ChunkSpec, circuit):
    from repro.backends import get_backend

    return get_backend(spec.sampler).compile(circuit)


def _build_decoder(spec: ChunkSpec, circuit):
    from repro.decoders import compile_decoder
    from repro.dem import extract_dem

    cache = shared_cache()
    dem = cache.get_or_build(
        ("dem", spec.fingerprint), lambda: extract_dem(circuit)
    )
    # spec.decoder is already canonical (Task resolves aliases), so one
    # compiled decoder per (circuit, decoder) serves every alias.
    return compile_decoder(dem, spec.decoder)


def _decoder_is_packed(name: str) -> bool:
    from repro.decoders import get_decoder

    return get_decoder(name).info.packed


def _sample_packed(sampler, shots: int, rng):
    from repro.backends.protocol import packed_detector_samples

    return packed_detector_samples(sampler, shots, rng)


def run_chunk(spec: ChunkSpec) -> ChunkResult:
    """Sample + decode one chunk (runs in a worker or in-process).

    Reproducible in isolation: the RNG is seeded purely from the spec's
    ``(base_seed, task_entropy, chunk_index)`` triple — never from the
    attempt number, so a retried chunk replays the same shots.

    The hot path stays in the packed domain end to end whenever the
    decoder speaks it (or there is no decoder): packed syndromes from
    ``sample_detectors_packed`` flow into ``decode_batch_packed``, and
    the error count is a row-any over ``predictions XOR observables`` —
    no unpacked uint8 matrix is ever materialized.  Counts are bitwise
    identical to the unpacked path because the packed and unpacked views
    draw the same RNG stream and the packed decoder predicts
    identically; unpacked-only decoders take the original route.
    """
    from repro.circuit.circuit import Circuit

    started = time.perf_counter()
    pid = os.getpid()
    cache = shared_cache()
    with obs.span(
        "chunk",
        task=spec.task_id,
        chunk=spec.chunk_index,
        shots=spec.shots,
        sampler=spec.sampler,
        decoder=spec.decoder,
    ) as chunk_sp:
        if obs.is_tracing():
            sampler_key = ("sampler", spec.fingerprint, spec.sampler)
            chunk_sp.set(
                sampler_cache="hit" if sampler_key in cache else "miss"
            )
        circuit = cache.get_or_build(
            ("circuit", spec.fingerprint),
            lambda: Circuit.from_text(spec.circuit_text),
        )
        sampler = cache.get_or_build(
            ("sampler", spec.fingerprint, spec.sampler),
            lambda: _build_sampler(spec, circuit),
        )
        rng = chunk_generator(
            spec.base_seed, spec.task_entropy, spec.chunk_index
        )
        decode_seconds = 0.0
        if spec.decoder == "none":
            with obs.span("sample", chunk=spec.chunk_index) as sp:
                sample_started = time.perf_counter()
                _, observables = _sample_packed(sampler, spec.shots, rng)
                sample_seconds = time.perf_counter() - sample_started
                sp.set(observable_bytes=int(observables.nbytes))
            errors = int(bitops.nonzero_rows_packed(observables).size)
        elif _decoder_is_packed(spec.decoder):
            with obs.span("sample", chunk=spec.chunk_index) as sp:
                sample_started = time.perf_counter()
                detectors, observables = _sample_packed(
                    sampler, spec.shots, rng
                )
                sample_seconds = time.perf_counter() - sample_started
                sp.set(
                    detector_bytes=int(detectors.nbytes),
                    observable_bytes=int(observables.nbytes),
                )
            if obs.is_tracing():
                decoder_key = ("decoder", spec.fingerprint, spec.decoder)
                chunk_sp.set(
                    decoder_cache="hit" if decoder_key in cache else "miss"
                )
            decoder = cache.get_or_build(
                ("decoder", spec.fingerprint, spec.decoder),
                lambda: _build_decoder(spec, circuit),
            )
            faults.on_decode(spec.chunk_index, spec.attempt, _IN_WORKER)
            with obs.span("decode", chunk=spec.chunk_index) as sp:
                decode_started = time.perf_counter()
                predictions = decoder.decode_batch_packed(detectors)
                errors = int(
                    np.count_nonzero(
                        bitops.xor_rows_any(predictions, observables)
                    )
                )
                decode_seconds = time.perf_counter() - decode_started
                sp.set(prediction_bytes=int(predictions.nbytes), packed=True)
        else:
            with obs.span("sample", chunk=spec.chunk_index) as sp:
                sample_started = time.perf_counter()
                detectors, observables = sampler.sample_detectors(
                    spec.shots, rng
                )
                sample_seconds = time.perf_counter() - sample_started
                sp.set(
                    detector_bytes=int(detectors.nbytes),
                    observable_bytes=int(observables.nbytes),
                )
            if obs.is_tracing():
                decoder_key = ("decoder", spec.fingerprint, spec.decoder)
                chunk_sp.set(
                    decoder_cache="hit" if decoder_key in cache else "miss"
                )
            decoder = cache.get_or_build(
                ("decoder", spec.fingerprint, spec.decoder),
                lambda: _build_decoder(spec, circuit),
            )
            faults.on_decode(spec.chunk_index, spec.attempt, _IN_WORKER)
            with obs.span("decode", chunk=spec.chunk_index) as sp:
                decode_started = time.perf_counter()
                predictions = decoder.decode_batch(detectors)
                errors = int((predictions != observables).any(axis=1).sum())
                decode_seconds = time.perf_counter() - decode_started
                sp.set(prediction_bytes=int(predictions.nbytes), packed=False)
        chunk_sp.set(errors=errors)
    finished = time.perf_counter()
    seconds = finished - started
    if obs.is_metrics():
        worker = str(pid)
        obs.counter("repro_chunks_total", pid=worker).inc()
        obs.counter("repro_shots_total", pid=worker).inc(spec.shots)
        obs.counter("repro_errors_total", pid=worker).inc(errors)
        obs.counter("repro_worker_seconds_total", pid=worker).inc(seconds)
        obs.counter(
            "repro_stage_seconds_total", stage="sample", pid=worker
        ).inc(sample_seconds)
        obs.counter(
            "repro_stage_seconds_total", stage="decode", pid=worker
        ).inc(decode_seconds)
        obs.counter(
            "repro_stage_seconds_total", stage="other", pid=worker
        ).inc(max(seconds - sample_seconds - decode_seconds, 0.0))
        obs.histogram("repro_chunk_seconds", pid=worker).observe(seconds)
    return ChunkResult(
        task_id=spec.task_id,
        chunk_index=spec.chunk_index,
        shots=spec.shots,
        errors=errors,
        seconds=seconds,
        sample_seconds=sample_seconds,
        decode_seconds=decode_seconds,
        started_at=started,
        finished_at=finished,
        pid=pid,
        attempt=spec.attempt,
        # Piggyback buffered telemetry only when running in a pool
        # worker: in-process runs already share the parent's buffers,
        # and shipping+merging there would double-count every metric.
        spans=(
            obs.drain_wire_spans()
            if _IN_WORKER and obs.is_tracing()
            else ()
        ),
        metrics=(
            obs.flush_wire() if _IN_WORKER and obs.is_metrics() else ()
        ),
    )


_IN_WORKER = False


def enter_worker(config) -> None:
    """Worker initializer: adopt the parent's telemetry flags and mark
    this process as a worker so ``run_chunk`` ships its telemetry back
    on the wire (spawned children start with everything off; forked
    ones inherit flags but still need the worker mark).

    The inherited telemetry buffers are dropped first: a forked child
    starts with the parent's registry *including its unshipped deltas*,
    and its first ``flush_wire`` would re-ship them — every parent-side
    counter would double-count once per worker.  A worker's wire must
    carry only what the worker itself measured.

    Inherited shared-memory attachments are dropped for the same
    reason: a forked child starts with the parent's ``_ATTACHED`` map,
    whose segments may belong to a previous run's arena and unlink
    under the child at any time.  Each worker re-attaches on first
    read, against the arena of *its* run.
    """
    global _IN_WORKER
    _IN_WORKER = True
    obs.reset()
    obs.configure(config)
    shm.detach_all()


class ShmTransportError(RuntimeError):
    """A worker could not service a shared-memory payload (attach
    failure, unlinked segment, torn blob).  The supervisor reacts by
    degrading the run's wire to pickle and retrying the chunk — counts
    never depend on the arena, only telemetry transport does."""


def _spec_from_header(header: ShmChunkSpec) -> ChunkSpec:
    """Rebuild a plain :class:`ChunkSpec` from a shared-memory header.

    The circuit text is read from the arena only when this worker's
    cache has not yet built the circuit — a warm worker never touches
    the slab again.
    """
    text = ""
    if ("circuit", header.fingerprint) not in shared_cache():
        text = shm.read_blob(header.circuit_ref).decode()
    return ChunkSpec(
        task_id=header.task_id,
        fingerprint=header.fingerprint,
        circuit_text=text,
        decoder=header.decoder,
        sampler=header.sampler,
        chunk_index=header.chunk_index,
        shots=header.shots,
        base_seed=header.base_seed,
        task_entropy=header.task_entropy,
        attempt=header.attempt,
    )


def _warm_cache(spec: ChunkSpec) -> None:
    """Build this worker's cached artifacts for one (circuit, sampler,
    decoder) triple — the exact keys ``run_chunk`` will hit."""
    from repro.circuit.circuit import Circuit

    cache = shared_cache()
    circuit = cache.get_or_build(
        ("circuit", spec.fingerprint),
        lambda: Circuit.from_text(spec.circuit_text),
    )
    cache.get_or_build(
        ("sampler", spec.fingerprint, spec.sampler),
        lambda: _build_sampler(spec, circuit),
    )
    if spec.decoder != "none":
        cache.get_or_build(
            ("decoder", spec.fingerprint, spec.decoder),
            lambda: _build_decoder(spec, circuit),
        )


def warm_in_worker(payload) -> tuple:
    """Warm-task target, called from the supervised worker loop.

    Compiles the payload's artifacts into this worker's process cache
    and returns ``(pid, spans, metrics)`` so the parent can absorb the
    compile telemetry immediately.  No barrier is needed: each worker
    receives its warm task over its own pipe, so distribution is by
    construction — ``workers`` warm tasks land on ``workers`` distinct
    processes.
    """
    if isinstance(payload, ShmChunkSpec):
        payload = _spec_from_header(payload)
    with obs.span(
        "warm",
        fingerprint=payload.fingerprint,
        sampler=payload.sampler,
        decoder=payload.decoder,
    ):
        _warm_cache(payload)
    return (
        os.getpid(),
        obs.drain_wire_spans() if _IN_WORKER and obs.is_tracing() else (),
        obs.flush_wire() if _IN_WORKER and obs.is_metrics() else (),
    )


def warm_spec(task: Task, base_seed: int) -> ChunkSpec:
    """A zero-shot template spec for :meth:`ChunkRunner.warm`."""
    return ChunkSpec(
        task_id=task.strong_id(),
        fingerprint=task.circuit_fingerprint(),
        circuit_text=task.circuit.to_text(),
        decoder=task.decoder,
        sampler=task.sampler,
        chunk_index=0,
        shots=0,
        base_seed=base_seed,
        task_entropy=task.seed_entropy(),
    )


def execute_chunk(payload: "ChunkSpec | ShmChunkSpec") -> ChunkResult:
    """Worker-side execution of one leased chunk.

    Rebuilds shared-memory headers into plain specs (raising
    :class:`ShmTransportError` when the arena is unreachable so the
    parent can degrade the wire), fires the chunk-start fault hooks,
    runs the chunk, and parks the telemetry payload — the bulk of a
    profiled result — in the header's result slot when it fits,
    collapsing the pickled reply to its numeric fields.
    """
    slot_ref = None
    token = 0
    if isinstance(payload, ShmChunkSpec):
        slot_ref = payload.result_slot
        token = payload.run_token
        try:
            spec = _spec_from_header(payload)
        except Exception as exc:
            raise ShmTransportError(
                f"cannot rebuild chunk {payload.chunk_index} from its "
                f"shared-memory header: {exc}"
            ) from exc
    else:
        spec = payload
    faults.on_chunk_start(spec.chunk_index, spec.attempt, _IN_WORKER)
    result = run_chunk(spec)
    if slot_ref is not None and (result.spans or result.metrics):
        data = pickle.dumps((result.spans, result.metrics))
        if faults.corrupt_slot(spec.chunk_index, spec.attempt, _IN_WORKER):
            data = b"\x00repro-fault: corrupted slot payload\x00" + data[:8]
        if shm.write_slot(slot_ref, token, data):
            result = replace(
                result, spans=(), metrics=(), slot_payload=True
            )
    return result


@dataclass
class _Lease:
    """Parent-side record of one dispatched chunk attempt."""

    slot: int  # worker slot holding the lease
    attempt: int
    submitted: float  # perf_counter stamp, for the chunk timeline
    deadline: float | None  # monotonic expiry, None = no deadline
    shm_slot: int  # arena result slot, -1 when on the pickle wire
    transport: str  # wire this attempt actually used


@dataclass
class _RunState:
    """Mutable bookkeeping of one supervised run (one `run()` call)."""

    token: int
    specs: dict[int, ChunkSpec] = field(default_factory=dict)
    attempts: dict[int, int] = field(default_factory=dict)
    pending: deque = field(default_factory=deque)
    delayed: list = field(default_factory=list)  # (ready_monotonic, index)
    leases: dict[int, _Lease] = field(default_factory=dict)
    reorder: dict = field(default_factory=dict)
    free_shm_slots: deque = field(default_factory=deque)
    submit_times: dict[int, float] = field(default_factory=dict)
    spec_sizes: dict[int, int] = field(default_factory=dict)
    next_submit: int = 0
    next_yield: int = 0
    exhausted: bool = False

    def live(self) -> int:
        """Chunks admitted but not yet yielded — the window occupancy."""
        return (
            len(self.pending)
            + len(self.delayed)
            + len(self.leases)
            + len(self.reorder)
        )


class ChunkRunner:
    """Executes chunk specs, in-process (``workers <= 1``) or on a
    supervised worker pool.  Context-managed so the workers — and,
    under shared-memory transport, every ``/dev/shm`` segment — are
    always reclaimed::

        with ChunkRunner(workers=4) as runner:
            for result in runner.run(specs):
                ...

    ``transport`` picks the parent-worker wire: ``"pickle"`` (ship the
    whole spec), ``"shm"`` (slab-arena blobs + header-only pickles, see
    :mod:`repro.engine.shm`; raises at ``__enter__`` when the host
    cannot create segments), or ``"auto"`` (shm when available, else
    pickle; the ``REPRO_TRANSPORT`` environment variable overrides the
    preference).  Counts are bitwise identical under every transport,
    and a mid-run arena failure degrades the wire to pickle instead of
    aborting.

    Fault tolerance: each dispatched chunk is a *lease* on a specific
    worker.  A worker death (sentinel), a stalled heartbeat (opt-in via
    ``heartbeat_timeout_seconds``) or an expired lease
    (``chunk_timeout_seconds``) requeues the worker's leased chunks
    with exponential backoff (``retry_backoff * 2**attempt``, capped)
    and replenishes the pool; a chunk failing more than
    ``max_chunk_retries`` times is *quarantined* — yielded as a
    ``failed`` :class:`ChunkResult` instead of aborting the sweep.
    Replays are bitwise identical by the derived-seed scheme, so none
    of this can change counts.
    """

    def __init__(
        self,
        workers: int = 1,
        transport: str = "auto",
        slot_bytes: int = 1 << 16,
        *,
        max_chunk_retries: int = 2,
        chunk_timeout_seconds: float | None = None,
        retry_backoff: float = 0.1,
        heartbeat_interval_seconds: float = 0.5,
        heartbeat_timeout_seconds: float | None = None,
        fault_plan: "faults.FaultPlan | str | None" = None,
    ):
        self.workers = max(1, int(workers))
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        if max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be >= 0")
        if chunk_timeout_seconds is not None and chunk_timeout_seconds <= 0:
            raise ValueError("chunk_timeout_seconds must be positive")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        self.transport = transport
        self.max_chunk_retries = int(max_chunk_retries)
        self.chunk_timeout_seconds = chunk_timeout_seconds
        self.retry_backoff = float(retry_backoff)
        self.heartbeat_interval_seconds = heartbeat_interval_seconds
        self.heartbeat_timeout_seconds = heartbeat_timeout_seconds
        self.fault_plan = fault_plan
        self._slot_bytes = slot_bytes
        self._mode = "inproc"
        self._pool: SupervisedPool | None = None
        self._arena: shm.SlabArena | None = None
        # key -> template spec, kept so replacement workers spawned
        # after a crash can be re-warmed with the same payloads.
        self._warmed: dict[tuple[str, str, str], ChunkSpec] = {}
        self._run_token = 0

    def _resolve_transport(self) -> str:
        """The wire a pooled run will use, honoring explicit choices
        strictly and degrading ``auto`` (or its env override) to pickle
        when shared memory is unusable."""
        requested = self.transport
        if requested == "auto":
            env = os.environ.get("REPRO_TRANSPORT", "").strip().lower()
            if env in ("pickle", "shm"):
                requested = env
        if requested == "shm" and not shm.shm_available():
            if self.transport == "shm":
                raise RuntimeError(
                    "transport='shm' requested but shared memory is "
                    "unavailable on this host (pass 'auto' or 'pickle')"
                )
            return "pickle"
        if requested == "auto":
            return "shm" if shm.shm_available() else "pickle"
        return requested

    @property
    def active_transport(self) -> str:
        """The resolved wire: ``inproc`` (serial), ``pickle`` or
        ``shm``.  Reports ``pickle`` after a mid-run degrade."""
        return self._mode

    def __enter__(self) -> "ChunkRunner":
        if self.workers > 1:
            self._mode = self._resolve_transport()
            self._pool = SupervisedPool(
                self.workers,
                wire_config=obs.wire_config(),
                fault_plan=faults.resolve_plan(self.fault_plan),
                heartbeat_interval=self.heartbeat_interval_seconds,
            )
            self._pool.start()
            if self._mode == "shm":
                try:
                    self._arena = shm.SlabArena(
                        slot_count=2 * self.workers,
                        slot_bytes=self._slot_bytes,
                    )
                except (RuntimeError, OSError, ValueError):
                    # Probe said yes but creation failed (quota, races):
                    # degrade to the pickle wire rather than dying.
                    self._arena = None
                    self._mode = "pickle"
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        try:
            if exc_type is not None and self._arena is not None:
                # Exception path: unlink the /dev/shm segments *before*
                # stopping workers.  Unlinking only removes the names —
                # attached workers keep their mappings until they exit —
                # so this can never corrupt an in-flight chunk, but it
                # guarantees no segment outlives the runner even if a
                # worker refuses to die and terminate() below hangs.
                self._arena.close()
                self._arena = None
            if self._pool is not None:
                # Clean shutdown waits (bounded) for in-flight chunks so
                # forked children flush coverage data; the exception
                # path terminates immediately.
                self._pool.stop(graceful=exc_type is None)
                self._pool = None
        finally:
            # Segments are unlinked on *every* exit path — exception,
            # KeyboardInterrupt, worker-join failure — so a dead run
            # never leaks /dev/shm space.
            if self._arena is not None:
                self._arena.close()
                self._arena = None
            self._warmed.clear()
            self._mode = "inproc"

    def _header_for(
        self, spec: ChunkSpec, slot_id: int = -1
    ) -> ShmChunkSpec:
        """The shared-memory header for one spec, writing the circuit
        text into the slab arena on first encounter of its fingerprint."""
        ref = self._arena.put_blob(
            ("circuit", spec.fingerprint), spec.circuit_text.encode()
        )
        return ShmChunkSpec(
            task_id=spec.task_id,
            fingerprint=spec.fingerprint,
            circuit_ref=ref,
            decoder=spec.decoder,
            sampler=spec.sampler,
            chunk_index=spec.chunk_index,
            shots=spec.shots,
            base_seed=spec.base_seed,
            task_entropy=spec.task_entropy,
            attempt=spec.attempt,
            run_token=self._run_token,
            result_slot=(
                self._arena.slot_ref(slot_id) if slot_id >= 0 else None
            ),
        )

    def _degrade(self, reason: str) -> None:
        """Fall back from the shm wire to pickle for the rest of this
        runner's life (arena write failure, slot corruption, worker
        attach failure).  Already-dispatched headers stay valid — the
        arena itself is not closed until ``__exit__`` — but every later
        dispatch ships whole specs.  Counts are unaffected either way.
        """
        if self._mode != "shm":
            return
        self._mode = "pickle"
        if obs.is_metrics():
            obs.counter("repro_transport_degraded_total").inc()
        obs.event("transport degraded to pickle", reason=reason)

    def _send_warm(self, slot: int, spec: ChunkSpec) -> bool:
        payload: ChunkSpec | ShmChunkSpec = spec
        if self._mode == "shm" and self._arena is not None:
            try:
                payload = self._header_for(spec)
            except (RuntimeError, OSError, ValueError) as exc:
                self._degrade(f"arena write failed during warm: {exc}")
                payload = spec
        return self._pool.send(slot, ("warm", payload))

    def warm(self, spec: ChunkSpec) -> bool:
        """Send "compile this fingerprint" to every pool worker.

        Each worker builds the spec's circuit, sampler and (non-none)
        decoder into its process cache, so ``backend.compile`` runs
        once per worker per circuit *before* chunks flow instead of
        serializing into each worker's first chunk.  Dedup-keyed by
        ``(fingerprint, sampler, decoder)``; a no-op in-process (the
        serial path compiles lazily, once, anyway).  Returns whether a
        broadcast actually ran.  The workers' compile telemetry is
        merged into the parent's buffers immediately, not deferred to
        their first chunk.  The template is retained so a replacement
        worker spawned after a crash is re-warmed before it takes
        leases.
        """
        key = (spec.fingerprint, spec.sampler, spec.decoder)
        if self._pool is None or key in self._warmed:
            return False
        self._warmed[key] = spec
        with obs.span(
            "warm.broadcast",
            fingerprint=spec.fingerprint,
            sampler=spec.sampler,
            decoder=spec.decoder,
            workers=self.workers,
        ):
            sent = [
                slot
                for slot in self._pool.live_slots()
                if self._send_warm(slot, spec)
            ]
            acks = self._pool.drain_warm_acks(
                sent, time.monotonic() + _WARM_TIMEOUT_SECONDS
            )
            for _slot in sorted(acks):
                _pid, spans, metrics = acks[_slot]
                if spans:
                    obs.absorb_spans(spans)
                if metrics:
                    obs.merge_wire(metrics)
        if obs.is_metrics():
            obs.counter("repro_warm_broadcasts_total").inc()
        return True

    @staticmethod
    def _finalize(
        result: ChunkResult,
        submitted: float,
        received: float,
        spec_bytes: int = 0,
        result_bytes: int = 0,
        transport: str = "inproc",
    ) -> ChunkResult:
        """Complete a chunk's timeline on the way out of the runner.

        Absorbs any piggybacked worker telemetry into the parent's
        buffers, derives queue wait (submit -> worker start) and
        reorder-buffer hold (received -> yielded), records the chunk's
        :class:`~repro.obs.ChunkTimeline`, and strips the wire payload
        from the yielded result.  A single no-op when telemetry is off.
        """
        if not (obs.is_tracing() or obs.is_metrics()):
            return result
        if result.spans:
            obs.absorb_spans(result.spans)
        if result.metrics:
            obs.merge_wire(result.metrics)
        yielded = time.perf_counter()
        queue_wait = max(result.started_at - submitted, 0.0)
        hold = max(yielded - received, 0.0)
        if obs.is_metrics():
            obs.counter("repro_queue_wait_seconds_total").inc(queue_wait)
            obs.counter("repro_hold_seconds_total").inc(hold)
            if spec_bytes or result_bytes:
                obs.counter("repro_transport_spec_bytes_total").inc(
                    spec_bytes
                )
                obs.counter("repro_transport_result_bytes_total").inc(
                    result_bytes
                )
        obs.record_timeline(
            obs.ChunkTimeline(
                task_id=result.task_id,
                chunk_index=result.chunk_index,
                shots=result.shots,
                pid=result.pid,
                submitted_at=submitted,
                started_at=result.started_at,
                finished_at=result.finished_at,
                received_at=received,
                yielded_at=yielded,
                spec_bytes=spec_bytes,
                result_bytes=result_bytes,
                transport=transport,
                attempt=result.attempt,
            )
        )
        return replace(
            result,
            queue_wait_seconds=queue_wait,
            hold_seconds=hold,
            spec_bytes=spec_bytes,
            result_bytes=result_bytes,
            spans=(),
            metrics=(),
        )

    def run(self, specs: Iterable[ChunkSpec]) -> Iterator[ChunkResult]:
        """Yield results in chunk-submission order.

        Pooled execution leases chunks to supervised workers with a
        bounded in-flight window of ``2 * workers`` and an
        order-restoring reorder buffer, so downstream aggregation sees
        the same deterministic stream serial execution produces while a
        slow chunk never barriers its peers.  The window doubles as the
        speculative-overrun bound the max-errors early stop relies on:
        a consumer that stops early wastes at most one window of work.

        Failed leases (worker death, expiry, in-chunk exception) are
        retried in place — the retried chunk re-enters the window it
        already occupies, so recovery never widens the overrun bound —
        and chunks that exhaust their retry budget are yielded as
        ``failed`` results in their deterministic position.

        One pooled run at a time: close (or exhaust) a run's iterator
        before starting another — abandoning it to the garbage
        collector also works, which is what a ``for``-loop ``break``
        does; results still in flight from the abandoned run carry its
        stale token and are dropped.
        """
        if self._pool is None:
            for spec in specs:
                submitted = time.perf_counter()
                result = run_chunk(spec)
                # In-process there is no transport or queue; received
                # coincides with the worker finish stamp and the bytes
                # stay 0 so profiles never invent overhead.
                yield self._finalize(
                    result,
                    submitted=submitted,
                    received=result.finished_at,
                )
            return
        yield from self._run_pooled(specs)

    # -- supervised scheduling -------------------------------------------

    def _run_pooled(
        self, specs: Iterable[ChunkSpec]
    ) -> Iterator[ChunkResult]:
        pool = self._pool
        measure = obs.is_metrics()
        window = 2 * self.workers
        # Matches the window: with 2 leases per worker, one chunk is
        # always queued behind the one executing, so a worker never
        # idles waiting for the next dispatch round-trip.
        per_worker = max(1, window // self.workers)
        self._run_token += 1
        state = _RunState(token=self._run_token)
        if self._arena is not None and self._mode == "shm":
            state.free_shm_slots.extend(range(self._arena.slot_count))
        spec_iter = iter(specs)
        transports: dict[int, str] = {}

        def lease_capacity() -> list[tuple[int, int]]:
            """(load, slot) for live workers with lease headroom."""
            loads: dict[int, int] = {}
            for lease in state.leases.values():
                loads[lease.slot] = loads.get(lease.slot, 0) + 1
            return sorted(
                (loads.get(slot, 0), slot)
                for slot in pool.live_slots()
                if loads.get(slot, 0) < per_worker
            )

        def requeue(index: int, lease: _Lease, reason: str) -> None:
            """A lease failed: back off and retry, or quarantine."""
            if lease.shm_slot >= 0:
                # The slot is reusable immediately: any late write from
                # the failed attempt carries this run's token, and a
                # retried reader seeing it gets identical telemetry (or
                # nothing) — counts never travel through slots.
                state.free_shm_slots.append(lease.shm_slot)
            failed_attempts = lease.attempt + 1
            if failed_attempts > self.max_chunk_retries:
                quarantine(index, failed_attempts, reason)
                return
            if measure:
                obs.counter("repro_chunk_retries_total").inc()
            state.attempts[index] = failed_attempts
            delay = min(
                self.retry_backoff * (2 ** lease.attempt),
                _MAX_BACKOFF_SECONDS,
            )
            state.delayed.append((time.monotonic() + delay, index))

        def quarantine(index: int, tries: int, reason: str) -> None:
            """Retry budget exhausted: emit a structured failure result
            in the chunk's deterministic position instead of aborting
            the sweep."""
            if measure:
                obs.gauge("repro_chunks_quarantined").add(1)
            spec = state.specs[index]
            obs.event(
                "chunk quarantined",
                task=spec.task_id,
                chunk=spec.chunk_index,
                attempts=tries,
                reason=reason,
            )
            state.submit_times.pop(index, None)
            state.spec_sizes.pop(index, None)
            state.reorder[index] = (
                ChunkResult(
                    task_id=spec.task_id,
                    chunk_index=spec.chunk_index,
                    shots=spec.shots,
                    errors=0,
                    seconds=0.0,
                    attempt=tries - 1,
                    failed=True,
                    error=f"quarantined after {tries} attempts: {reason}",
                ),
                time.perf_counter(),
                0,
            )

        def on_worker_down(slot: int, *, expired: bool = False) -> None:
            """Requeue a dead worker's leases and replace it in place."""
            if measure and not expired:
                obs.counter("repro_worker_deaths_total").inc()
            mine = [
                index
                for index, lease in state.leases.items()
                if lease.slot == slot
            ]
            pool.respawn(slot)
            # Re-warm the replacement before it takes leases: its pipe
            # delivers these warm tasks ahead of any later chunk, so it
            # never pays a compile inside a leased chunk's deadline.
            for template in self._warmed.values():
                self._send_warm(slot, template)
            for index in mine:
                lease = state.leases.pop(index)
                requeue(
                    index,
                    lease,
                    "lease expired" if expired else "worker died",
                )

        def dispatch(index: int) -> bool:
            """Lease one pending chunk to the least-loaded live worker."""
            capacity = lease_capacity()
            while True:
                if not capacity:
                    return False
                _load, slot = capacity.pop(0)
                spec = state.specs[index]
                attempt = state.attempts[index]
                if spec.attempt != attempt:
                    spec = replace(spec, attempt=attempt)
                payload: ChunkSpec | ShmChunkSpec = spec
                shm_slot = -1
                wire = "pickle"
                if self._mode == "shm" and self._arena is not None:
                    try:
                        if state.free_shm_slots:
                            shm_slot = state.free_shm_slots.popleft()
                        payload = self._header_for(spec, shm_slot)
                        wire = "shm"
                    except (RuntimeError, OSError, ValueError) as exc:
                        if shm_slot >= 0:
                            state.free_shm_slots.append(shm_slot)
                            shm_slot = -1
                        self._degrade(f"arena write failed: {exc}")
                        payload = spec
                state.submit_times[index] = time.perf_counter()
                if measure:
                    state.spec_sizes[index] = len(pickle.dumps(payload))
                if pool.send(slot, ("chunk", state.token, index, payload)):
                    transports[index] = wire
                    state.leases[index] = _Lease(
                        slot=slot,
                        attempt=attempt,
                        submitted=state.submit_times[index],
                        deadline=(
                            time.monotonic() + self.chunk_timeout_seconds
                            if self.chunk_timeout_seconds
                            else None
                        ),
                        shm_slot=shm_slot,
                        transport=wire,
                    )
                    return True
                # The worker died between poll and send.  The chunk was
                # never leased (no retry charged); replace the worker
                # and try the next candidate.
                if shm_slot >= 0:
                    state.free_shm_slots.append(shm_slot)
                on_worker_down(slot)
                capacity = lease_capacity()

        def absorb_slot_payload(result: ChunkResult, lease: _Lease):
            """Read a slot-parked telemetry payload; a torn payload
            degrades the wire (telemetry is lossy, counts are not)."""
            spans: tuple = ()
            metrics: tuple = ()
            data = (
                self._arena.read_slot(lease.shm_slot, state.token)
                if self._arena is not None and lease.shm_slot >= 0
                else None
            )
            if data is not None:
                try:
                    spans, metrics = pickle.loads(data)
                except Exception:
                    self._degrade("corrupt result-slot payload")
                else:
                    if measure:
                        obs.counter(
                            "repro_shm_slot_payload_bytes_total"
                        ).inc(len(data))
            return replace(
                result,
                spans=tuple(spans),
                metrics=tuple(metrics),
                slot_payload=False,
            )

        def on_message(payload: tuple) -> None:
            kind = payload[0]
            if kind == "result":
                _, token, index, result = payload
                if token != state.token or index not in state.leases:
                    return  # stale: abandoned run or already-requeued lease
                lease = state.leases.pop(index)
                received = time.perf_counter()
                result_bytes = (
                    len(pickle.dumps(result)) if measure else 0
                )
                if result.slot_payload:
                    result = absorb_slot_payload(result, lease)
                if lease.shm_slot >= 0:
                    state.free_shm_slots.append(lease.shm_slot)
                state.reorder[index] = (result, received, result_bytes)
            elif kind == "error":
                _, token, index, message, error_kind = payload
                if token != state.token or index not in state.leases:
                    return
                if error_kind == "shm":
                    self._degrade(f"worker transport failure: {message}")
                requeue(index, state.leases.pop(index), message)
            elif kind == "warm":
                # Late warm ack from a re-warmed replacement worker.
                _, _pid, spans, metrics = payload
                if spans:
                    obs.absorb_spans(spans)
                if metrics:
                    obs.merge_wire(metrics)

        while True:
            # Ripen retry timers.
            if state.delayed:
                now = time.monotonic()
                ripe = sorted(
                    index for ready, index in state.delayed if ready <= now
                )
                if ripe:
                    state.delayed = [
                        entry for entry in state.delayed if entry[0] > now
                    ]
                    state.pending.extend(ripe)
            # Admit new chunks while the window has room.
            while not state.exhausted and state.live() < window:
                try:
                    spec = next(spec_iter)
                except StopIteration:
                    state.exhausted = True
                    break
                state.specs[state.next_submit] = spec
                state.attempts[state.next_submit] = 0
                state.pending.append(state.next_submit)
                state.next_submit += 1
            # Lease out pending chunks up to per-worker capacity.
            while state.pending:
                if not dispatch(state.pending[0]):
                    break
                state.pending.popleft()
            # Done?  Everything admitted has been yielded.
            if state.exhausted and state.live() == 0:
                return
            # Wait for worker events, but no longer than the nearest
            # lease deadline or retry timer needs.
            wait = _POLL_SECONDS
            now = time.monotonic()
            if state.delayed:
                wait = min(
                    wait, min(ready for ready, _ in state.delayed) - now
                )
            deadlines = [
                lease.deadline
                for lease in state.leases.values()
                if lease.deadline is not None
            ]
            if deadlines:
                wait = min(wait, min(deadlines) - now)
            for event in pool.poll(max(0.01, wait)):
                if event.kind == "died":
                    on_worker_down(event.slot)
                elif event.payload:
                    on_message(event.payload)
            # Expire overdue leases: the holder is killed (it may be
            # wedged, and killing guarantees no late duplicate result),
            # which fails all its leases at once.
            if self.chunk_timeout_seconds:
                now = time.monotonic()
                overdue = {
                    lease.slot
                    for lease in state.leases.values()
                    if lease.deadline is not None and lease.deadline <= now
                }
                for slot in overdue:
                    if measure:
                        obs.counter("repro_lease_expired_total").inc()
                    pool.kill(slot)
                    on_worker_down(slot, expired=True)
            # Hung-worker detection (opt-in): a worker whose heartbeat
            # thread has gone silent is dead weight even without lease
            # deadlines.
            if self.heartbeat_timeout_seconds:
                for slot in pool.live_slots():
                    if (
                        pool.heartbeat_age(slot)
                        > self.heartbeat_timeout_seconds
                    ):
                        pool.kill(slot)
                        on_worker_down(slot)
            # Drain the reorder buffer in deterministic order.
            while state.next_yield in state.reorder:
                result, received_at, result_bytes = state.reorder.pop(
                    state.next_yield
                )
                if result.failed:
                    # Quarantined: no worker stamps to build a timeline
                    # from; yield the structured failure as-is.
                    yield result
                else:
                    yield self._finalize(
                        result,
                        submitted=state.submit_times.pop(
                            state.next_yield, received_at
                        ),
                        received=received_at,
                        spec_bytes=state.spec_sizes.pop(
                            state.next_yield, 0
                        ),
                        result_bytes=result_bytes,
                        transport=transports.pop(
                            state.next_yield, self._mode
                        ),
                    )
                state.next_yield += 1
