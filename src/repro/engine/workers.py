"""Chunked execution of collection tasks, serially or in a process pool.

A task's shot budget is split into fixed-size :class:`ChunkSpec`s.  Each
chunk is self-contained and picklable — it carries the circuit's text
serialization, the decoder/sampler choice, and the ``(base_seed,
task_entropy, chunk_index)`` triple of the derived-seed scheme
(:mod:`repro.rng`) — so it can run on any worker process in any order
and still produce exactly the same :class:`ChunkResult`.

Workers keep a process-global :class:`~repro.engine.cache.SamplerCache`;
the first chunk of a circuit a worker sees pays Algorithm 1's
Initialization (plus DEM extraction and decoder construction), every
later chunk is pure Eq. 4 sampling + decoding.  A pooled runner can
also *warm* that cache up front — :meth:`ChunkRunner.warm` broadcasts
one "compile this fingerprint" task to every worker (a barrier forces
distribution), so ``backend.compile`` runs once per worker per circuit
before the first real chunk instead of serializing into it.

Transport between parent and workers is selectable
(``transport="pickle" | "shm" | "auto"``): the classic pickle wire
ships each spec whole, while the shared-memory wire
(:mod:`repro.engine.shm`) writes the circuit text into a slab arena
once per fingerprint and pickles only a small header per chunk, with
workers parking their telemetry payloads in preallocated result slots —
per-chunk transport collapses to headers.  Counts are bitwise identical
under every transport: the worker executes the same :func:`run_chunk`
on the same derived-seed spec either way.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Iterable, Iterator

import numpy as np

import repro.engine.shm as shm
import repro.obs as obs
from repro.engine.cache import shared_cache
from repro.engine.tasks import Task
from repro.gf2 import bitops
from repro.rng import chunk_generator

#: Transport choices ``ChunkRunner`` accepts; ``"auto"`` resolves to
#: shared memory when the host supports it (overridable via the
#: ``REPRO_TRANSPORT`` environment variable), else pickle.
TRANSPORTS = ("auto", "pickle", "shm")


@dataclass(frozen=True)
class ChunkSpec:
    """One self-contained unit of sampling + decoding work."""

    task_id: str
    fingerprint: str
    circuit_text: str
    decoder: str
    sampler: str
    chunk_index: int
    shots: int
    base_seed: int
    task_entropy: int


@dataclass(frozen=True)
class ShmChunkSpec:
    """Header-only chunk spec: the circuit text lives in the arena.

    The shared-memory wire format.  Identical to :class:`ChunkSpec`
    except the ~KBs circuit text is replaced by a
    :class:`~repro.engine.shm.BlobRef` into the parent's slab arena
    (written once per fingerprint), and ``result_slot`` names the
    preallocated slot the worker may park its telemetry payload in
    (guarded by ``run_token`` against stale writes from abandoned
    runs).  Workers rebuild a plain :class:`ChunkSpec` from it, so
    execution — and therefore every count — is transport-independent.
    """

    task_id: str
    fingerprint: str
    circuit_ref: shm.BlobRef
    decoder: str
    sampler: str
    chunk_index: int
    shots: int
    base_seed: int
    task_entropy: int
    run_token: int = 0
    result_slot: shm.SlotRef | None = None


@dataclass(frozen=True)
class ChunkResult:
    """Counts streamed back from a worker for one chunk.

    ``seconds`` is the chunk's whole in-worker time;
    ``sample_seconds`` / ``decode_seconds`` split out the two hot
    stages (the remainder is setup + aggregation), so per-stage
    profiles (``repro collect --profile``) come free with every run.

    ``started_at``/``finished_at`` are the worker's ``perf_counter``
    stamps (comparable with the parent's on one machine) and ``pid``
    the process that ran the chunk; together with the scheduler's own
    stamps they become the chunk's :class:`repro.obs.ChunkTimeline`.
    ``queue_wait_seconds`` (submit -> worker start) and
    ``hold_seconds`` (result received -> yielded past the reorder
    buffer) are filled in by :meth:`ChunkRunner.run` on the way out;
    ``spec_bytes``/``result_bytes`` record the pickled transport
    payload both ways when :mod:`repro.obs` metrics are on (0 for
    in-process runs — there is no transport to account).

    ``spans``/``metrics`` piggyback the worker's buffered
    :mod:`repro.obs` telemetry back to the parent (wire tuples; the
    runner absorbs them and strips both before yielding).
    """

    task_id: str
    chunk_index: int
    shots: int
    errors: int
    seconds: float
    sample_seconds: float = 0.0
    decode_seconds: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    pid: int = 0
    queue_wait_seconds: float = 0.0
    hold_seconds: float = 0.0
    spec_bytes: int = 0
    result_bytes: int = 0
    spans: tuple = ()
    metrics: tuple = ()
    # True when the worker parked its telemetry payload in a
    # shared-memory result slot instead of the pickle wire; the runner
    # reads the slot and clears the flag before finalizing.
    slot_payload: bool = False


def plan_chunks(
    task: Task, base_seed: int, chunk_shots: int
) -> list[ChunkSpec]:
    """Split ``task``'s budget into deterministic chunk specs.

    The split depends only on the task and ``chunk_shots``, never on
    scheduling, so chunk ``i`` is the same work in every run.
    """
    if chunk_shots < 1:
        raise ValueError("chunk_shots must be positive")
    task_id = task.strong_id()
    fingerprint = task.circuit_fingerprint()
    text = task.circuit.to_text()
    entropy = task.seed_entropy()
    specs = []
    remaining = task.max_shots
    index = 0
    while remaining > 0:
        shots = min(chunk_shots, remaining)
        specs.append(
            ChunkSpec(
                task_id=task_id,
                fingerprint=fingerprint,
                circuit_text=text,
                decoder=task.decoder,
                sampler=task.sampler,
                chunk_index=index,
                shots=shots,
                base_seed=base_seed,
                task_entropy=entropy,
            )
        )
        remaining -= shots
        index += 1
    return specs


def plan_chunks_adaptive(
    task: Task, base_seed: int, sizer
) -> Iterator[ChunkSpec]:
    """Lazily plan ``task``'s chunks with sizes the ``sizer`` steers.

    Each spec's shot count is whatever
    :meth:`~repro.engine.adaptive.AdaptiveChunkSizer.next_shots`
    reports at plan time (capped by the remaining budget), so the split
    reacts to the latencies the consumer feeds back via ``observe``.
    Unlike :func:`plan_chunks` the split is machine-dependent — which
    shots get drawn depends on it — so this path is opt-in
    (``ExecutionOptions.adaptive_chunks``).
    """
    task_id = task.strong_id()
    fingerprint = task.circuit_fingerprint()
    text = task.circuit.to_text()
    entropy = task.seed_entropy()
    remaining = task.max_shots
    index = 0
    while remaining > 0:
        shots = min(sizer.next_shots(), remaining)
        yield ChunkSpec(
            task_id=task_id,
            fingerprint=fingerprint,
            circuit_text=text,
            decoder=task.decoder,
            sampler=task.sampler,
            chunk_index=index,
            shots=shots,
            base_seed=base_seed,
            task_entropy=entropy,
        )
        remaining -= shots
        index += 1


def _build_sampler(spec: ChunkSpec, circuit):
    from repro.backends import get_backend

    return get_backend(spec.sampler).compile(circuit)


def _build_decoder(spec: ChunkSpec, circuit):
    from repro.decoders import compile_decoder
    from repro.dem import extract_dem

    cache = shared_cache()
    dem = cache.get_or_build(
        ("dem", spec.fingerprint), lambda: extract_dem(circuit)
    )
    # spec.decoder is already canonical (Task resolves aliases), so one
    # compiled decoder per (circuit, decoder) serves every alias.
    return compile_decoder(dem, spec.decoder)


def _decoder_is_packed(name: str) -> bool:
    from repro.decoders import get_decoder

    return get_decoder(name).info.packed


def _sample_packed(sampler, shots: int, rng):
    from repro.backends.protocol import packed_detector_samples

    return packed_detector_samples(sampler, shots, rng)


def run_chunk(spec: ChunkSpec) -> ChunkResult:
    """Sample + decode one chunk (runs in a worker or in-process).

    Reproducible in isolation: the RNG is seeded purely from the spec's
    ``(base_seed, task_entropy, chunk_index)`` triple.

    The hot path stays in the packed domain end to end whenever the
    decoder speaks it (or there is no decoder): packed syndromes from
    ``sample_detectors_packed`` flow into ``decode_batch_packed``, and
    the error count is a row-any over ``predictions XOR observables`` —
    no unpacked uint8 matrix is ever materialized.  Counts are bitwise
    identical to the unpacked path because the packed and unpacked views
    draw the same RNG stream and the packed decoder predicts
    identically; unpacked-only decoders take the original route.
    """
    from repro.circuit.circuit import Circuit

    started = time.perf_counter()
    pid = os.getpid()
    cache = shared_cache()
    with obs.span(
        "chunk",
        task=spec.task_id,
        chunk=spec.chunk_index,
        shots=spec.shots,
        sampler=spec.sampler,
        decoder=spec.decoder,
    ) as chunk_sp:
        if obs.is_tracing():
            sampler_key = ("sampler", spec.fingerprint, spec.sampler)
            chunk_sp.set(
                sampler_cache="hit" if sampler_key in cache else "miss"
            )
        circuit = cache.get_or_build(
            ("circuit", spec.fingerprint),
            lambda: Circuit.from_text(spec.circuit_text),
        )
        sampler = cache.get_or_build(
            ("sampler", spec.fingerprint, spec.sampler),
            lambda: _build_sampler(spec, circuit),
        )
        rng = chunk_generator(
            spec.base_seed, spec.task_entropy, spec.chunk_index
        )
        decode_seconds = 0.0
        if spec.decoder == "none":
            with obs.span("sample", chunk=spec.chunk_index) as sp:
                sample_started = time.perf_counter()
                _, observables = _sample_packed(sampler, spec.shots, rng)
                sample_seconds = time.perf_counter() - sample_started
                sp.set(observable_bytes=int(observables.nbytes))
            errors = int(bitops.nonzero_rows_packed(observables).size)
        elif _decoder_is_packed(spec.decoder):
            with obs.span("sample", chunk=spec.chunk_index) as sp:
                sample_started = time.perf_counter()
                detectors, observables = _sample_packed(
                    sampler, spec.shots, rng
                )
                sample_seconds = time.perf_counter() - sample_started
                sp.set(
                    detector_bytes=int(detectors.nbytes),
                    observable_bytes=int(observables.nbytes),
                )
            if obs.is_tracing():
                decoder_key = ("decoder", spec.fingerprint, spec.decoder)
                chunk_sp.set(
                    decoder_cache="hit" if decoder_key in cache else "miss"
                )
            decoder = cache.get_or_build(
                ("decoder", spec.fingerprint, spec.decoder),
                lambda: _build_decoder(spec, circuit),
            )
            with obs.span("decode", chunk=spec.chunk_index) as sp:
                decode_started = time.perf_counter()
                predictions = decoder.decode_batch_packed(detectors)
                errors = int(
                    np.count_nonzero(
                        bitops.xor_rows_any(predictions, observables)
                    )
                )
                decode_seconds = time.perf_counter() - decode_started
                sp.set(prediction_bytes=int(predictions.nbytes), packed=True)
        else:
            with obs.span("sample", chunk=spec.chunk_index) as sp:
                sample_started = time.perf_counter()
                detectors, observables = sampler.sample_detectors(
                    spec.shots, rng
                )
                sample_seconds = time.perf_counter() - sample_started
                sp.set(
                    detector_bytes=int(detectors.nbytes),
                    observable_bytes=int(observables.nbytes),
                )
            if obs.is_tracing():
                decoder_key = ("decoder", spec.fingerprint, spec.decoder)
                chunk_sp.set(
                    decoder_cache="hit" if decoder_key in cache else "miss"
                )
            decoder = cache.get_or_build(
                ("decoder", spec.fingerprint, spec.decoder),
                lambda: _build_decoder(spec, circuit),
            )
            with obs.span("decode", chunk=spec.chunk_index) as sp:
                decode_started = time.perf_counter()
                predictions = decoder.decode_batch(detectors)
                errors = int((predictions != observables).any(axis=1).sum())
                decode_seconds = time.perf_counter() - decode_started
                sp.set(prediction_bytes=int(predictions.nbytes), packed=False)
        chunk_sp.set(errors=errors)
    finished = time.perf_counter()
    seconds = finished - started
    if obs.is_metrics():
        worker = str(pid)
        obs.counter("repro_chunks_total", pid=worker).inc()
        obs.counter("repro_shots_total", pid=worker).inc(spec.shots)
        obs.counter("repro_errors_total", pid=worker).inc(errors)
        obs.counter("repro_worker_seconds_total", pid=worker).inc(seconds)
        obs.counter(
            "repro_stage_seconds_total", stage="sample", pid=worker
        ).inc(sample_seconds)
        obs.counter(
            "repro_stage_seconds_total", stage="decode", pid=worker
        ).inc(decode_seconds)
        obs.counter(
            "repro_stage_seconds_total", stage="other", pid=worker
        ).inc(max(seconds - sample_seconds - decode_seconds, 0.0))
        obs.histogram("repro_chunk_seconds", pid=worker).observe(seconds)
    return ChunkResult(
        task_id=spec.task_id,
        chunk_index=spec.chunk_index,
        shots=spec.shots,
        errors=errors,
        seconds=seconds,
        sample_seconds=sample_seconds,
        decode_seconds=decode_seconds,
        started_at=started,
        finished_at=finished,
        pid=pid,
        # Piggyback buffered telemetry only when running in a pool
        # worker: in-process runs already share the parent's buffers,
        # and shipping+merging there would double-count every metric.
        spans=(
            obs.drain_wire_spans()
            if _IN_WORKER and obs.is_tracing()
            else ()
        ),
        metrics=(
            obs.flush_wire() if _IN_WORKER and obs.is_metrics() else ()
        ),
    )


_IN_WORKER = False
_WARM_BARRIER = None

#: How long a warm task waits for its siblings; generous because the
#: wait starts only after the worker's own compile finished, so it
#: covers the *spread* between compiles, not their duration.
_WARM_BARRIER_TIMEOUT = 60.0


def _pool_worker_init(config: dict, barrier=None) -> None:
    """Pool initializer: adopt the parent's telemetry flags, keep the
    warm-broadcast barrier, and mark this process as a worker so
    ``run_chunk`` ships its telemetry back on the wire (spawned
    children start with everything off; forked ones inherit flags but
    still need the worker mark).

    The inherited telemetry buffers are dropped first: a forked child
    starts with the parent's registry *including its unshipped deltas*,
    and its first ``flush_wire`` would re-ship them — every parent-side
    counter would double-count once per worker.  A worker's wire must
    carry only what the worker itself measured.

    Inherited shared-memory attachments are dropped for the same
    reason: a forked child starts with the parent's ``_ATTACHED`` map,
    whose segments may belong to a previous run's arena and unlink
    under the child at any time.  Each worker re-attaches on first
    read, against the arena of *its* run.
    """
    global _IN_WORKER, _WARM_BARRIER
    _IN_WORKER = True
    _WARM_BARRIER = barrier
    obs.reset()
    obs.configure(config)
    shm.detach_all()


def _spec_from_header(header: ShmChunkSpec) -> ChunkSpec:
    """Rebuild a plain :class:`ChunkSpec` from a shared-memory header.

    The circuit text is read from the arena only when this worker's
    cache has not yet built the circuit — a warm worker never touches
    the slab again.
    """
    text = ""
    if ("circuit", header.fingerprint) not in shared_cache():
        text = shm.read_blob(header.circuit_ref).decode()
    return ChunkSpec(
        task_id=header.task_id,
        fingerprint=header.fingerprint,
        circuit_text=text,
        decoder=header.decoder,
        sampler=header.sampler,
        chunk_index=header.chunk_index,
        shots=header.shots,
        base_seed=header.base_seed,
        task_entropy=header.task_entropy,
    )


def _warm_cache(spec: ChunkSpec) -> None:
    """Build this worker's cached artifacts for one (circuit, sampler,
    decoder) triple — the exact keys ``run_chunk`` will hit."""
    from repro.circuit.circuit import Circuit

    cache = shared_cache()
    circuit = cache.get_or_build(
        ("circuit", spec.fingerprint),
        lambda: Circuit.from_text(spec.circuit_text),
    )
    cache.get_or_build(
        ("sampler", spec.fingerprint, spec.sampler),
        lambda: _build_sampler(spec, circuit),
    )
    if spec.decoder != "none":
        cache.get_or_build(
            ("decoder", spec.fingerprint, spec.decoder),
            lambda: _build_decoder(spec, circuit),
        )


def _warm_worker(spec) -> tuple:
    """Warm-broadcast target: compile, then wait at the barrier.

    The barrier forces distribution: a worker that finished its compile
    cannot grab a sibling's warm task until every worker holds one, so
    ``workers`` warm tasks land on ``workers`` distinct processes.  A
    broken/timed-out barrier degrades gracefully — the compile already
    happened; at worst an unwarmed worker pays it on its first chunk,
    which is the pre-warm behavior.
    """
    if isinstance(spec, ShmChunkSpec):
        spec = _spec_from_header(spec)
    with obs.span(
        "warm", fingerprint=spec.fingerprint, sampler=spec.sampler,
        decoder=spec.decoder,
    ):
        _warm_cache(spec)
    barrier = _WARM_BARRIER
    if barrier is not None:
        try:
            barrier.wait(_WARM_BARRIER_TIMEOUT)
        except threading.BrokenBarrierError:
            pass
    return (
        os.getpid(),
        obs.drain_wire_spans() if _IN_WORKER and obs.is_tracing() else (),
        obs.flush_wire() if _IN_WORKER and obs.is_metrics() else (),
    )


def warm_spec(task: Task, base_seed: int) -> ChunkSpec:
    """A zero-shot template spec for :meth:`ChunkRunner.warm`."""
    return ChunkSpec(
        task_id=task.strong_id(),
        fingerprint=task.circuit_fingerprint(),
        circuit_text=task.circuit.to_text(),
        decoder=task.decoder,
        sampler=task.sampler,
        chunk_index=0,
        shots=0,
        base_seed=base_seed,
        task_entropy=task.seed_entropy(),
    )


def _indexed_run_chunk(
    indexed_spec: tuple[int, "ChunkSpec | ShmChunkSpec"],
) -> tuple[int, ChunkResult]:
    """Pool target: tag each result with its submission index so the
    order-restoring buffer can reassemble the deterministic stream.

    Shared-memory headers are rebuilt into plain specs here, and the
    telemetry payload — the bulk of a profiled result — is parked in
    the header's result slot when it fits, collapsing the pickled
    return to its numeric fields.
    """
    index, spec = indexed_spec
    if isinstance(spec, ShmChunkSpec):
        result = run_chunk(_spec_from_header(spec))
        if spec.result_slot is not None and (result.spans or result.metrics):
            payload = pickle.dumps((result.spans, result.metrics))
            if shm.write_slot(spec.result_slot, spec.run_token, payload):
                result = replace(
                    result, spans=(), metrics=(), slot_payload=True
                )
        return index, result
    return index, run_chunk(spec)


class ChunkRunner:
    """Executes chunk specs, in-process (``workers <= 1``) or on a
    ``multiprocessing`` pool.  Context-managed so the pool — and, under
    shared-memory transport, every ``/dev/shm`` segment — is always
    reclaimed::

        with ChunkRunner(workers=4) as runner:
            for result in runner.run(specs):
                ...

    ``transport`` picks the parent-worker wire: ``"pickle"`` (ship the
    whole spec), ``"shm"`` (slab-arena blobs + header-only pickles, see
    :mod:`repro.engine.shm`; raises at ``__enter__`` when the host
    cannot create segments), or ``"auto"`` (shm when available, else
    pickle; the ``REPRO_TRANSPORT`` environment variable overrides the
    preference).  Counts are bitwise identical under every transport.
    """

    def __init__(
        self,
        workers: int = 1,
        transport: str = "auto",
        slot_bytes: int = 1 << 16,
    ):
        self.workers = max(1, int(workers))
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        self.transport = transport
        self._slot_bytes = slot_bytes
        self._mode = "inproc"
        self._pool = None
        self._arena: shm.SlabArena | None = None
        self._warm_barrier = None
        self._warmed: set[tuple[str, str, str]] = set()
        self._run_token = 0
        self._feeder_stop: threading.Event | None = None
        self._feeder_slots: threading.Semaphore | None = None

    def _resolve_transport(self) -> str:
        """The wire a pooled run will use, honoring explicit choices
        strictly and degrading ``auto`` (or its env override) to pickle
        when shared memory is unusable."""
        requested = self.transport
        if requested == "auto":
            env = os.environ.get("REPRO_TRANSPORT", "").strip().lower()
            if env in ("pickle", "shm"):
                requested = env
        if requested == "shm" and not shm.shm_available():
            if self.transport == "shm":
                raise RuntimeError(
                    "transport='shm' requested but shared memory is "
                    "unavailable on this host (pass 'auto' or 'pickle')"
                )
            return "pickle"
        if requested == "auto":
            return "shm" if shm.shm_available() else "pickle"
        return requested

    @property
    def active_transport(self) -> str:
        """The resolved wire: ``inproc`` (serial), ``pickle`` or ``shm``."""
        return self._mode

    def __enter__(self) -> "ChunkRunner":
        if self.workers > 1:
            self._mode = self._resolve_transport()
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self._warm_barrier = context.Barrier(self.workers)
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_pool_worker_init,
                initargs=(obs.wire_config(), self._warm_barrier),
            )
            if self._mode == "shm":
                try:
                    self._arena = shm.SlabArena(
                        slot_count=2 * self.workers,
                        slot_bytes=self._slot_bytes,
                    )
                except (RuntimeError, OSError, ValueError):
                    # Probe said yes but creation failed (quota, races):
                    # degrade to the pickle wire rather than dying.
                    self._arena = None
                    self._mode = "pickle"
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        try:
            if self._pool is not None:
                self._release_feeder()
                if exc_type is None:
                    # Clean shutdown: let in-flight chunks finish so
                    # forked children flush coverage data and never die
                    # holding a half-written sampler-cache entry.
                    self._pool.close()
                else:
                    self._pool.terminate()
                self._pool.join()
                self._pool = None
        finally:
            # Segments are unlinked on *every* exit path — exception,
            # KeyboardInterrupt, pool-join failure — so a dead run never
            # leaks /dev/shm space.
            if self._arena is not None:
                self._arena.close()
                self._arena = None
            self._warm_barrier = None
            self._warmed.clear()
            self._mode = "inproc"

    def _release_feeder(self) -> None:
        """Unblock the active run's feeder so close/join cannot hang on
        its in-flight-window semaphore."""
        if self._feeder_stop is not None:
            self._feeder_stop.set()
            if self._feeder_slots is not None:
                self._feeder_slots.release()
            self._feeder_stop = None
            self._feeder_slots = None

    def _header_for(
        self, spec: ChunkSpec, slot_id: int = -1
    ) -> ShmChunkSpec:
        """The shared-memory header for one spec, writing the circuit
        text into the slab arena on first encounter of its fingerprint."""
        ref = self._arena.put_blob(
            ("circuit", spec.fingerprint), spec.circuit_text.encode()
        )
        return ShmChunkSpec(
            task_id=spec.task_id,
            fingerprint=spec.fingerprint,
            circuit_ref=ref,
            decoder=spec.decoder,
            sampler=spec.sampler,
            chunk_index=spec.chunk_index,
            shots=spec.shots,
            base_seed=spec.base_seed,
            task_entropy=spec.task_entropy,
            run_token=self._run_token,
            result_slot=(
                self._arena.slot_ref(slot_id) if slot_id >= 0 else None
            ),
        )

    def warm(self, spec: ChunkSpec) -> bool:
        """Broadcast "compile this fingerprint" to every pool worker.

        Each worker builds the spec's circuit, sampler and (non-none)
        decoder into its process cache, so ``backend.compile`` runs
        once per worker per circuit *before* chunks flow instead of
        serializing into each worker's first chunk.  Dedup-keyed by
        ``(fingerprint, sampler, decoder)``; a no-op in-process (the
        serial path compiles lazily, once, anyway).  Returns whether a
        broadcast actually ran.  The workers' compile telemetry is
        merged into the parent's buffers immediately, not deferred to
        their first chunk.
        """
        key = (spec.fingerprint, spec.sampler, spec.decoder)
        if self._pool is None or key in self._warmed:
            return False
        self._warmed.add(key)
        payload = (
            self._header_for(spec) if self._arena is not None else spec
        )
        with obs.span(
            "warm.broadcast",
            fingerprint=spec.fingerprint,
            sampler=spec.sampler,
            decoder=spec.decoder,
            workers=self.workers,
        ):
            # chunksize=1 is load-bearing: map() batching would hand
            # several warm tasks to one worker and deadlock the barrier.
            outcomes = self._pool.map(
                _warm_worker, [payload] * self.workers, chunksize=1
            )
        for _pid, spans, metrics in outcomes:
            if spans:
                obs.absorb_spans(spans)
            if metrics:
                obs.merge_wire(metrics)
        if self._warm_barrier is not None and self._warm_barrier.broken:
            try:
                self._warm_barrier.reset()
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass
        if obs.is_metrics():
            obs.counter("repro_warm_broadcasts_total").inc()
        return True

    @staticmethod
    def _finalize(
        result: ChunkResult,
        submitted: float,
        received: float,
        spec_bytes: int = 0,
        result_bytes: int = 0,
        transport: str = "inproc",
    ) -> ChunkResult:
        """Complete a chunk's timeline on the way out of the runner.

        Absorbs any piggybacked worker telemetry into the parent's
        buffers, derives queue wait (submit -> worker start) and
        reorder-buffer hold (received -> yielded), records the chunk's
        :class:`~repro.obs.ChunkTimeline`, and strips the wire payload
        from the yielded result.  A single no-op when telemetry is off.
        """
        if not (obs.is_tracing() or obs.is_metrics()):
            return result
        if result.spans:
            obs.absorb_spans(result.spans)
        if result.metrics:
            obs.merge_wire(result.metrics)
        yielded = time.perf_counter()
        queue_wait = max(result.started_at - submitted, 0.0)
        hold = max(yielded - received, 0.0)
        if obs.is_metrics():
            obs.counter("repro_queue_wait_seconds_total").inc(queue_wait)
            obs.counter("repro_hold_seconds_total").inc(hold)
            if spec_bytes or result_bytes:
                obs.counter("repro_transport_spec_bytes_total").inc(
                    spec_bytes
                )
                obs.counter("repro_transport_result_bytes_total").inc(
                    result_bytes
                )
        obs.record_timeline(
            obs.ChunkTimeline(
                task_id=result.task_id,
                chunk_index=result.chunk_index,
                shots=result.shots,
                pid=result.pid,
                submitted_at=submitted,
                started_at=result.started_at,
                finished_at=result.finished_at,
                received_at=received,
                yielded_at=yielded,
                spec_bytes=spec_bytes,
                result_bytes=result_bytes,
                transport=transport,
            )
        )
        return replace(
            result,
            queue_wait_seconds=queue_wait,
            hold_seconds=hold,
            spec_bytes=spec_bytes,
            result_bytes=result_bytes,
            spans=(),
            metrics=(),
        )

    def run(self, specs: Iterable[ChunkSpec]) -> Iterator[ChunkResult]:
        """Yield results in chunk-submission order.

        Pooled execution streams chunks through ``imap_unordered`` with
        a bounded in-flight window of ``2 * workers`` and an
        order-restoring reorder buffer, so downstream aggregation sees
        the same deterministic stream serial execution produces while a
        slow chunk never barriers its peers — the old wave scheduler
        made up to ``2 * workers - 1`` finished workers idle at every
        wave edge.  The window doubles as the speculative-overrun bound
        the max-errors early stop relies on: a consumer that stops
        early wastes at most one window of work (``Pool.imap``'s feeder
        thread would eagerly submit the task's whole remaining budget).

        One pooled run at a time: the pool drains one task stream fully
        before the next, so close (or exhaust) a run's iterator before
        starting another — abandoning it to the garbage collector also
        works, which is what a ``for``-loop ``break`` does.
        """
        if self._pool is None:
            for spec in specs:
                submitted = time.perf_counter()
                result = run_chunk(spec)
                # In-process there is no transport or queue; received
                # coincides with the worker finish stamp and the bytes
                # stay 0 so profiles never invent overhead.
                yield self._finalize(
                    result,
                    submitted=submitted,
                    received=result.finished_at,
                )
            return
        window = 2 * self.workers
        # The pool's task-handler thread pulls from this generator; the
        # semaphore blocks it once `window` chunks are in flight, and
        # each consumed result releases one slot.  The stop event makes
        # an abandoned run (early stop) drain instead of deadlocking
        # the handler thread against a full window.
        slots = threading.Semaphore(window)
        stop = threading.Event()
        self._feeder_stop = stop
        self._feeder_slots = slots

        # Transport accounting re-pickles specs/results on the parent
        # (the pool's own pickling is not observable), so it is paid
        # only when metrics are on.
        measure = obs.is_metrics()
        submit_times: dict[int, float] = {}
        spec_sizes: dict[int, int] = {}
        transport = self._mode
        arena = self._arena
        # Per-run token: a slot write from an abandoned run's still-
        # draining chunk carries the old token and is dropped on read.
        self._run_token += 1
        token = self._run_token
        # One slot per in-flight-window entry.  A slot is reusable the
        # moment its payload is read (at receive), and the semaphore is
        # released strictly later (at yield), so the free list can
        # never be empty when the feeder pops after an acquire.
        free_slots: deque[int] = (
            deque(range(arena.slot_count)) if arena is not None else deque()
        )
        slot_ids: dict[int, int] = {}

        def feed() -> Iterator[tuple[int, "ChunkSpec | ShmChunkSpec"]]:
            for index, spec in enumerate(specs):
                slots.acquire()
                if stop.is_set():
                    return
                payload: ChunkSpec | ShmChunkSpec = spec
                if arena is not None:
                    slot_id = free_slots.popleft()
                    slot_ids[index] = slot_id
                    payload = self._header_for(spec, slot_id)
                submit_times[index] = time.perf_counter()
                if measure:
                    spec_sizes[index] = len(pickle.dumps(payload))
                yield index, payload

        reorder: dict[int, tuple[ChunkResult, float, int]] = {}
        next_index = 0
        try:
            for index, result in self._pool.imap_unordered(
                _indexed_run_chunk, feed()
            ):
                received = time.perf_counter()
                result_bytes = len(pickle.dumps(result)) if measure else 0
                if arena is not None:
                    slot_id = slot_ids.pop(index, -1)
                    if result.slot_payload and slot_id >= 0:
                        payload_bytes = arena.read_slot(slot_id, token)
                        spans: tuple = ()
                        metrics: tuple = ()
                        if payload_bytes is not None:
                            try:
                                spans, metrics = pickle.loads(payload_bytes)
                            except Exception:
                                # Telemetry is lossy by design; counts
                                # never travel through slots.
                                spans, metrics = (), ()
                            if measure:
                                obs.counter(
                                    "repro_shm_slot_payload_bytes_total"
                                ).inc(len(payload_bytes))
                        result = replace(
                            result,
                            spans=tuple(spans),
                            metrics=tuple(metrics),
                            slot_payload=False,
                        )
                    if slot_id >= 0:
                        free_slots.append(slot_id)
                reorder[index] = (result, received, result_bytes)
                # A slot is freed only when its result is *yielded*, not
                # when it lands in the reorder buffer: results parked
                # behind a slow head-of-line chunk keep holding slots,
                # so (running + buffered) never exceeds the window and
                # the early-stop overrun bound is strict, not
                # best-effort.  No deadlock: the feeder submits in
                # order, so the chunk `next_index` waits for is always
                # already in flight or buffered.
                while next_index in reorder:
                    buffered, received_at, in_bytes = reorder.pop(
                        next_index
                    )
                    yield self._finalize(
                        buffered,
                        submitted=submit_times.pop(
                            next_index, received_at
                        ),
                        received=received_at,
                        spec_bytes=spec_sizes.pop(next_index, 0),
                        result_bytes=in_bytes,
                        transport=transport,
                    )
                    next_index += 1
                    slots.release()
        finally:
            # Close over this run's own primitives: an abandoned older
            # generator being finalized must never trip a newer run's
            # stop event or semaphore.
            stop.set()
            slots.release()
            if self._feeder_stop is stop:
                self._feeder_stop = None
                self._feeder_slots = None
