"""Parallel Monte-Carlo collection engine (sinter-style batch sampling).

Compile once, sample everywhere: the engine amortizes Algorithm 1's
Initialization through a fingerprint-keyed sampler cache, fans a task's
shot budget out across worker processes in reproducible chunks, stops
early once enough logical errors have accumulated, and persists rows to
a resumable JSONL result store.

Typical use::

    from repro.engine import Task, collect

    tasks = [Task(circuit, decoder="matching", max_shots=100_000,
                  max_errors=500, metadata={"d": 5, "p": 0.01})]
    for stats in collect(tasks, workers=4, store="results.jsonl"):
        print(stats.metadata, stats.error_rate, stats.wilson())

or from the command line: ``python -m repro collect --help``.
"""

from repro.engine.adaptive import AdaptiveChunkSizer
from repro.engine.cache import SamplerCache, shared_cache
from repro.engine.collector import ResultStore, TaskStats, collect, fresh_base_seed
from repro.engine.faults import FaultClause, FaultInjected, FaultPlan
from repro.engine.options import ExecutionOptions
from repro.engine.tasks import Task
from repro.engine.workers import (
    TRANSPORTS,
    ChunkResult,
    ChunkRunner,
    ChunkSpec,
    plan_chunks,
    plan_chunks_adaptive,
    run_chunk,
    warm_spec,
)

__all__ = [
    "AdaptiveChunkSizer",
    "ChunkResult",
    "ChunkRunner",
    "ChunkSpec",
    "ExecutionOptions",
    "FaultClause",
    "FaultInjected",
    "FaultPlan",
    "ResultStore",
    "SamplerCache",
    "TRANSPORTS",
    "Task",
    "TaskStats",
    "collect",
    "fresh_base_seed",
    "plan_chunks",
    "plan_chunks_adaptive",
    "run_chunk",
    "shared_cache",
    "warm_spec",
]
