"""Adaptive chunk sizing: a latency-target feedback controller.

Fixed ``chunk_shots`` forces one choice onto every (circuit, machine)
pair: too small and per-chunk scheduling overhead (headers, queue hops,
reorder bookkeeping) dominates; too big and the bounded in-flight
window stalls on a handful of long chunks while the early-stop overrun
grows.  :class:`AdaptiveChunkSizer` closes the loop the ``--profile``
timings already measure: it tracks the observed shots-per-second per
chunk as an EWMA and steers the next chunk's shot count toward a target
per-chunk latency, clamped to ``[min_shots, max_shots]`` and rate-limited
to at most ``max_step``× growth or shrink per observation so one noisy
chunk cannot slam the size across its whole range.

Adaptive sizing changes *which* shots are drawn (exactly like passing a
different ``chunk_shots`` — the derived-seed scheme keys the RNG per
chunk), so it is opt-in via ``ExecutionOptions.adaptive_chunks`` and
runs that share a result store should keep it consistently on or off.
Counts remain valid Monte-Carlo samples either way; serial-vs-pooled
bitwise identity applies to the fixed-size protocol.
"""

from __future__ import annotations

import threading


class AdaptiveChunkSizer:
    """Steer chunk shot counts toward a target per-chunk latency.

    Thread-safe: the collector observes finished chunks on the consumer
    side while the runner's feeder thread asks for the next size.
    """

    def __init__(
        self,
        initial: int,
        target_seconds: float = 0.25,
        min_shots: int = 256,
        max_shots: int = 65_536,
        smoothing: float = 0.5,
        max_step: float = 2.0,
    ):
        if target_seconds <= 0:
            raise ValueError("target_seconds must be positive")
        if not 1 <= min_shots <= max_shots:
            raise ValueError("need 1 <= min_shots <= max_shots")
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        if max_step <= 1:
            raise ValueError("max_step must exceed 1")
        self.target_seconds = target_seconds
        self.min_shots = min_shots
        self.max_shots = max_shots
        self.smoothing = smoothing
        self.max_step = max_step
        self._lock = threading.Lock()
        self._shots = self._clamp(initial)
        self._rate: float | None = None  # EWMA shots/sec
        self.observations = 0

    def _clamp(self, shots: float) -> int:
        return int(min(max(shots, self.min_shots), self.max_shots))

    def next_shots(self) -> int:
        """The size the next planned chunk should use."""
        with self._lock:
            return self._shots

    def observe(self, shots: int, seconds: float) -> None:
        """Fold one finished chunk's (shots, in-worker seconds) in."""
        if shots <= 0 or seconds <= 0:
            return
        rate = shots / seconds
        with self._lock:
            self.observations += 1
            if self._rate is None:
                self._rate = rate
            else:
                self._rate = (
                    self.smoothing * rate + (1 - self.smoothing) * self._rate
                )
            ideal = self._rate * self.target_seconds
            stepped = min(
                max(ideal, self._shots / self.max_step),
                self._shots * self.max_step,
            )
            self._shots = self._clamp(stepped)
