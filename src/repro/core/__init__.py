"""The paper's contribution: phase symbolization (Algorithm 1).

:class:`SymPhaseSimulator` traverses a noisy stabilizer circuit **once**,
accumulating every potential Pauli fault and every random-measurement
coin as a bit-symbol in the phases of the stabilizer tableau.  Each
measurement outcome comes out as a bit-vector over those symbols;
:class:`CompiledSampler` then draws any number of samples as a GF(2)
matrix product (Eq. 4) without touching the circuit again.
"""

from repro.core.compiled_sampler import CompiledSampler, compile_sampler
from repro.core.expression import SymbolicExpression
from repro.core.phase_matrix import PhaseMatrix
from repro.core.simulator import SymPhaseSimulator
from repro.core.symbols import SymbolInfo, SymbolTable
from repro.core.verification import (
    concrete_replay,
    random_assignment,
    substituted_record,
)

__all__ = [
    "concrete_replay",
    "random_assignment",
    "substituted_record",
    "CompiledSampler",
    "PhaseMatrix",
    "SymbolicExpression",
    "SymbolInfo",
    "SymbolTable",
    "SymPhaseSimulator",
    "compile_sampler",
]
