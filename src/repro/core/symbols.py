"""Symbol allocation and joint sampling of symbol values.

Symbol index 0 is the constant 1 (the paper's ``s_0``); real symbols are
numbered from 1.  Symbols are allocated in *groups* (one group per noise
site or per random measurement) carrying the joint categorical
distribution over the group's bit patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gf2 import bitops
from repro.noise.channels import SymbolGroup, sample_patterns_batch


@dataclass(frozen=True)
class SymbolInfo:
    """Provenance of one symbol (for readable expressions / fault analysis)."""

    index: int
    kind: str  # "noise" or "measurement"
    label: str  # e.g. "X[q3]" or "M[q0]#5"


class SymbolTable:
    """Allocates bit-symbols and samples their joint values."""

    def __init__(self) -> None:
        self.groups: list[SymbolGroup] = []
        self.group_offsets: list[int] = []  # first symbol index of each group
        self.infos: list[SymbolInfo] = []  # one per symbol, in index order
        self.n_symbols = 0  # excludes the constant s_0

    def allocate(self, group: SymbolGroup, labels: list[str] | None = None) -> range:
        """Allocate ``group.n_symbols`` fresh symbols; returns their indices."""
        first = self.n_symbols + 1
        self.groups.append(group)
        self.group_offsets.append(first)
        for j in range(group.n_symbols):
            label = labels[j] if labels else f"s{first + j}"
            self.infos.append(SymbolInfo(first + j, group.kind, label))
        self.n_symbols += group.n_symbols
        return range(first, first + group.n_symbols)

    @property
    def width(self) -> int:
        """Bit-vector width n_s + 1 (constant included)."""
        return self.n_symbols + 1

    def label(self, index: int) -> str:
        if index == 0:
            return "1"
        return self.infos[index - 1].label

    def noise_symbol_indices(self) -> np.ndarray:
        """Indices of all noise-induced symbols."""
        return np.array(
            [info.index for info in self.infos if info.kind == "noise"],
            dtype=np.int64,
        )

    # -- sampling (the "b" vectors of §3.2.3) ------------------------------

    def sample_symbol_major(
        self, n_shots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample all symbols for ``n_shots`` shots, bit-packed across shots.

        Returns a packed matrix of shape ``(width, words_for(n_shots))``;
        row ``j`` holds symbol ``j``'s value in every shot (row 0 is the
        constant, all ones).

        Groups sharing one joint distribution (e.g. every DEPOLARIZE1(p)
        site in the circuit) are drawn in a single vectorized call, so
        the cost is dominated by the random bits themselves rather than
        per-site Python overhead.
        """
        n_words = bitops.words_for(n_shots)
        out = np.zeros((self.width, n_words), dtype=np.uint64)
        # Constant row: exactly n_shots ones (padding must stay clear so
        # parity-based reductions see no garbage).
        out[0] = bitops.pack_bits(np.ones(n_shots, dtype=np.uint8))

        measurement_rows = [
            offset
            for group, offset in zip(self.groups, self.group_offsets)
            if group.kind == "measurement"
        ]
        if measurement_rows:
            out[measurement_rows] = bitops.random_packed(
                (len(measurement_rows), n_words), n_shots, rng
            )

        # Cluster noise groups by their joint distribution.
        clusters: dict[tuple[float, ...], list[int]] = {}
        for index, group in enumerate(self.groups):
            if group.kind != "measurement":
                clusters.setdefault(group.probabilities, []).append(index)

        # Bound the uniform-draw slab to ~4M elements so the temporaries
        # stay cache/page friendly even for millions of noise sites.
        max_slab_rows = max(1, 4_000_000 // max(n_shots, 1))
        for probabilities, indices in clusters.items():
            n_symbols = self.groups[indices[0]].n_symbols
            offsets = np.array(
                [self.group_offsets[gi] for gi in indices], dtype=np.int64
            )
            for start in range(0, len(indices), max_slab_rows):
                chunk = offsets[start: start + max_slab_rows]
                patterns = sample_patterns_batch(
                    probabilities, (chunk.size, n_shots), rng
                )
                for j in range(n_symbols):
                    bits = (patterns >> j) & 1
                    out[chunk + j] = bitops.pack_rows(bits)
        return out

    def sample_shot_major(
        self, n_shots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Same sample, packed across symbols: shape (n_shots, words_for(width)).

        This is the layout Eq. 4's dense matmul consumes.
        """
        from repro.gf2.transpose import transpose_bitmatrix

        symbol_major = self.sample_symbol_major(n_shots, rng)
        return transpose_bitmatrix(symbol_major, self.width, n_shots)
