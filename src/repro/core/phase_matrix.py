"""Growable bit-packed storage for the symbolic phase block.

One row per tableau row; column ``j`` is the coefficient of symbol
``s_j`` (column 0 = the constant ``s_0``).  This is the ``R̄ | R`` block
of the paper's Eq. (3), stored packed in uint64 words with amortized
doubling as the circuit allocates symbols.
"""

from __future__ import annotations

import numpy as np

from repro.gf2 import bitops

_U64 = np.uint64


class PhaseMatrix:
    """Packed (n_rows x width) GF(2) matrix with cheap row operations."""

    def __init__(self, n_rows: int, initial_words: int = 1):
        if n_rows < 1:
            raise ValueError("PhaseMatrix needs at least one row")
        self.n_rows = n_rows
        self.words = np.zeros((n_rows, max(initial_words, 1)), dtype=_U64)
        self.width = 1  # bits in use: the constant column only, initially

    @property
    def capacity_bits(self) -> int:
        return self.words.shape[1] * bitops.WORD_BITS

    def ensure_width(self, width: int) -> None:
        """Grow storage so bit index ``width - 1`` is addressable."""
        if width > self.capacity_bits:
            new_words = max(self.words.shape[1] * 2, bitops.words_for(width))
            grown = np.zeros((self.n_rows, new_words), dtype=_U64)
            grown[:, : self.words.shape[1]] = self.words
            self.words = grown
        self.width = max(self.width, width)

    # -- row updates (all accept an index array of rows) --------------------

    def xor_constant(self, rows: np.ndarray) -> None:
        """Flip the constant bit of the given rows (a concrete sign flip)."""
        self.words[rows, 0] ^= _U64(1)

    def xor_symbol(self, rows: np.ndarray, symbol: int) -> None:
        """XOR symbol ``s_symbol`` into the phases of the given rows."""
        self.ensure_width(symbol + 1)
        word, mask = bitops.bit_to_word(symbol)
        self.words[rows, word] ^= mask

    def xor_rows(self, dst_rows: np.ndarray, src_row: int) -> None:
        """Phase(dst) ^= Phase(src) for every dst (symbolic rowsum part)."""
        self.words[dst_rows] ^= self.words[src_row]

    def xor_vector(self, rows: np.ndarray, vector: np.ndarray) -> None:
        """XOR a packed phase vector into the given rows (symbolic-exponent
        conditional Pauli — the paper's §6 extension)."""
        n = vector.shape[0]
        if n > self.words.shape[1]:
            self.ensure_width(n * bitops.WORD_BITS)
        self.words[np.asarray(rows)[:, None], np.arange(n)[None, :]] ^= vector

    def copy_row(self, src: int, dst: int) -> None:
        self.words[dst] = self.words[src]

    def clear_row(self, row: int) -> None:
        self.words[row] = 0

    def row_vector(self, row: int) -> np.ndarray:
        """Packed copy of one row, trimmed to the words covering ``width``."""
        return self.words[row, : bitops.words_for(self.width)].copy()

    def row_support(self, row: int) -> np.ndarray:
        """Symbol indices with non-zero coefficient in this row."""
        bits = bitops.unpack_bits(self.words[row], self.width)
        return np.nonzero(bits)[0]
