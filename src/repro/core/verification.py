"""Concrete replay: the executable form of the paper's central claim.

Phase symbolization asserts that for *any* assignment of bit values to
the symbols, substituting into the symbolic measurement expressions
yields exactly the record a concrete simulation would produce when

* every noise site applies the Pauli pattern selected by its symbols, and
* every random measurement returns its symbol's value.

:func:`concrete_replay` performs that concrete simulation (single shot,
A-G tableau) and :func:`substituted_record` performs the substitution;
equality of the two, for all assignments, is the linearity property the
test suite checks exhaustively on random circuits.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.core.simulator import SymPhaseSimulator
from repro.gf2 import bitops
from repro.noise.channels import noise_groups
from repro.tableau.simulator import TableauSimulator


def substituted_record(
    simulator: SymPhaseSimulator, assignment: np.ndarray
) -> np.ndarray:
    """Evaluate every measurement expression at a symbol assignment.

    ``assignment`` is a uint8 vector of length ``simulator.symbols.width``
    whose entry 0 (the constant) must be 1.
    """
    assignment = np.asarray(assignment, dtype=np.uint8) & 1
    if assignment.size != simulator.symbols.width:
        raise ValueError(
            f"assignment length {assignment.size} != width "
            f"{simulator.symbols.width}"
        )
    if assignment[0] != 1:
        raise ValueError("assignment[0] is the constant symbol and must be 1")
    out = np.zeros(simulator.num_measurements, dtype=np.uint8)
    for k, vector in enumerate(simulator.measurements):
        bits = bitops.unpack_bits(vector, min(assignment.size, vector.size * 64))
        out[k] = int(bits @ assignment[: bits.size]) & 1
    return out


def concrete_replay(
    circuit: Circuit,
    simulator: SymPhaseSimulator,
    assignment: np.ndarray,
) -> np.ndarray:
    """Single-shot concrete simulation pinned to a symbol assignment.

    Fault patterns and random-measurement outcomes are read from
    ``assignment`` in the same order Algorithm 1 allocated the symbols
    (valid because A-G's control flow is phase-independent — Fact 2).
    """
    assignment = np.asarray(assignment, dtype=np.uint8) & 1
    table = simulator.symbols
    group_pointer = 0

    def next_group():
        nonlocal group_pointer
        group = table.groups[group_pointer]
        offset = table.group_offsets[group_pointer]
        group_pointer += 1
        return group, offset

    def random_outcome() -> int:
        group, offset = next_group()
        if group.kind != "measurement":
            raise AssertionError(
                "symbol allocation order diverged between symbolic and "
                "concrete execution"
            )
        return int(assignment[offset])

    concrete = TableauSimulator(max(circuit.n_qubits, 1))
    for instruction in circuit.flattened():
        gate = instruction.gate
        if gate.kind == "noise":
            for group in noise_groups(instruction):
                expected, offset = next_group()
                if expected.kind != "noise":
                    raise AssertionError("group order diverged")
                pattern = 0
                for j in range(group.n_symbols):
                    pattern |= int(assignment[offset + j]) << j
                concrete.apply_fault_pattern(group, pattern)
        else:
            concrete.do_instruction(instruction, force_random_outcomes=random_outcome)
    return np.array(concrete.record, dtype=np.uint8)


def random_assignment(
    simulator: SymPhaseSimulator, rng: np.random.Generator
) -> np.ndarray:
    """A uniformly random symbol assignment (constant bit forced to 1)."""
    assignment = rng.integers(
        0, 2, size=simulator.symbols.width, dtype=np.uint8
    )
    assignment[0] = 1
    return assignment
