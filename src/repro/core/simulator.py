"""Algorithm 1: the tableau simulator with symbolic phases.

One forward traversal of the circuit executes the three initialization
rules of §3.2.2:

* **Init-C** — Clifford gates update the X/Z bit blocks exactly as in
  Aaronson–Gottesman; deterministic sign flips land in the constant
  column of the phase matrix.
* **Init-P** — each Pauli-fault site allocates fresh bit-symbols and
  XORs them into the phases of the rows the fault anticommutes with.
* **Init-M** — measurements run A-G's control flow (which never inspects
  phases — Fact 2); random outcomes mint a fresh fair-coin symbol ``s``
  and apply ``X^s``, determinate outcomes are read off as the XOR of
  stabilizer-row phase vectors.

Resets use the paper's §6 extension: a conditional Pauli whose exponent
is the *symbolic* measurement expression.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.instructions import Instruction, RecTarget
from repro.core.phase_matrix import PhaseMatrix
from repro.core.symbols import SymbolTable
from repro.gates.database import get_gate
from repro.gf2 import bitops
from repro.noise.channels import measurement_group, noise_groups
from repro.tableau.tableau import g_exponents

_BASIS_CONJUGATION = {"X": "H", "Y": "H_YZ"}
_FEEDBACK_LETTER = {"CX": "X", "CY": "Y", "CZ": "Z"}


class SymPhaseSimulator:
    """Builds symbolic measurement expressions in one circuit traversal."""

    def __init__(self, n_qubits: int):
        if n_qubits < 1:
            raise ValueError("need at least one qubit")
        n = n_qubits
        self.n = n
        self.xs = np.zeros((2 * n, n), dtype=np.uint8)
        self.zs = np.zeros((2 * n, n), dtype=np.uint8)
        idx = np.arange(n)
        self.xs[idx, idx] = 1
        self.zs[n + idx, idx] = 1
        self.phases = PhaseMatrix(2 * n)
        self.symbols = SymbolTable()
        self.measurements: list[np.ndarray] = []  # packed bit-vectors
        self.detectors: list[np.ndarray] = []  # absolute measurement indices
        self.observables: dict[int, list[int]] = {}

    # -- public API ------------------------------------------------------

    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "SymPhaseSimulator":
        """Run the Initialization procedure of Algorithm 1 on a circuit."""
        sim = cls(max(circuit.n_qubits, 1))
        sim.run(circuit)
        return sim

    def run(self, circuit: Circuit) -> None:
        for instruction in circuit.flattened():
            self.do_instruction(instruction)

    @property
    def num_measurements(self) -> int:
        return len(self.measurements)

    def measurement_support(self, index: int) -> np.ndarray:
        """Symbol indices appearing in measurement ``index``'s expression."""
        vec = self.measurements[index]
        bits = bitops.unpack_bits(vec, min(self.symbols.width, vec.size * 64))
        return np.nonzero(bits)[0]

    def measurement_expression(self, index: int) -> str:
        """Human-readable symbolic expression, e.g. ``"s3 ^ s5"``."""
        support = self.measurement_support(index)
        if support.size == 0:
            return "0"
        return " ^ ".join(self.symbols.label(int(s)) for s in support)

    def expression(self, index: int):
        """Measurement ``index`` as a :class:`SymbolicExpression` object."""
        from repro.core.expression import SymbolicExpression

        return SymbolicExpression(self.measurements[index].copy(), self.symbols)

    def detector_expression(self, index: int):
        """Detector ``index`` as a :class:`SymbolicExpression` object."""
        from repro.core.expression import SymbolicExpression

        out = SymbolicExpression.zero(self.symbols)
        for measurement in self.detectors[index]:
            out = out ^ self.expression(int(measurement))
        return out

    # -- instruction dispatch ------------------------------------------------

    def do_instruction(self, instruction: Instruction) -> None:
        gate = instruction.gate
        if gate.is_unitary:
            if any(isinstance(t, RecTarget) for t in instruction.targets):
                self._apply_feedback(instruction)
            else:
                self._apply_gate(gate.name, instruction.targets)
        elif gate.kind == "measure":
            for qubit in instruction.targets:
                self.measurements.append(self._measure(qubit, gate.basis))
        elif gate.kind == "reset":
            for qubit in instruction.targets:
                self._reset(qubit, gate.basis, record=False)
        elif gate.kind == "measure_reset":
            for qubit in instruction.targets:
                self._reset(qubit, gate.basis, record=True)
        elif gate.kind == "noise":
            self._apply_noise(instruction)
        elif gate.kind == "annotation":
            self._process_annotation(instruction)
        else:
            raise ValueError(f"unhandled instruction kind {gate.kind!r}")

    # -- Init-C: Clifford gates --------------------------------------------

    def _apply_gate(self, name: str, targets: tuple[int, ...]) -> None:
        table = get_gate(name).table
        if table.n_qubits == 1:
            for qubit in targets:
                x, z = self.xs[:, qubit], self.zs[:, qubit]
                nx, nz, flip = table.apply_1q(x, z)
                self.xs[:, qubit] = nx
                self.zs[:, qubit] = nz
                flipped = np.nonzero(flip)[0]
                if flipped.size:
                    self.phases.xor_constant(flipped)
        else:
            for a, b in zip(targets[0::2], targets[1::2]):
                x1, z1 = self.xs[:, a], self.zs[:, a]
                x2, z2 = self.xs[:, b], self.zs[:, b]
                nx1, nz1, nx2, nz2, flip = table.apply_2q(x1, z1, x2, z2)
                self.xs[:, a] = nx1
                self.zs[:, a] = nz1
                self.xs[:, b] = nx2
                self.zs[:, b] = nz2
                flipped = np.nonzero(flip)[0]
                if flipped.size:
                    self.phases.xor_constant(flipped)

    def _apply_feedback(self, instruction: Instruction) -> None:
        """Classically-controlled Pauli: ``P^m`` with a *symbolic* exponent.

        This is exactly the paper's §6 extension — the recorded outcome is
        a bit-vector expression, and the conditional Pauli XORs that whole
        vector into every anticommuting row's phase.
        """
        letter = _FEEDBACK_LETTER[instruction.name]
        targets = instruction.targets
        for control, qubit in zip(targets[0::2], targets[1::2]):
            if isinstance(control, RecTarget):
                index = len(self.measurements) + control.offset
                if index < 0:
                    raise ValueError(
                        f"feedback lookback {control} reaches before the "
                        "first measurement"
                    )
                vector = self.measurements[index]
                rows = self._anticommuting_rows(letter, qubit)
                if rows.size:
                    self.phases.xor_vector(rows, vector)
            else:
                self._apply_gate(instruction.name, (control, qubit))

    # -- Init-P: symbolic Pauli faults ----------------------------------------

    def _anticommuting_rows(self, letter: str, qubit: int) -> np.ndarray:
        if letter == "X":
            mask = self.zs[:, qubit]
        elif letter == "Z":
            mask = self.xs[:, qubit]
        elif letter == "Y":
            mask = self.xs[:, qubit] ^ self.zs[:, qubit]
        else:
            raise ValueError(f"invalid Pauli letter {letter!r}")
        return np.nonzero(mask)[0]

    def apply_symbolic_pauli(self, letter: str, qubit: int, symbol: int) -> None:
        """Apply ``P^s`` — XOR symbol ``s`` into every anticommuting row."""
        rows = self._anticommuting_rows(letter, qubit)
        if rows.size:
            self.phases.xor_symbol(rows, symbol)
        else:
            # Still make the column addressable so sampling stays aligned.
            self.phases.ensure_width(symbol + 1)

    def _apply_noise(self, instruction: Instruction) -> None:
        for group in noise_groups(instruction):
            labels = [
                "*".join(f"{letter}{qubit}" for letter, qubit in action) or "I"
                for action in group.actions
            ]
            indices = self.symbols.allocate(group, labels)
            for symbol, action in zip(indices, group.actions):
                for letter, qubit in action:
                    self.apply_symbolic_pauli(letter, qubit, symbol)

    # -- Init-M: measurements --------------------------------------------------

    def _rowsum_many(self, rows: np.ndarray, src: int) -> None:
        """Symbolic rowsum: phases XOR, plus the deterministic g-phase."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        g_sum = g_exponents(
            self.xs[rows], self.zs[rows], self.xs[src], self.zs[src]
        ).sum(axis=1, dtype=np.int64)
        g_mod4 = g_sum % 4
        if np.any((g_mod4 & 1) & (rows >= self.n)):
            raise AssertionError("odd i-exponent on a stabilizer row")
        self.phases.xor_rows(rows, src)
        const_rows = rows[(g_mod4 >> 1) & 1 == 1]
        if const_rows.size:
            self.phases.xor_constant(const_rows)
        self.xs[rows] ^= self.xs[src]
        self.zs[rows] ^= self.zs[src]

    def _measure_z(self, qubit: int) -> np.ndarray:
        """Measure qubit in Z; returns the outcome's packed bit-vector."""
        n = self.n
        stab_hits = np.nonzero(self.xs[n:, qubit])[0]
        if stab_hits.size:
            p = n + int(stab_hits[0])
            others = np.nonzero(self.xs[:, qubit])[0]
            self._rowsum_many(others[others != p], p)
            self.xs[p - n] = self.xs[p]
            self.zs[p - n] = self.zs[p]
            self.phases.copy_row(p, p - n)
            self.xs[p] = 0
            self.zs[p] = 0
            self.zs[p, qubit] = 1
            self.phases.clear_row(p)
            label = f"m{len(self.measurements)}(q{qubit})"
            symbol = self.symbols.allocate(measurement_group(), [label])[0]
            # The symbolic analogue of A-G's coin flip is r_p := s — only
            # the freshly collapsed stabilizer row carries the new symbol.
            # (The paper words this as "apply X^s", but a literal Pauli
            # would also flip every other row containing Z_qubit, which
            # contradicts both the paper's own §3.1 tableau and the true
            # post-measurement state.)
            self.phases.xor_symbol(np.array([p]), symbol)
            vector = np.zeros(bitops.words_for(self.symbols.width), dtype=np.uint64)
            bitops.set_bit(vector, symbol, 1)
            return vector

        # Determinate outcome: product of the stabilizer rows selected by
        # the destabilizer X column (A-G), with symbolic phases XORed.
        hits = np.nonzero(self.xs[:n, qubit])[0] + n
        x = np.zeros(n, dtype=np.uint8)
        z = np.zeros(n, dtype=np.uint8)
        vector = np.zeros(self.phases.words.shape[1], dtype=np.uint64)
        constant = 0
        for row in hits:
            g_sum = int(g_exponents(x, z, self.xs[row], self.zs[row]).sum())
            if g_sum % 2:
                raise AssertionError("odd i-exponent in determinate product")
            constant ^= (g_sum % 4) >> 1
            vector ^= self.phases.words[row]
            x ^= self.xs[row]
            z ^= self.zs[row]
        if constant:
            vector[0] ^= np.uint64(1)
        return vector[: bitops.words_for(self.symbols.width)].copy()

    def _measure(self, qubit: int, basis: str) -> np.ndarray:
        conj = _BASIS_CONJUGATION.get(basis)
        if conj:
            self._apply_gate(conj, (qubit,))
        vector = self._measure_z(qubit)
        if conj:
            self._apply_gate(conj, (qubit,))
        return vector

    def _reset(self, qubit: int, basis: str, record: bool) -> None:
        """Measure, optionally record, then apply the symbolic-exponent
        conditional Pauli that forces the +1 eigenstate (§6 extension)."""
        conj = _BASIS_CONJUGATION.get(basis)
        if conj:
            self._apply_gate(conj, (qubit,))
        vector = self._measure_z(qubit)
        if record:
            self.measurements.append(vector)
        rows = self._anticommuting_rows("X", qubit)
        if rows.size:
            self.phases.xor_vector(rows, vector)
        if conj:
            self._apply_gate(conj, (qubit,))

    # -- annotations -----------------------------------------------------------

    def _resolve_lookbacks(self, targets: tuple) -> list[int]:
        resolved = []
        for target in targets:
            if not isinstance(target, RecTarget):
                raise ValueError("detector targets must be rec[-k]")
            absolute = len(self.measurements) + target.offset
            if absolute < 0:
                raise ValueError(
                    f"lookback {target} reaches before the first measurement"
                )
            resolved.append(absolute)
        return resolved

    def _process_annotation(self, instruction: Instruction) -> None:
        if instruction.name == "DETECTOR":
            self.detectors.append(
                np.array(self._resolve_lookbacks(instruction.targets), dtype=np.int64)
            )
        elif instruction.name == "OBSERVABLE_INCLUDE":
            index = int(instruction.args[0])
            self.observables.setdefault(index, []).extend(
                self._resolve_lookbacks(instruction.targets)
            )
        # TICK / QUBIT_COORDS / SHIFT_COORDS carry no simulation semantics.
