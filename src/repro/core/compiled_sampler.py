"""Sampling measurement outcomes as GF(2) matrix multiplication (Eq. 4).

``CompiledSampler`` freezes the outcome of Algorithm 1's Initialization:
the packed measurement matrix ``M`` (one bit-vector per measurement), the
detector/observable matrices derived from it, and the symbol table.  Each
``sample`` call draws the symbol-value matrix ``B`` and evaluates
``M_samples = M · Bᵀ`` with one of two kernels:

* **dense** — packed parity-of-AND matmul, cost O(n_smp · n_m · n_s / 64);
* **sparse** — per-measurement XOR of the symbol rows of ``B``
  (the paper's sparse implementation), cost O(n_smp · nnz(M) / 64).

``strategy="auto"`` picks sparse when the average support is small, which
is the regime of QEC circuits (each outcome depends on few faults).
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.core.simulator import SymPhaseSimulator
from repro.gf2 import bitops
from repro.gf2.matmul import mul_packed_abt, mul_sparse_columns
from repro.gf2.transpose import transpose_bitmatrix
from repro.rng import as_generator

_SPARSE_SUPPORT_THRESHOLD_FRACTION = 0.125


class CompiledSampler:
    """Reusable sampler for one analyzed circuit."""

    def __init__(self, simulator: SymPhaseSimulator):
        self.symbols = simulator.symbols
        self.width = self.symbols.width
        n_words = bitops.words_for(self.width)

        self.n_measurements = simulator.num_measurements
        self.measurement_matrix = np.zeros(
            (self.n_measurements, n_words), dtype=np.uint64
        )
        for i, vector in enumerate(simulator.measurements):
            self.measurement_matrix[i, : vector.size] = vector

        self.detector_matrix = self._combine(simulator.detectors)
        observable_defs = [
            simulator.observables[k] for k in sorted(simulator.observables)
        ]
        self.observable_matrix = self._combine(observable_defs)

        self._supports: list[np.ndarray] | None = None
        self._derived_matrix: np.ndarray | None = None
        self._derived_supports: list[np.ndarray] | None = None

    def _combine(self, index_lists) -> np.ndarray:
        """XOR measurement rows into derived rows (detectors/observables)."""
        return bitops.xor_select_rows(self.measurement_matrix, index_lists)

    # -- introspection ------------------------------------------------------

    @property
    def n_detectors(self) -> int:
        return self.detector_matrix.shape[0]

    @property
    def n_observables(self) -> int:
        return self.observable_matrix.shape[0]

    def supports(self) -> list[np.ndarray]:
        """Symbol-index support of every measurement (cached)."""
        if self._supports is None:
            self._supports = self._compute_supports(self.measurement_matrix)
        return self._supports

    def _compute_supports(self, matrix: np.ndarray) -> list[np.ndarray]:
        dense = bitops.unpack_rows(matrix, self.width)
        return [np.nonzero(row)[0] for row in dense]

    def _derived(self) -> np.ndarray:
        """Stacked detector+observable matrix (built once, reused)."""
        if self._derived_matrix is None:
            self._derived_matrix = np.concatenate(
                [self.detector_matrix, self.observable_matrix], axis=0
            )
        return self._derived_matrix

    def _supports_for(self, matrix: np.ndarray) -> list[np.ndarray]:
        """Per-row supports with caching for the two standing matrices."""
        if matrix is self.measurement_matrix:
            return self.supports()
        if matrix is self._derived_matrix:
            if self._derived_supports is None:
                self._derived_supports = self._compute_supports(matrix)
            return self._derived_supports
        return self._compute_supports(matrix)

    def average_support(self) -> float:
        if self.n_measurements == 0:
            return 0.0
        return float(np.mean([s.size for s in self.supports()]))

    def choose_strategy(self) -> str:
        """The auto rule: sparse unless supports are a sizable fraction of n_s."""
        if self.width <= 64:
            return "dense"
        threshold = _SPARSE_SUPPORT_THRESHOLD_FRACTION * self.width
        return "sparse" if self.average_support() <= threshold else "dense"

    # -- sampling -------------------------------------------------------------

    def draw_symbols(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Draw the symbol-value matrix B (packed symbol-major).

        Exposed separately because the paper's Table 1 excludes this cost
        from the algorithm comparison (it is identical for every sampler);
        pass the result to :meth:`sample` via ``symbol_values`` to time
        the pure Eq. 4 evaluation.  ``rng`` may be an int seed, a
        Generator, or ``None``.
        """
        return self.symbols.sample_symbol_major(shots, as_generator(rng))

    def sample(
        self,
        shots: int,
        rng: int | np.random.Generator | None = None,
        strategy: str = "auto",
        symbol_values: np.ndarray | None = None,
    ) -> np.ndarray:
        """Sample measurement records: uint8 array of shape (shots, n_m)."""
        return self._sample_rows(
            self.measurement_matrix, shots, rng, strategy, symbol_values
        )

    def sample_detectors(
        self,
        shots: int,
        rng: int | np.random.Generator | None = None,
        strategy: str = "auto",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample detectors and observables with shared symbol values.

        Returns ``(detectors, observables)`` of shapes
        ``(shots, n_det)`` and ``(shots, n_obs)``.
        ``rng`` may be an int seed, a Generator, or ``None``.
        """
        rng = as_generator(rng)
        both = self._sample_rows(self._derived(), shots, rng, strategy)
        return both[:, : self.n_detectors], both[:, self.n_detectors:]

    def sample_detectors_packed(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Packed (detectors, observables), shot-major uint64 rows.

        Via the generic pack-adapter: the detector/observable split is a
        bit-level column slice of the stacked Eq. 4 product, which is
        not word-aligned in general, so this backend samples unpacked
        and packs — identical RNG consumption either way.
        """
        from repro.backends.protocol import pack_detector_samples

        return pack_detector_samples(self, shots, rng)

    def _sample_rows(
        self,
        matrix: np.ndarray,
        shots: int,
        rng: int | np.random.Generator | None,
        strategy: str,
        symbol_values: np.ndarray | None = None,
    ) -> np.ndarray:
        if shots < 1:
            raise ValueError("shots must be positive")
        rng = as_generator(rng)
        if strategy == "auto":
            strategy = self.choose_strategy()
        if symbol_values is None:
            symbol_values = self.symbols.sample_symbol_major(shots, rng)
        if strategy == "dense":
            b_shot_major = transpose_bitmatrix(symbol_values, self.width, shots)
            return mul_packed_abt(b_shot_major, matrix)
        if strategy == "sparse":
            supports = self._supports_for(matrix)
            packed = mul_sparse_columns(supports, symbol_values)
            return np.ascontiguousarray(
                bitops.unpack_rows(
                    transpose_bitmatrix(packed, matrix.shape[0], shots),
                    matrix.shape[0],
                )
            )
        raise ValueError(f"unknown strategy {strategy!r}")


def compile_sampler(circuit: Circuit) -> CompiledSampler:
    """Run Algorithm 1's Initialization on ``circuit`` and return the
    reusable sampler (Algorithm 1's Sampling procedure)."""
    return CompiledSampler(SymPhaseSimulator.from_circuit(circuit))
