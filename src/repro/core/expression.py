"""User-facing symbolic expressions over GF(2).

:class:`SymbolicExpression` wraps the packed bit-vectors the simulator
produces with algebra (XOR, evaluation, substitution) and readable
rendering.  ``SymPhaseSimulator.expression(k)`` returns one per
measurement; detectors and observables compose them with ``^``.
"""

from __future__ import annotations

import numpy as np

from repro.core.symbols import SymbolTable
from repro.gf2 import bitops


class SymbolicExpression:
    """A GF(2) expression: XOR of bit-symbols plus an optional constant."""

    __slots__ = ("vector", "table")

    def __init__(self, vector: np.ndarray, table: SymbolTable):
        self.vector = np.asarray(vector, dtype=np.uint64)
        self.table = table

    # -- construction ----------------------------------------------------

    @classmethod
    def zero(cls, table: SymbolTable) -> "SymbolicExpression":
        return cls(np.zeros(bitops.words_for(table.width), dtype=np.uint64), table)

    @classmethod
    def constant_one(cls, table: SymbolTable) -> "SymbolicExpression":
        out = cls.zero(table)
        bitops.set_bit(out.vector, 0, 1)
        return out

    @classmethod
    def of_symbol(cls, table: SymbolTable, symbol: int) -> "SymbolicExpression":
        if not 0 <= symbol <= table.n_symbols:
            raise ValueError(f"symbol index {symbol} out of range")
        out = cls.zero(table)
        bitops.set_bit(out.vector, symbol, 1)
        return out

    # -- queries -----------------------------------------------------------

    @property
    def support(self) -> np.ndarray:
        """Symbol indices present (index 0 = the constant)."""
        bits = bitops.unpack_bits(
            self.vector, min(self.table.width, self.vector.size * 64)
        )
        return np.nonzero(bits)[0]

    @property
    def is_constant(self) -> bool:
        return bool((self.support <= 0).all())

    @property
    def constant_part(self) -> int:
        return bitops.get_bit(self.vector, 0)

    def evaluate(self, assignment: np.ndarray) -> int:
        """Value under a 0/1 assignment (index 0 must be 1)."""
        assignment = np.asarray(assignment, dtype=np.uint8) & 1
        if assignment.size < self.table.width:
            raise ValueError("assignment too short")
        if assignment[0] != 1:
            raise ValueError("assignment[0] is the constant and must be 1")
        total = 0
        for symbol in self.support:
            total ^= int(assignment[symbol])
        return total

    # -- algebra --------------------------------------------------------------

    def __xor__(self, other: "SymbolicExpression") -> "SymbolicExpression":
        if other.table is not self.table:
            raise ValueError("expressions belong to different symbol tables")
        size = max(self.vector.size, other.vector.size)
        vector = np.zeros(size, dtype=np.uint64)
        vector[: self.vector.size] = self.vector
        vector[: other.vector.size] ^= other.vector
        return SymbolicExpression(vector, self.table)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SymbolicExpression):
            return NotImplemented
        return self.table is other.table and np.array_equal(
            _trimmed(self.vector), _trimmed(other.vector)
        )

    def __hash__(self) -> int:
        return hash(_trimmed(self.vector).tobytes())

    def __bool__(self) -> bool:
        return bool(self.vector.any())

    # -- rendering ---------------------------------------------------------------

    def __str__(self) -> str:
        support = self.support
        if support.size == 0:
            return "0"
        return " ^ ".join(self.table.label(int(s)) for s in support)

    def __repr__(self) -> str:
        return f"SymbolicExpression({str(self)!r})"


def _trimmed(vector: np.ndarray) -> np.ndarray:
    nz = np.nonzero(vector)[0]
    return vector[: int(nz[-1]) + 1] if nz.size else vector[:0]
