"""Name-keyed registry of sampler backends.

The engine (:mod:`repro.engine`), the experiment harness, the CLI and
the examples all select samplers through this registry, so adding a new
backend — say a DEM-direct sampler — is one :func:`register_backend`
call, not a code fork across five layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import repro.obs as obs
from repro.backends.protocol import BackendInfo, Sampler
from repro.circuit.circuit import Circuit


@dataclass(frozen=True)
class Backend:
    """A registered backend: capability info plus its compile entry."""

    info: BackendInfo
    factory: Callable[[Circuit], Sampler]

    def compile(self, circuit: Circuit) -> Sampler:
        """Run this backend's one-time analysis; returns the sampler."""
        with obs.span("backend.compile", backend=self.info.name):
            return self.factory(circuit)


_REGISTRY: dict[str, Backend] = {}
_ALIASES: dict[str, str] = {}


def register_backend(
    info: BackendInfo,
    factory: Callable[[Circuit], Sampler],
    aliases: Iterable[str] = (),
) -> Backend:
    """Register a backend under ``info.name`` (plus optional aliases).

    Re-registering a name replaces it (tests swap in instrumented
    backends); aliases may not shadow a canonical name.
    """
    aliases = tuple(aliases)
    if _ALIASES.get(info.name, info.name) != info.name:
        raise ValueError(
            f"name {info.name!r} is already an alias for "
            f"{_ALIASES[info.name]!r}"
        )
    for alias in aliases:
        if alias in _REGISTRY:
            raise ValueError(f"alias {alias!r} shadows a registered backend")
        if _ALIASES.get(alias, info.name) != info.name:
            raise ValueError(
                f"alias {alias!r} already points to {_ALIASES[alias]!r}"
            )
    backend = Backend(info=info, factory=factory)
    _REGISTRY[info.name] = backend
    for alias in aliases:
        _ALIASES[alias] = info.name
    return backend


def canonical_name(name: str) -> str:
    """Resolve a backend name or alias to its canonical name.

    Raises ``KeyError`` naming the known backends on an unknown name.
    """
    resolved = _ALIASES.get(name, name)
    if resolved not in _REGISTRY:
        known = ", ".join(sorted(set(_REGISTRY) | set(_ALIASES)))
        raise KeyError(f"unknown sampler backend {name!r} (known: {known})")
    return resolved


def get_backend(name: str) -> Backend:
    """Look up a backend by canonical name or alias."""
    return _REGISTRY[canonical_name(name)]


def available_backends() -> tuple[str, ...]:
    """Sorted canonical names of every registered backend."""
    return tuple(sorted(_REGISTRY))


def backend_choices() -> tuple[str, ...]:
    """Canonical names plus aliases (for CLI ``choices=``)."""
    return tuple(sorted(set(_REGISTRY) | set(_ALIASES)))


def compile_backend(circuit: Circuit, backend: str = "frame") -> Sampler:
    """Compile ``circuit`` with the named backend; returns its sampler."""
    return get_backend(backend).compile(circuit)
