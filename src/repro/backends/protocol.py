"""The sampler backend protocol and capability metadata.

Every sampling engine in this package — the compiled frame program, the
interpreted frame baseline, the symbolic Eq. 4 sampler, the per-shot
tableau oracle — is exposed to the engine, experiments, CLI and
examples through one structural interface: ``compile(circuit)`` returns
a :class:`Sampler`, and a :class:`Sampler` answers ``sample`` and
``sample_detectors``.  Capability flags live in :class:`BackendInfo` so
callers can *ask* instead of hard-coding backend names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Sampler(Protocol):
    """What every compiled sampler must answer.

    ``rng`` may be an int seed, a ``numpy.random.Generator``, or
    ``None`` (fresh OS entropy) at every entry point.
    """

    def sample(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Measurement records: uint8 array of shape (shots, n_m)."""
        ...

    def sample_detectors(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(detectors, observables) uint8 arrays of shape (shots, n)."""
        ...


@dataclass(frozen=True)
class BackendInfo:
    """Static capability description of one sampler backend.

    ``rng_stream`` names the RNG consumption scheme: two backends with
    the same non-``None`` token draw from the generator in the same
    order and therefore produce **bitwise-identical** samples for the
    same seed (e.g. compiled and interpreted frame programs).  Distinct
    tokens mean only *distributional* agreement can be expected.

    ``per_shot_cost`` is ``"batch"`` when sampling is vectorized across
    shots and ``"shot"`` when every shot is a full circuit traversal
    (the tableau oracle).  ``oracle`` marks backends meant for
    validation rather than production collection sweeps.
    """

    name: str
    description: str
    compile_once: bool = True
    per_shot_cost: str = "batch"
    rng_stream: str | None = None
    supports_feedback: bool = True
    oracle: bool = False
