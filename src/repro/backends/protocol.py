"""The sampler backend protocol and capability metadata.

Every sampling engine in this package — the compiled frame program, the
interpreted frame baseline, the symbolic Eq. 4 sampler, the per-shot
tableau oracle — is exposed to the engine, experiments, CLI and
examples through one structural interface: ``compile(circuit)`` returns
a :class:`Sampler`, and a :class:`Sampler` answers ``sample`` and
``sample_detectors``.  Capability flags live in :class:`BackendInfo` so
callers can *ask* instead of hard-coding backend names.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

import repro.obs as obs


@runtime_checkable
class Sampler(Protocol):
    """What every compiled sampler must answer.

    ``rng`` may be an int seed, a ``numpy.random.Generator``, or
    ``None`` (fresh OS entropy) at every entry point.
    """

    def sample(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Measurement records: uint8 array of shape (shots, n_m)."""
        ...

    def sample_detectors(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(detectors, observables) uint8 arrays of shape (shots, n)."""
        ...

    def sample_detectors_packed(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(detectors, observables) as packed uint64 matrices.

        The packed wire format: shot-major rows — shape
        ``(shots, words_for(n_detectors))`` and
        ``(shots, words_for(n_observables))`` — little-endian bit order
        within each uint64 word (bit ``i`` of a row is word ``i // 64``,
        position ``i % 64``), padding bits beyond the logical width all
        zero.  Must consume the RNG exactly like ``sample_detectors``,
        so the two views of one seed are bit-for-bit the same sample.
        """
        ...


def pack_detector_samples(
    sampler: Sampler, shots: int, rng: int | np.random.Generator | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Generic pack-adapter: unpacked ``sample_detectors`` + row packing.

    Backends whose samplers do not natively work in the packed domain
    (the per-shot tableau oracle, the symbolic Eq. 4 sampler) implement
    ``sample_detectors_packed`` with this helper; it consumes the RNG
    identically to the unpacked call by construction.
    """
    from repro.gf2.bitops import pack_rows

    detectors, observables = sampler.sample_detectors(shots, rng)
    # The adapter's packing pass is pure overhead a packed-native
    # backend never pays — make it visible so profiles can say "this
    # backend is packing after the fact" instead of hiding it in
    # sample time.
    with obs.span("pack.adapter", shots=shots):
        packed = pack_rows(detectors), pack_rows(observables)
    if obs.is_metrics():
        obs.counter(
            "repro_pack_adapter_shots_total", pid=str(os.getpid())
        ).inc(shots)
    return packed


def packed_detector_samples(
    sampler: Sampler, shots: int, rng: int | np.random.Generator | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Packed samples from *any* sampler, old-protocol ones included.

    Calls ``sample_detectors_packed`` when the sampler answers it and
    falls back to the :func:`pack_detector_samples` adapter otherwise,
    so externally registered samplers that predate the packed protocol
    keep working everywhere the engine and study layers sample packed
    (identical RNG draws either way).
    """
    native = getattr(sampler, "sample_detectors_packed", None)
    if native is not None:
        return native(shots, rng)
    return pack_detector_samples(sampler, shots, rng)


@dataclass(frozen=True)
class BackendInfo:
    """Static capability description of one sampler backend.

    ``rng_stream`` names the RNG consumption scheme: two backends with
    the same non-``None`` token draw from the generator in the same
    order and therefore produce **bitwise-identical** samples for the
    same seed (e.g. compiled and interpreted frame programs).  Distinct
    tokens mean only *distributional* agreement can be expected.

    ``per_shot_cost`` is ``"batch"`` when sampling is vectorized across
    shots and ``"shot"`` when every shot is a full circuit traversal
    (the tableau oracle).  ``oracle`` marks backends meant for
    validation rather than production collection sweeps.

    ``packed_native`` means ``sample_detectors_packed`` never
    materializes unpacked uint8 matrices (the frame backends derive
    detectors in the packed domain end to end); ``False`` means the
    generic :func:`pack_detector_samples` adapter packs an unpacked
    sample.  Either way the packed and unpacked views of one seed are
    bitwise the same sample.
    """

    name: str
    description: str
    compile_once: bool = True
    per_shot_cost: str = "batch"
    rng_stream: str | None = None
    supports_feedback: bool = True
    oracle: bool = False
    packed_native: bool = False
