"""Unified sampler backend protocol + registry.

Compile once, sample anywhere: every backend exposes
``compile(circuit) -> Sampler`` and every sampler answers
``sample(shots, rng)`` and ``sample_detectors(shots, rng)``.  Built-in
backends:

``frame``
    Compiled vectorized frame program
    (:class:`~repro.frame.program.FrameProgram`): one lowering pass,
    then batch propagation with no per-qubit Python dispatch.  The
    fastest general-purpose backend for QEC-scale circuits.
``frame-interp``
    The per-instruction interpreted frame baseline.  Bitwise-identical
    samples to ``frame`` for the same seed (shared ``rng_stream``);
    kept for benchmarking and differential testing.
``symbolic`` (alias ``symphase``)
    The paper's Algorithm 1: phases symbolized once, sampling is a
    GF(2) matrix product (Eq. 4) that never re-traverses the circuit.
    Sampling cost is independent of gate count — it wins on deep
    circuits sampled many times.
``tableau``
    Per-shot Aaronson–Gottesman Monte Carlo.  Exact and
    assumption-free but one full traversal per shot; an oracle for
    validation, not for sweeps.

Selecting by name::

    from repro.backends import compile_backend

    sampler = compile_backend(circuit, "frame")
    detectors, observables = sampler.sample_detectors(10_000, rng)
"""

from repro.backends.protocol import (
    BackendInfo,
    Sampler,
    pack_detector_samples,
    packed_detector_samples,
)
from repro.backends.registry import (
    Backend,
    available_backends,
    backend_choices,
    canonical_name,
    compile_backend,
    get_backend,
    register_backend,
)

__all__ = [
    "Backend",
    "BackendInfo",
    "Sampler",
    "available_backends",
    "backend_choices",
    "canonical_name",
    "compile_backend",
    "get_backend",
    "pack_detector_samples",
    "packed_detector_samples",
    "register_backend",
]


def _compile_frame(circuit):
    from repro.frame import FrameSimulator

    return FrameSimulator(circuit, mode="compiled")


def _compile_frame_interp(circuit):
    from repro.frame import FrameSimulator

    return FrameSimulator(circuit, mode="interpreted")


def _compile_symbolic(circuit):
    from repro.core import compile_sampler

    return compile_sampler(circuit)


def _compile_tableau(circuit):
    from repro.tableau import TableauSampler

    return TableauSampler(circuit)


register_backend(
    BackendInfo(
        name="frame",
        description=(
            "compile-once vectorized Pauli-frame program (fused op list, "
            "packed record buffer, no per-qubit dispatch)"
        ),
        rng_stream="frame",
        packed_native=True,
    ),
    _compile_frame,
)

register_backend(
    BackendInfo(
        name="frame-interp",
        description=(
            "per-instruction interpreted Pauli frames (pre-compilation "
            "baseline; bitwise-identical samples to 'frame')"
        ),
        rng_stream="frame",
        compile_once=False,
        packed_native=True,
    ),
    _compile_frame_interp,
)

register_backend(
    BackendInfo(
        name="symbolic",
        description=(
            "phase symbolization + Eq. 4 GF(2) matmul sampling (the "
            "paper's Algorithm 1; cost independent of gate count)"
        ),
        rng_stream="symbolic",
    ),
    _compile_symbolic,
    aliases=("symphase",),
)

register_backend(
    BackendInfo(
        name="tableau",
        description=(
            "per-shot Aaronson-Gottesman Monte Carlo (exact oracle; one "
            "full traversal per shot)"
        ),
        rng_stream="tableau",
        compile_once=False,
        per_shot_cost="shot",
        oracle=True,
    ),
    _compile_tableau,
)
