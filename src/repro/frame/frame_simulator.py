"""Batch Pauli-frame propagation, vectorized across shots.

Frames are stored bit-packed: ``x_frame[q]`` / ``z_frame[q]`` are uint64
word rows where bit ``k`` belongs to shot ``k``.  One uint64 word
processes 64 shots at a time, mirroring Stim's SIMD batching.

Correctness model (Rall et al. 2019; Gidney 2021):

* a *reference sample* is produced once by a noiseless tableau run with
  random outcomes pinned to 0;
* frames start as a uniformly random Z string (valid: Z stabilizes
  |0...0>), are conjugated through every Clifford gate, XOR-accumulate
  sampled Pauli faults, and flip recorded outcomes via their X part;
* after each measurement or reset the measured qubit's Z frame is
  re-randomized, which reproduces the uniform distribution of
  intrinsically random outcomes.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.instructions import Instruction, RecTarget
from repro.gates.database import get_gate
from repro.gf2 import bitops
from repro.noise.channels import noise_groups, sample_patterns_batch
from repro.rng import as_generator
from repro.tableau.simulator import reference_sample

_BASIS_CONJUGATION = {"X": "H", "Y": "H_YZ"}
_U64 = np.uint64


class FrameSimulator:
    """Samples a noisy circuit by per-batch Pauli-frame propagation."""

    def __init__(self, circuit: Circuit, reference: np.ndarray | None = None):
        self.circuit = circuit
        self.n_qubits = max(circuit.n_qubits, 1)
        # Initialization-time analysis: one noiseless tableau run.
        self.reference = (
            reference if reference is not None else reference_sample(circuit)
        )
        self.instructions = list(circuit.flattened())
        self.detectors, self.observables = _collect_annotations(self.instructions)

    # -- sampling --------------------------------------------------------

    def sample(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Sample measurement records: uint8 array of shape (shots, n_m).

        ``rng`` may be an int seed, a Generator, or ``None``.
        """
        if shots < 1:
            raise ValueError("shots must be positive")
        rng = as_generator(rng)
        n_words = bitops.words_for(shots)
        x_frame = np.zeros((self.n_qubits, n_words), dtype=_U64)
        z_frame = bitops.random_packed(
            (self.n_qubits, n_words), shots, rng
        )
        record_rows: list[np.ndarray] = []

        for instruction in self.instructions:
            self._do(instruction, x_frame, z_frame, record_rows, shots, rng)

        if not record_rows:
            return np.zeros((shots, 0), dtype=np.uint8)
        packed = np.stack(record_rows)  # (n_m, n_words)
        flips = bitops.unpack_rows(packed, shots).T  # (shots, n_m)
        return flips ^ self.reference[None, :]

    def sample_detectors(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Detector and observable samples derived from the measurement
        records (XOR of the referenced outcomes)."""
        records = self.sample(shots, rng)
        detectors = np.zeros((shots, len(self.detectors)), dtype=np.uint8)
        for i, indices in enumerate(self.detectors):
            if len(indices):
                detectors[:, i] = records[:, indices].sum(axis=1) & 1
        observables = np.zeros((shots, len(self.observables)), dtype=np.uint8)
        for i, indices in enumerate(self.observables):
            if len(indices):
                observables[:, i] = records[:, indices].sum(axis=1) & 1
        return detectors, observables

    # -- instruction handlers -----------------------------------------------

    def _do(
        self,
        instruction: Instruction,
        x_frame: np.ndarray,
        z_frame: np.ndarray,
        record_rows: list[np.ndarray],
        shots: int,
        rng: np.random.Generator,
    ) -> None:
        gate = instruction.gate
        if gate.is_unitary:
            if any(isinstance(t, RecTarget) for t in instruction.targets):
                self._apply_feedback(instruction, x_frame, z_frame, record_rows)
            else:
                _apply_unitary(gate.name, instruction.targets, x_frame, z_frame)
        elif gate.kind in ("measure", "reset", "measure_reset"):
            conj = _BASIS_CONJUGATION.get(gate.basis)
            for qubit in instruction.targets:
                if conj:
                    _apply_unitary(conj, (qubit,), x_frame, z_frame)
                if gate.produces_record:
                    record_rows.append(x_frame[qubit].copy())
                if gate.kind in ("reset", "measure_reset"):
                    x_frame[qubit] = 0
                z_frame[qubit] = bitops.random_packed((1, z_frame.shape[1]), shots, rng)[0]
                if conj:
                    _apply_unitary(conj, (qubit,), x_frame, z_frame)
        elif gate.kind == "noise":
            self._apply_noise(instruction, x_frame, z_frame, shots, rng)
        elif gate.kind == "annotation":
            pass
        else:
            raise ValueError(f"unhandled instruction kind {gate.kind!r}")

    def _apply_feedback(
        self,
        instruction: Instruction,
        x_frame: np.ndarray,
        z_frame: np.ndarray,
        record_rows: list[np.ndarray],
    ) -> None:
        """Classically-controlled Pauli under frame semantics.

        The true control bit is ``reference ^ frame_flip``; the reference
        part was already applied during the noiseless reference run, so
        only the recorded *flip* row conditions the frame update — a
        word-wise XOR per shot batch.
        """
        letter = {"CX": "X", "CY": "Y", "CZ": "Z"}[instruction.name]
        targets = instruction.targets
        for control, qubit in zip(targets[0::2], targets[1::2]):
            if isinstance(control, RecTarget):
                flips = record_rows[len(record_rows) + control.offset]
                if letter in ("X", "Y"):
                    x_frame[qubit] = x_frame[qubit] ^ flips
                if letter in ("Z", "Y"):
                    z_frame[qubit] = z_frame[qubit] ^ flips
            else:
                _apply_unitary(
                    instruction.name, (control, qubit), x_frame, z_frame
                )

    def _apply_noise(
        self,
        instruction: Instruction,
        x_frame: np.ndarray,
        z_frame: np.ndarray,
        shots: int,
        rng: np.random.Generator,
    ) -> None:
        groups = noise_groups(instruction)
        if not groups:
            return
        # All sites of one instruction share the same joint distribution,
        # so draw every site's pattern in a single vectorized call.
        all_patterns = sample_patterns_batch(
            groups[0].probabilities, (len(groups), shots), rng
        )
        for group, patterns in zip(groups, all_patterns):
            for j, action in enumerate(group.actions):
                bits = ((patterns >> j) & 1).astype(np.uint8)
                if not bits.any():
                    continue
                packed = bitops.pack_bits(bits)
                for letter, qubit in action:
                    if letter in ("X", "Y"):
                        x_frame[qubit] ^= packed
                    if letter in ("Z", "Y"):
                        z_frame[qubit] ^= packed


@lru_cache(maxsize=None)
def _symplectic(name: str) -> tuple[np.ndarray, int]:
    table = get_gate(name).table
    return table.symplectic_matrix(), table.n_qubits


def _apply_unitary(
    name: str, targets: tuple[int, ...], x_frame: np.ndarray, z_frame: np.ndarray
) -> None:
    """Conjugate the frames through a Clifford gate (phase-free action)."""
    sym, n_qubits = _symplectic(name)
    if n_qubits == 1:
        for qubit in targets:
            x, z = x_frame[qubit], z_frame[qubit]
            new_x = (x if sym[0, 0] else 0) ^ (z if sym[0, 1] else 0)
            new_z = (x if sym[1, 0] else 0) ^ (z if sym[1, 1] else 0)
            x_frame[qubit] = new_x
            z_frame[qubit] = new_z
    else:
        for a, b in zip(targets[0::2], targets[1::2]):
            vec = (x_frame[a], z_frame[a], x_frame[b], z_frame[b])
            new = []
            for i in range(4):
                acc = np.zeros_like(vec[0])
                for j in range(4):
                    if sym[i, j]:
                        acc = acc ^ vec[j]
                new.append(acc)
            x_frame[a], z_frame[a] = new[0], new[1]
            x_frame[b], z_frame[b] = new[2], new[3]


def _collect_annotations(
    instructions: list[Instruction],
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Resolve DETECTOR / OBSERVABLE_INCLUDE lookbacks to absolute indices."""
    measured = 0
    detectors: list[np.ndarray] = []
    observables: dict[int, list[int]] = {}
    for instruction in instructions:
        gate = instruction.gate
        if gate.produces_record:
            measured += len(instruction.targets)
        elif instruction.name == "DETECTOR":
            indices = [
                measured + t.offset
                for t in instruction.targets
                if isinstance(t, RecTarget)
            ]
            detectors.append(np.array(indices, dtype=np.int64))
        elif instruction.name == "OBSERVABLE_INCLUDE":
            observables.setdefault(int(instruction.args[0]), []).extend(
                measured + t.offset
                for t in instruction.targets
                if isinstance(t, RecTarget)
            )
    observable_list = [
        np.array(observables[k], dtype=np.int64) for k in sorted(observables)
    ]
    return detectors, observable_list
