"""Batch Pauli-frame propagation, vectorized across shots.

Frames are stored bit-packed: ``x_frame[q]`` / ``z_frame[q]`` are uint64
word rows where bit ``k`` belongs to shot ``k``.  One uint64 word
processes 64 shots at a time, mirroring Stim's SIMD batching.

Correctness model (Rall et al. 2019; Gidney 2021):

* a *reference sample* is produced once by a noiseless tableau run with
  random outcomes pinned to 0;
* frames start as a uniformly random Z string (valid: Z stabilizes
  |0...0>), are conjugated through every Clifford gate, XOR-accumulate
  sampled Pauli faults, and flip recorded outcomes via their X part;
* after each measurement or reset the measured qubit's Z frame is
  re-randomized, which reproduces the uniform distribution of
  intrinsically random outcomes.

Two execution modes share this model:

* ``mode="compiled"`` (default) lowers the circuit **once** into a
  :class:`~repro.frame.program.FrameProgram` — a fused op list executed
  with no per-qubit Python dispatch;
* ``mode="interpreted"`` re-dispatches every instruction through Python
  on every ``sample`` call (the pre-compilation baseline, kept for
  benchmarking and as a differential-testing oracle).

Both modes consume the RNG in the same order, so their samples are
bitwise identical for the same seed.  Detector and observable
derivation happens in the packed domain for both: an XOR of packed
record rows via precomputed index lists
(:func:`repro.gf2.bitops.xor_select_rows`), never an unpack-and-sum.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.instructions import Instruction, RecTarget
from repro.circuit.transforms import resolve_record_annotations
from repro.frame.program import (
    FrameProgram,
    _symplectic,
    disjoint_runs,
)
from repro.gf2 import bitops
from repro.noise.channels import noise_groups, sample_patterns_batch
from repro.rng import as_generator
from repro.tableau.simulator import reference_sample

_BASIS_CONJUGATION = {"X": "H", "Y": "H_YZ"}
_U64 = np.uint64

_MODES = ("compiled", "interpreted")


class FrameSimulator:
    """Samples a noisy circuit by per-batch Pauli-frame propagation."""

    def __init__(
        self,
        circuit: Circuit,
        reference: np.ndarray | None = None,
        mode: str = "compiled",
    ):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.circuit = circuit
        self.mode = mode
        self.n_qubits = max(circuit.n_qubits, 1)
        # Initialization-time analysis: one noiseless tableau run.
        self.reference = (
            reference if reference is not None else reference_sample(circuit)
        )
        self.instructions = list(circuit.flattened())
        # Only the compiled mode pays the lowering pass; the interpreted
        # baseline resolves annotations directly so its init time really
        # is the pre-compilation cost (bench_frame.py tracks both).
        if mode == "compiled":
            self.program = FrameProgram(circuit, self.instructions)
            self.detectors = self.program.detectors
            self.observables = self.program.observables
        else:
            self.program = None
            self.detectors, self.observables = resolve_record_annotations(
                self.instructions
            )
        # Reference parities per derived row: detector i fires when the
        # XOR of its referenced *outcomes* is 1, i.e. (XOR of flips) ^
        # (XOR of reference bits).  The reference part is a constant.
        self._detector_reference = self._reference_parity(self.detectors)
        self._observable_reference = self._reference_parity(self.observables)

    def _reference_parity(self, index_lists) -> np.ndarray:
        return np.array(
            [
                int(self.reference[indices].sum() & 1) if len(indices) else 0
                for indices in index_lists
            ],
            dtype=np.uint8,
        )

    # -- sampling --------------------------------------------------------

    def sample_packed_flips(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Packed flip rows: uint64 array of shape (n_records, n_words).

        Bit ``k`` of row ``m`` says whether shot ``k`` flips recorded
        outcome ``m`` relative to the reference sample.  This is the
        native output of frame propagation; ``sample`` and
        ``sample_detectors`` are thin views over it.
        """
        if shots < 1:
            raise ValueError("shots must be positive")
        rng = as_generator(rng)
        if self.mode == "compiled":
            return self.program.run(shots, rng)
        return self._run_interpreted(shots, rng)

    def sample(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Sample measurement records: uint8 array of shape (shots, n_m).

        ``rng`` may be an int seed, a Generator, or ``None``.
        """
        packed = self.sample_packed_flips(shots, rng)
        if packed.shape[0] == 0:
            return np.zeros((shots, 0), dtype=np.uint8)
        flips = bitops.unpack_rows(packed, shots).T  # (shots, n_m)
        # The transpose is F-ordered and the XOR ufunc preserves that
        # layout; force C order so row-wise consumers get dense rows.
        return np.ascontiguousarray(flips ^ self.reference[None, :])

    def sample_detectors(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Detector and observable samples, derived in the packed domain.

        Each derived row is an XOR of packed record rows (precomputed
        index lists), plus the constant reference parity.
        """
        packed = self.sample_packed_flips(shots, rng)
        detectors = self._derive(packed, self.detectors,
                                 self._detector_reference, shots)
        observables = self._derive(packed, self.observables,
                                   self._observable_reference, shots)
        return detectors, observables

    def sample_detectors_packed(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Packed detector and observable samples, shot-major.

        The fully packed-domain path: derived rows are XORs of packed
        record rows, the shot-major layout comes from a bit-level
        transpose, and the constant reference parity is one packed-row
        XOR — no uint8 matrix is ever materialized.  Consumes the RNG
        exactly like :meth:`sample_detectors` (one
        ``sample_packed_flips`` draw), so for any seed
        ``unpack_rows(packed_view) == unpacked_view`` bitwise.
        """
        packed = self.sample_packed_flips(shots, rng)
        detectors = self._derive_packed(packed, self.detectors,
                                        self._detector_reference, shots)
        observables = self._derive_packed(packed, self.observables,
                                          self._observable_reference, shots)
        return detectors, observables

    @staticmethod
    def _derive(packed, index_lists, reference_parity, shots) -> np.ndarray:
        derived = bitops.xor_select_rows(packed, index_lists)
        bits = bitops.unpack_rows(derived, shots).T  # (shots, n_rows)
        # Force C order: the transposed unpack is F-ordered and the XOR
        # preserves input layout, but consumers iterate rows (shots).
        return np.ascontiguousarray(bits ^ reference_parity[None, :])

    @staticmethod
    def _derive_packed(packed, index_lists, reference_parity, shots):
        from repro.gf2.transpose import transpose_bitmatrix

        derived = bitops.xor_select_rows(packed, index_lists)
        shot_major = transpose_bitmatrix(derived, len(index_lists), shots)
        reference = bitops.pack_bits(reference_parity)
        if reference.size:
            shot_major ^= reference[None, :]
        return shot_major

    # -- interpreted mode ------------------------------------------------

    def _run_interpreted(
        self, shots: int, rng: np.random.Generator
    ) -> np.ndarray:
        n_words = bitops.words_for(shots)
        x_frame = np.zeros((self.n_qubits, n_words), dtype=_U64)
        z_frame = bitops.random_packed((self.n_qubits, n_words), shots, rng)
        record_rows: list[np.ndarray] = []
        for instruction in self.instructions:
            self._do(instruction, x_frame, z_frame, record_rows, shots, rng)
        if not record_rows:
            return np.zeros((0, n_words), dtype=_U64)
        return np.stack(record_rows)

    # -- instruction handlers -----------------------------------------------

    def _do(
        self,
        instruction: Instruction,
        x_frame: np.ndarray,
        z_frame: np.ndarray,
        record_rows: list[np.ndarray],
        shots: int,
        rng: np.random.Generator,
    ) -> None:
        gate = instruction.gate
        if gate.is_unitary:
            if any(isinstance(t, RecTarget) for t in instruction.targets):
                self._apply_feedback(instruction, x_frame, z_frame, record_rows)
            else:
                _apply_unitary(gate.name, instruction.targets, x_frame, z_frame)
        elif gate.kind in ("measure", "reset", "measure_reset"):
            conj = _BASIS_CONJUGATION.get(gate.basis)
            reset = gate.kind in ("reset", "measure_reset")
            # One packed draw per disjoint run of targets (normally one
            # per instruction) instead of one per qubit.
            for run in disjoint_runs(instruction.targets):
                if conj:
                    _apply_unitary(conj, tuple(run), x_frame, z_frame)
                if gate.produces_record:
                    for qubit in run:
                        record_rows.append(x_frame[qubit].copy())
                idx = np.asarray(run, dtype=np.intp)
                if reset:
                    x_frame[idx] = 0
                z_frame[idx] = bitops.random_packed(
                    (len(run), z_frame.shape[1]), shots, rng
                )
                if conj:
                    _apply_unitary(conj, tuple(run), x_frame, z_frame)
        elif gate.kind == "noise":
            self._apply_noise(instruction, x_frame, z_frame, shots, rng)
        elif gate.kind == "annotation":
            pass
        else:
            raise ValueError(f"unhandled instruction kind {gate.kind!r}")

    def _apply_feedback(
        self,
        instruction: Instruction,
        x_frame: np.ndarray,
        z_frame: np.ndarray,
        record_rows: list[np.ndarray],
    ) -> None:
        """Classically-controlled Pauli under frame semantics.

        The true control bit is ``reference ^ frame_flip``; the reference
        part was already applied during the noiseless reference run, so
        only the recorded *flip* row conditions the frame update — a
        word-wise XOR per shot batch.
        """
        letter = {"CX": "X", "CY": "Y", "CZ": "Z"}[instruction.name]
        targets = instruction.targets
        for control, qubit in zip(targets[0::2], targets[1::2]):
            if isinstance(control, RecTarget):
                flips = record_rows[len(record_rows) + control.offset]
                if letter in ("X", "Y"):
                    x_frame[qubit] = x_frame[qubit] ^ flips
                if letter in ("Z", "Y"):
                    z_frame[qubit] = z_frame[qubit] ^ flips
            else:
                _apply_unitary(
                    instruction.name, (control, qubit), x_frame, z_frame
                )

    def _apply_noise(
        self,
        instruction: Instruction,
        x_frame: np.ndarray,
        z_frame: np.ndarray,
        shots: int,
        rng: np.random.Generator,
    ) -> None:
        groups = noise_groups(instruction)
        if not groups:
            return
        # All sites of one instruction share the same joint distribution,
        # so draw every site's pattern in a single vectorized call.
        all_patterns = sample_patterns_batch(
            groups[0].probabilities, (len(groups), shots), rng
        )
        for group, patterns in zip(groups, all_patterns):
            for j, action in enumerate(group.actions):
                bits = ((patterns >> j) & 1).astype(np.uint8)
                if not bits.any():
                    continue
                packed = bitops.pack_bits(bits)
                for letter, qubit in action:
                    if letter in ("X", "Y"):
                        x_frame[qubit] ^= packed
                    if letter in ("Z", "Y"):
                        z_frame[qubit] ^= packed


def _apply_unitary(
    name: str, targets: tuple[int, ...], x_frame: np.ndarray, z_frame: np.ndarray
) -> None:
    """Conjugate the frames through a Clifford gate (phase-free action).

    Interpreted-mode kernel: loops per qubit / per pair in Python, which
    is exactly the per-batch dispatch cost the compiled
    :class:`~repro.frame.program.FrameProgram` removes.
    """
    sym, n_qubits = _symplectic(name)
    if n_qubits == 1:
        for qubit in targets:
            x, z = x_frame[qubit], z_frame[qubit]
            new_x = (x if sym[0, 0] else 0) ^ (z if sym[0, 1] else 0)
            new_z = (x if sym[1, 0] else 0) ^ (z if sym[1, 1] else 0)
            x_frame[qubit] = new_x
            z_frame[qubit] = new_z
    else:
        for a, b in zip(targets[0::2], targets[1::2]):
            vec = (x_frame[a], z_frame[a], x_frame[b], z_frame[b])
            new = []
            for i in range(4):
                acc = np.zeros_like(vec[0])
                for j in range(4):
                    if sym[i, j]:
                        acc = acc ^ vec[j]
                new.append(acc)
            x_frame[a], z_frame[a] = new[0], new[1]
            x_frame[b], z_frame[b] = new[2], new[3]
