"""Compile-once vectorized frame programs.

:class:`FrameProgram` lowers a flattened :class:`~repro.circuit.circuit.
Circuit` **once** into a short list of fused, batch-vectorized ops; the
``run`` loop then executes a shot batch with no per-qubit Python
dispatch.  This is the frame-backend counterpart of
:class:`~repro.core.compiled_sampler.CompiledSampler`'s one-time
Initialization: all circuit analysis — symplectic actions, record
layout, noise-group decomposition, detector lookback resolution — is
paid at compile time, and sampling reduces to a handful of packed GF(2)
kernel calls per op.

Lowering performs these fusions:

* consecutive unitary instructions with the same gate collapse into one
  op whose precomputed symplectic action is applied to *all* targets at
  once via fancy-indexed packed-row gathers (targets are split into
  maximal disjoint runs so sequential semantics are preserved when a
  qubit repeats);
* unitaries whose symplectic action is the identity (Pauli gates) are
  dropped entirely — they cannot move a frame;
* measurement / reset instructions become one op that records into a
  **preallocated** packed record buffer (no ``list.append`` + ``copy``),
  zeroes reset qubits with one scatter, and re-randomizes all measured
  ``Z`` rows with a single batched draw;
* noise instructions carry pre-resolved symbol groups and pre-built
  XOR-scatter index plans, so each channel costs one vectorized
  categorical draw plus at most ``n_symbols`` packed scatters.

The op stream consumes the RNG in exactly the same order as the
interpreted :class:`~repro.frame.frame_simulator.FrameSimulator` path,
so compiled and interpreted sampling are **bitwise identical** for the
same seed (covered by ``tests/backends/test_equivalence.py``).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.instructions import Instruction, RecTarget
from repro.circuit.transforms import resolve_record_annotations
from repro.gates.database import get_gate
from repro.gf2 import bitops
from repro.noise.channels import noise_groups, sample_patterns_batch
from repro.rng import as_generator

_U64 = np.uint64

_BASIS_CONJUGATION = {"X": "H", "Y": "H_YZ"}
_FEEDBACK_LETTER = {"CX": "X", "CY": "Y", "CZ": "Z"}


@lru_cache(maxsize=None)
def _symplectic(name: str) -> tuple[np.ndarray, int]:
    table = get_gate(name).table
    return table.symplectic_matrix(), table.n_qubits


def disjoint_runs(targets, arity: int = 1) -> list[list]:
    """Split a flat target list into maximal runs with no repeated qubit.

    Gather-compute-scatter application is only equivalent to sequential
    per-target application when no qubit appears twice, so a repeated
    qubit starts a new run.  ``arity=2`` treats targets as (a, b) pairs
    and keeps pairs intact.
    """
    runs: list[list] = []
    current: list = []
    seen: set = set()
    for i in range(0, len(targets), arity):
        group = targets[i:i + arity]
        if any(q in seen for q in group):
            runs.append(current)
            current, seen = [], set()
        current.extend(group)
        seen.update(group)
    if current:
        runs.append(current)
    return runs


class _RunState:
    """Mutable per-batch execution state threaded through the ops."""

    __slots__ = ("x", "z", "record", "shots", "n_words", "rng")

    def __init__(self, x, z, record, shots, n_words, rng):
        self.x = x
        self.z = z
        self.record = record
        self.shots = shots
        self.n_words = n_words
        self.rng = rng


class Unitary1QOp:
    """One single-qubit symplectic action applied to a batch of qubits."""

    __slots__ = ("idx", "s00", "s01", "s10", "s11")

    def __init__(self, sym: np.ndarray, qubits):
        self.idx = np.asarray(qubits, dtype=np.intp)
        self.s00 = bool(sym[0, 0])
        self.s01 = bool(sym[0, 1])
        self.s10 = bool(sym[1, 0])
        self.s11 = bool(sym[1, 1])

    def run(self, st: _RunState) -> None:
        idx = self.idx
        x = st.x[idx]
        z = st.z[idx]
        # An invertible 1q symplectic has at least one term per row.
        new_x = (x ^ z if self.s01 else x) if self.s00 else z
        new_z = (x ^ z if self.s11 else x) if self.s10 else z
        st.x[idx] = new_x
        st.z[idx] = new_z


class Unitary2QOp:
    """One two-qubit symplectic action applied to a batch of pairs."""

    __slots__ = ("a", "b", "rows")

    def __init__(self, sym: np.ndarray, targets):
        self.a = np.asarray(targets[0::2], dtype=np.intp)
        self.b = np.asarray(targets[1::2], dtype=np.intp)
        # rows[i] = input indices feeding output i of (xa, za, xb, zb).
        self.rows = tuple(
            tuple(np.nonzero(sym[i])[0]) for i in range(4)
        )

    def run(self, st: _RunState) -> None:
        vec = (st.x[self.a], st.z[self.a], st.x[self.b], st.z[self.b])
        outs = []
        for terms in self.rows:
            acc = vec[terms[0]]
            for j in terms[1:]:
                acc = acc ^ vec[j]
            outs.append(acc)
        st.x[self.a], st.z[self.a] = outs[0], outs[1]
        st.x[self.b], st.z[self.b] = outs[2], outs[3]


class MeasureResetOp:
    """Batched measurement / reset over a disjoint run of qubits.

    Semantics per qubit (matching the interpreter): basis conjugation,
    record the X row, zero the X row on reset, re-randomize the Z row,
    conjugate back.  All five steps are whole-run array operations; the
    re-randomization is a single packed draw for the whole run.
    """

    __slots__ = ("idx", "conj", "rec_start", "rec_stop", "reset", "produce")

    def __init__(self, qubits, conj_name, rec_start, produce, reset):
        self.idx = np.asarray(qubits, dtype=np.intp)
        self.conj = (
            Unitary1QOp(_symplectic(conj_name)[0], qubits)
            if conj_name else None
        )
        self.produce = produce
        self.rec_start = rec_start
        self.rec_stop = rec_start + (len(qubits) if produce else 0)
        self.reset = reset

    def run(self, st: _RunState) -> None:
        if self.conj is not None:
            self.conj.run(st)
        if self.produce:
            st.record[self.rec_start:self.rec_stop] = st.x[self.idx]
        if self.reset:
            st.x[self.idx] = 0
        st.z[self.idx] = bitops.random_packed(
            (len(self.idx), st.n_words), st.shots, st.rng
        )
        if self.conj is not None:
            self.conj.run(st)


class NoiseOp:
    """One noise instruction with pre-resolved groups and scatter plans.

    ``plans[j]`` drives symbol ``j`` of every site at once: the packed
    fault rows (one per site) are gathered by site index and XOR-scattered
    into the frame rows named by qubit index.  ``safe`` marks scatters
    whose qubit indices are unique, allowing the fast fancy-``^=`` path
    instead of ``np.bitwise_xor.at``.
    """

    __slots__ = ("probabilities", "n_sites", "plans")

    def __init__(self, instruction: Instruction):
        groups = noise_groups(instruction)
        self.n_sites = len(groups)
        self.probabilities = groups[0].probabilities if groups else ()
        n_symbols = groups[0].n_symbols if groups else 0
        plans = []
        for j in range(n_symbols):
            x_sites, x_qubits, z_sites, z_qubits = [], [], [], []
            for site, group in enumerate(groups):
                for letter, qubit in group.actions[j]:
                    if letter in ("X", "Y"):
                        x_sites.append(site)
                        x_qubits.append(qubit)
                    if letter in ("Z", "Y"):
                        z_sites.append(site)
                        z_qubits.append(qubit)
            plans.append((
                self._plan(x_sites, x_qubits),
                self._plan(z_sites, z_qubits),
            ))
        self.plans = tuple(plans)

    @staticmethod
    def _plan(sites, qubits):
        if not qubits:
            return None
        qubit_arr = np.asarray(qubits, dtype=np.intp)
        safe = len(set(qubits)) == len(qubits)
        return np.asarray(sites, dtype=np.intp), qubit_arr, safe

    @staticmethod
    def _scatter(frame, plan, packed):
        sites, qubits, safe = plan
        rows = packed[sites]
        if safe:
            frame[qubits] ^= rows
        else:
            np.bitwise_xor.at(frame, qubits, rows)

    def run(self, st: _RunState) -> None:
        if self.n_sites == 0:
            return
        patterns = sample_patterns_batch(
            self.probabilities, (self.n_sites, st.shots), st.rng
        )
        if not patterns.any():
            return
        for j, (x_plan, z_plan) in enumerate(self.plans):
            bits = (patterns >> j) & 1
            if not bits.any():
                continue
            packed = bitops.pack_rows(bits)
            if x_plan is not None:
                self._scatter(st.x, x_plan, packed)
            if z_plan is not None:
                self._scatter(st.z, z_plan, packed)


class FeedbackOp:
    """Classically-controlled Pauli (``CX rec[-k] q`` and friends).

    Record lookbacks are resolved to absolute record-buffer rows at
    compile time; at run time the control is a single packed row XORed
    into the target frame.  Plain (qubit, qubit) pairs interleaved in
    the same instruction keep their sequential position.
    """

    __slots__ = ("actions",)

    def __init__(self, instruction: Instruction, measured: int):
        letter = _FEEDBACK_LETTER[instruction.name]
        sym = _symplectic(instruction.name)[0]
        targets = instruction.targets
        actions = []
        for control, qubit in zip(targets[0::2], targets[1::2]):
            if isinstance(control, RecTarget):
                actions.append((
                    measured + control.offset,
                    qubit,
                    letter in ("X", "Y"),
                    letter in ("Z", "Y"),
                ))
            else:
                actions.append(Unitary2QOp(sym, (control, qubit)))
        self.actions = tuple(actions)

    def run(self, st: _RunState) -> None:
        for action in self.actions:
            if isinstance(action, Unitary2QOp):
                action.run(st)
                continue
            rec_index, qubit, flip_x, flip_z = action
            flips = st.record[rec_index]
            if flip_x:
                st.x[qubit] ^= flips
            if flip_z:
                st.z[qubit] ^= flips


class FrameProgram:
    """A circuit lowered once into fused, batch-vectorized frame ops.

    ``run(shots, rng)`` executes the op list for one shot batch and
    returns the **packed flip rows** — a ``(n_records, words_for(shots))``
    uint64 matrix whose bit ``k`` of row ``m`` says whether shot ``k``
    flips recorded outcome ``m`` relative to the reference sample.
    """

    def __init__(self, circuit: Circuit, instructions=None):
        if instructions is None:
            instructions = list(circuit.flattened())
        self.n_qubits = max(circuit.n_qubits, 1)
        self.detectors, self.observables = resolve_record_annotations(
            instructions
        )
        self.ops: list = []
        measured = 0
        pending_name: str | None = None
        pending_targets: list = []

        def flush() -> None:
            nonlocal pending_name, pending_targets
            if pending_name is not None:
                self._emit_unitary(pending_name, pending_targets)
            pending_name, pending_targets = None, []

        for instruction in instructions:
            gate = instruction.gate
            if gate.is_unitary:
                if any(isinstance(t, RecTarget) for t in instruction.targets):
                    flush()
                    self.ops.append(FeedbackOp(instruction, measured))
                elif instruction.name == pending_name:
                    pending_targets.extend(instruction.targets)
                else:
                    flush()
                    pending_name = instruction.name
                    pending_targets = list(instruction.targets)
            elif gate.kind in ("measure", "reset", "measure_reset"):
                flush()
                measured = self._emit_measure(gate, instruction, measured)
            elif gate.kind == "noise":
                flush()
                op = NoiseOp(instruction)
                if op.n_sites:
                    self.ops.append(op)
            elif gate.kind == "annotation":
                continue
            else:
                raise ValueError(
                    f"unhandled instruction kind {gate.kind!r}"
                )
        flush()
        self.n_records = measured

    # -- lowering --------------------------------------------------------

    def _emit_unitary(self, name: str, targets: list) -> None:
        sym, n_qubits = _symplectic(name)
        if np.array_equal(sym, np.eye(2 * n_qubits, dtype=sym.dtype)):
            return  # Pauli/identity: no action on frames
        for run in disjoint_runs(targets, arity=n_qubits):
            if n_qubits == 1:
                self.ops.append(Unitary1QOp(sym, run))
            else:
                self.ops.append(Unitary2QOp(sym, run))

    def _emit_measure(self, gate, instruction: Instruction, measured: int) -> int:
        conj_name = _BASIS_CONJUGATION.get(gate.basis)
        produce = gate.produces_record
        reset = gate.kind in ("reset", "measure_reset")
        for run in disjoint_runs(instruction.targets):
            self.ops.append(
                MeasureResetOp(run, conj_name, measured, produce, reset)
            )
            if produce:
                measured += len(run)
        return measured

    # -- execution -------------------------------------------------------

    def run(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Execute one shot batch; returns packed flip rows."""
        if shots < 1:
            raise ValueError("shots must be positive")
        rng = as_generator(rng)
        n_words = bitops.words_for(shots)
        state = _RunState(
            x=np.zeros((self.n_qubits, n_words), dtype=_U64),
            z=bitops.random_packed((self.n_qubits, n_words), shots, rng),
            record=np.zeros((self.n_records, n_words), dtype=_U64),
            shots=shots,
            n_words=n_words,
            rng=rng,
        )
        for op in self.ops:
            op.run(state)
        return state.record


def compile_frame_program(circuit: Circuit) -> FrameProgram:
    """Lower ``circuit`` once into a reusable :class:`FrameProgram`."""
    return FrameProgram(circuit)
