"""Pauli-frame baseline sampler (the algorithm Stim uses).

This is the comparison target of the paper's evaluation: sampling
re-traverses the circuit once per batch, propagating a Pauli *frame*
(the difference between the noisy state and a noiseless reference run)
bit-packed across shots.  Its per-batch cost scales with the gate count
``n_g`` — the term phase symbolization removes.
"""

from repro.frame.frame_simulator import FrameSimulator

__all__ = ["FrameSimulator"]
