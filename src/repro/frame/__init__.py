"""Pauli-frame sampler (the algorithm Stim uses), compiled or interpreted.

This is the comparison target of the paper's evaluation: sampling
re-traverses the circuit once per batch, propagating a Pauli *frame*
(the difference between the noisy state and a noiseless reference run)
bit-packed across shots.  Its per-batch cost scales with the gate count
``n_g`` — the term phase symbolization removes.

The traversal itself comes in two flavours:
:class:`~repro.frame.program.FrameProgram` lowers the circuit once into
a fused, vectorized op list (the default), while ``mode="interpreted"``
keeps the per-instruction Python dispatch as a baseline and
differential-testing oracle.  Both produce bitwise-identical samples
for the same seed.
"""

from repro.frame.frame_simulator import FrameSimulator
from repro.frame.program import FrameProgram, compile_frame_program

__all__ = ["FrameProgram", "FrameSimulator", "compile_frame_program"]
