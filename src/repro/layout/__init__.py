"""Data layouts for the stabilizer tableau bit-matrix (paper §4, Fig. 2).

Three layouts of an N x N bit-matrix, differing in which operations hit
contiguous memory:

* :class:`RowMajorLayout` — chp.c's layout: rows contiguous; row
  operations (measurements) are fast, column operations (gates) strided.
* :class:`TiledLayout` with ``tile=8`` — Stim-like: small square tiles so
  both access patterns are acceptably local; whole-matrix transposes
  swap tiles and transpose each one.
* :class:`TiledLayout` with ``tile=512`` — the paper's layout: large
  blocks kept column-major for gate ops, with *local* (block-level)
  transposition before a burst of measurements instead of a full
  transpose.
"""

from repro.layout.layouts import (
    LayoutBase,
    RowMajorLayout,
    TiledLayout,
    make_layout,
)

__all__ = ["LayoutBase", "RowMajorLayout", "TiledLayout", "make_layout"]
