"""Bit-matrix layout strategies and their operation costs.

All layouts expose the same logical interface over an N x N bit-matrix:
``column_xor`` (the inner loop of tableau *gate* updates), ``row_xor``
(the inner loop of tableau *measurement* updates), and ``set_mode`` to
switch between gate-optimized and measurement-optimized storage.  The
benchmark for the paper's Fig. 2 / §4 measures these per layout.
"""

from __future__ import annotations

import numpy as np

from repro.gf2 import bitops
from repro.gf2.transpose import transpose_bitmatrix

_U64 = np.uint64


class LayoutBase:
    """Common logical interface; subclasses define the storage."""

    name = "abstract"

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("matrix size must be positive")
        self.n = n

    # The two access patterns of tableau simulation:
    def column_xor(self, src: int, dst: int) -> None:
        raise NotImplementedError

    def row_xor(self, src: int, dst: int) -> None:
        raise NotImplementedError

    def set_mode(self, mode: str) -> None:
        """Prepare storage for a burst of "gate" or "measure" operations."""
        raise NotImplementedError

    def to_dense(self) -> np.ndarray:
        raise NotImplementedError

    def load_dense(self, bits: np.ndarray) -> None:
        raise NotImplementedError

    @classmethod
    def random(cls, n: int, rng: np.random.Generator, **kwargs) -> "LayoutBase":
        layout = cls(n, **kwargs) if kwargs else cls(n)
        layout.load_dense((rng.random((n, n)) < 0.5).astype(np.uint8))
        return layout


class RowMajorLayout(LayoutBase):
    """chp.c's layout (Fig. 2a): rows packed contiguously.

    Row operations XOR whole word rows; column operations are masked
    updates down a word column (strided memory).  No mode switches.
    """

    name = "row_major"

    def __init__(self, n: int):
        super().__init__(n)
        self.words = np.zeros((n, bitops.words_for(n)), dtype=_U64)

    def column_xor(self, src: int, dst: int) -> None:
        ws, ms = bitops.bit_to_word(src)
        wd, md = bitops.bit_to_word(dst)
        src_bits = (self.words[:, ws] & ms) != 0
        self.words[src_bits, wd] ^= md

    def row_xor(self, src: int, dst: int) -> None:
        self.words[dst] ^= self.words[src]

    def set_mode(self, mode: str) -> None:
        if mode not in ("gate", "measure"):
            raise ValueError(f"unknown mode {mode!r}")
        # Row-major storage never reorganizes.

    def to_dense(self) -> np.ndarray:
        return bitops.unpack_rows(self.words, self.n)

    def load_dense(self, bits: np.ndarray) -> None:
        self.words = bitops.pack_rows(np.asarray(bits, dtype=np.uint8))


class TiledLayout(LayoutBase):
    """Square-tiled layout (Fig. 2b with tile=8, Fig. 2d with tile=512).

    The matrix is cut into ``tile x tile`` bit blocks.  In **gate** mode
    every block is stored transposed, making logical columns contiguous;
    in **measure** mode blocks are stored straight, making logical rows
    contiguous within each block.  Mode switches are *local* block
    transpositions — never a global transpose (the paper's §4 trick).
    """

    name = "tiled"

    def __init__(self, n: int, tile: int = 512):
        super().__init__(n)
        if tile % 64 != 0:
            raise ValueError("tile size must be a multiple of 64")
        self.tile = tile
        self.n_blocks = (n + tile - 1) // tile
        words_per_row = tile // 64
        self.blocks = np.zeros(
            (self.n_blocks, self.n_blocks, tile, words_per_row), dtype=_U64
        )
        self.mode = "measure"

    # -- mode switching ------------------------------------------------

    def set_mode(self, mode: str) -> None:
        if mode not in ("gate", "measure"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == self.mode:
            return
        for bi in range(self.n_blocks):
            for bj in range(self.n_blocks):
                self.blocks[bi, bj] = transpose_bitmatrix(
                    self.blocks[bi, bj], self.tile, self.tile
                )
        self.mode = mode

    # -- operations -------------------------------------------------------

    def column_xor(self, src: int, dst: int) -> None:
        if self.mode != "gate":
            raise RuntimeError("column_xor requires gate mode")
        bs, ls = divmod(src, self.tile)
        bd, ld = divmod(dst, self.tile)
        # Stored transposed: logical column c is stored row c_local in
        # every block of block-column c // tile.
        self.blocks[:, bd, ld] ^= self.blocks[:, bs, ls]

    def row_xor(self, src: int, dst: int) -> None:
        if self.mode != "measure":
            raise RuntimeError("row_xor requires measure mode")
        bs, ls = divmod(src, self.tile)
        bd, ld = divmod(dst, self.tile)
        self.blocks[bd, :, ld] ^= self.blocks[bs, :, ls]

    # -- conversion ----------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        was_gate = self.mode == "gate"
        if was_gate:
            self.set_mode("measure")
        size = self.n_blocks * self.tile
        dense = np.zeros((size, size), dtype=np.uint8)
        for bi in range(self.n_blocks):
            rows = bitops.unpack_rows(
                self.blocks[bi].transpose(1, 0, 2).reshape(self.tile, -1),
                self.n_blocks * self.tile,
            )
            dense[bi * self.tile: (bi + 1) * self.tile] = rows
        if was_gate:
            self.set_mode("gate")
        return dense[: self.n, : self.n]

    def load_dense(self, bits: np.ndarray) -> None:
        bits = np.asarray(bits, dtype=np.uint8)
        size = self.n_blocks * self.tile
        padded = np.zeros((size, size), dtype=np.uint8)
        padded[: self.n, : self.n] = bits
        packed = bitops.pack_rows(padded)  # (size, size // 64)
        words_per_row = self.tile // 64
        for bi in range(self.n_blocks):
            for bj in range(self.n_blocks):
                self.blocks[bi, bj] = packed[
                    bi * self.tile: (bi + 1) * self.tile,
                    bj * words_per_row: (bj + 1) * words_per_row,
                ]
        self.mode = "measure"


def make_layout(kind: str, n: int) -> LayoutBase:
    """Factory for the three layouts the paper compares."""
    if kind == "chp":
        return RowMajorLayout(n)
    if kind == "stim8":
        return TiledLayout(n, tile=64)  # smallest tile our word size allows
    if kind == "symphase512":
        return TiledLayout(n, tile=512)
    raise ValueError(f"unknown layout kind {kind!r}")
