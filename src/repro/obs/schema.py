"""The span schema, and a validator for exported trace files.

One schema, two file shapes: the JSONL span sink (one
:data:`SPAN_SCHEMA` object per line) and the Chrome trace-event JSON
(``{"traceEvents": [...]}`` of complete events derived from the same
spans).  :func:`validate_trace_file` sniffs which one it was handed and
checks every record, so CI can gate ``repro collect --trace`` output
with::

    python -m repro.obs.schema trace.json

No third-party JSON-Schema engine is involved — the checks are plain
Python over the same field table the docs show, which keeps the
validator importable everywhere the package runs.
"""

from __future__ import annotations

import argparse
import json
import numbers
import sys
from typing import Any

__all__ = ["SPAN_SCHEMA", "validate_chrome_event", "validate_span",
           "validate_trace_file"]

#: Field table of one exported span: name -> (types, required, predicate).
SPAN_SCHEMA: dict[str, tuple] = {
    "name": (str, True, lambda v: len(v) > 0),
    "start": (numbers.Real, True, lambda v: v >= 0),
    "duration": (numbers.Real, True, lambda v: v >= 0),
    "cpu": (numbers.Real, True, lambda v: v >= 0),
    "pid": (int, True, lambda v: v >= 0),
    "tid": (int, True, lambda v: True),
    "span_id": (str, True, lambda v: len(v) > 0),
    "parent_id": ((str, type(None)), False, lambda v: True),
    "attrs": (dict, False, lambda v: all(isinstance(k, str) for k in v)),
}


def _check(obj: dict, schema: dict[str, tuple], where: str) -> None:
    if not isinstance(obj, dict):
        raise ValueError(f"{where}: expected a JSON object, got "
                         f"{type(obj).__name__}")
    for field, (types, required, predicate) in schema.items():
        if field not in obj:
            if required:
                raise ValueError(f"{where}: missing required field "
                                 f"{field!r}")
            continue
        value = obj[field]
        if isinstance(value, bool) and not (
            isinstance(types, tuple) and bool in types
        ):
            # bool is an int subclass; a boolean pid/tid is a bug.
            raise ValueError(f"{where}: field {field!r} has bad type bool")
        if not isinstance(value, types):
            raise ValueError(
                f"{where}: field {field!r} has bad type "
                f"{type(value).__name__}"
            )
        if value is not None and not predicate(value):
            raise ValueError(f"{where}: field {field!r} fails its "
                             f"constraint (got {value!r})")
    unknown = set(obj) - set(schema)
    if unknown:
        raise ValueError(f"{where}: unknown fields {sorted(unknown)}")


def validate_span(obj: Any, where: str = "span") -> None:
    """Raise :class:`ValueError` unless ``obj`` is a valid span dict."""
    _check(obj, SPAN_SCHEMA, where)


_CHROME_EVENT_SCHEMA: dict[str, tuple] = {
    "name": (str, True, lambda v: len(v) > 0),
    "ph": (str, True, lambda v: v == "X"),
    "ts": (numbers.Real, True, lambda v: v >= 0),
    "dur": (numbers.Real, True, lambda v: v >= 0),
    "pid": (int, True, lambda v: v >= 0),
    "tid": (int, True, lambda v: True),
    "args": (dict, False, lambda v: all(isinstance(k, str) for k in v)),
}


def validate_chrome_event(obj: Any, where: str = "event") -> None:
    """Raise :class:`ValueError` unless ``obj`` is a valid complete
    ("X") trace event as this package exports them."""
    _check(obj, _CHROME_EVENT_SCHEMA, where)


def validate_trace_file(path: str) -> int:
    """Validate a trace file (Chrome JSON or spans JSONL) in place.

    Returns the number of validated records; raises
    :class:`ValueError` on the first invalid one (with its location)
    and on files containing no records at all — an empty trace from a
    run that was supposed to be traced is itself a bug.
    """
    with open(path) as handle:
        text = handle.read()
    if not text.strip():
        raise ValueError(f"{path}: empty trace file")
    # One JSON document that parses whole is the Chrome shape (or a
    # single-span JSONL file); anything multi-line that does not parse
    # as one document is treated as JSONL.
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, dict) and "traceEvents" in document:
        events = document["traceEvents"]
        if not isinstance(events, list):
            raise ValueError(f"{path}: traceEvents is not an array")
        for index, event in enumerate(events):
            validate_chrome_event(event, where=f"{path}: traceEvents[{index}]")
        count = len(events)
    elif isinstance(document, dict):
        validate_span(document, where=f"{path}:1")
        count = 1
    elif document is not None:
        raise ValueError(f"{path}: expected a trace object or JSONL spans")
    else:
        count = 0
        for number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            validate_span(json.loads(line), where=f"{path}:{number}")
            count += 1
    if count == 0:
        raise ValueError(f"{path}: trace contains no records")
    return count


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate an exported repro.obs trace file "
                    "(Chrome trace JSON or spans JSONL)."
    )
    parser.add_argument("paths", nargs="+", help="trace file(s) to validate")
    args = parser.parse_args(argv)
    status = 0
    for path in args.paths:
        try:
            count = validate_trace_file(path)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"INVALID {path}: {error}", file=sys.stderr)
            status = 1
        else:
            print(f"ok {path}: {count} record(s)")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
