"""Exporters: JSONL span sink, Chrome trace events, Prometheus text.

Three output formats for the telemetry :mod:`repro.obs` buffers:

* :func:`write_spans_jsonl` — one span-schema JSON object per line
  (machine-diffable, streams well, validated by
  :mod:`repro.obs.schema`);
* :func:`write_chrome_trace` — the Trace Event Format JSON that
  ``chrome://tracing`` / Perfetto load directly: every span becomes a
  complete (``"ph": "X"``) event on its process/thread track, and chunk
  timelines add scheduler-side ``chunk.queue`` / ``chunk.hold`` events
  on a pseudo-track so queue waits and reorder stalls are *visible*
  next to the worker spans they surround;
* :func:`prometheus_text` — the text exposition format of the metrics
  registry, the exact payload a future ``repro serve`` health endpoint
  returns.
"""

from __future__ import annotations

import json
import os
from typing import Iterable

from repro.obs.core import SpanRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import ChunkTimeline

__all__ = [
    "chrome_trace_events",
    "prometheus_text",
    "write_chrome_trace",
    "write_prometheus",
    "write_spans_jsonl",
]


def write_spans_jsonl(
    spans: Iterable[SpanRecord], path: str | os.PathLike
) -> int:
    """Write spans as JSONL (one schema object per line); returns count."""
    count = 0
    with open(path, "w") as handle:
        for record in spans:
            handle.write(json.dumps(record.to_json()) + "\n")
            count += 1
    return count


def chrome_trace_events(
    spans: Iterable[SpanRecord],
    timelines: Iterable[ChunkTimeline] = (),
) -> list[dict]:
    """Spans (+ optional chunk timelines) as Trace Event Format dicts.

    Timestamps are ``perf_counter`` seconds scaled to microseconds —
    the format only needs a consistent timebase, and ``perf_counter``
    is shared across the parent and its workers.
    """
    events = []
    for record in spans:
        events.append(
            {
                "name": record.name,
                "ph": "X",
                "ts": record.start * 1e6,
                "dur": record.duration * 1e6,
                "pid": record.pid,
                "tid": record.tid,
                "args": dict(
                    record.attrs,
                    span_id=record.span_id,
                    parent_id=record.parent_id,
                    cpu_seconds=record.cpu,
                ),
            }
        )
    for timeline in timelines:
        for record in timeline.to_spans():
            events.append(
                {
                    "name": record.name,
                    "ph": "X",
                    "ts": record.start * 1e6,
                    "dur": record.duration * 1e6,
                    "pid": record.pid,
                    "tid": record.tid,
                    "args": dict(record.attrs, span_id=record.span_id),
                }
            )
    return events


def write_chrome_trace(
    spans: Iterable[SpanRecord],
    path: str | os.PathLike,
    timelines: Iterable[ChunkTimeline] = (),
) -> int:
    """Write a ``chrome://tracing``-loadable JSON file; returns the
    number of trace events written."""
    events = chrome_trace_events(spans, timelines)
    with open(path, "w") as handle:
        json.dump(
            {"traceEvents": events, "displayTimeUnit": "ms"},
            handle,
        )
        handle.write("\n")
    return len(events)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _prometheus_labels(labels: dict[str, str], extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update({k: str(v) for k, v in extra.items()})
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format.

    Counters/gauges render one sample per label set; histograms render
    cumulative ``_bucket{le=...}`` samples plus ``_sum`` and
    ``_count``, the standard client-library shape.
    """
    by_name: dict[str, list[dict]] = {}
    for entry in registry.snapshot():
        by_name.setdefault(entry["name"], []).append(entry)
    lines = []
    for name in sorted(by_name):
        entries = by_name[name]
        lines.append(f"# TYPE {name} {entries[0]['kind']}")
        for entry in entries:
            labels = entry["labels"]
            if entry["kind"] == "histogram":
                cumulative = 0
                for bound, count in entry["buckets"]:
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_prometheus_labels(labels, {'le': repr(bound)})}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_bucket"
                    f"{_prometheus_labels(labels, {'le': '+Inf'})}"
                    f" {entry['count']}"
                )
                lines.append(
                    f"{name}_sum{_prometheus_labels(labels)} {entry['sum']}"
                )
                lines.append(
                    f"{name}_count{_prometheus_labels(labels)} "
                    f"{entry['count']}"
                )
            else:
                lines.append(
                    f"{name}{_prometheus_labels(labels)} {entry['value']}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    registry: MetricsRegistry, path: str | os.PathLike
) -> None:
    """Write :func:`prometheus_text` to ``path``."""
    with open(path, "w") as handle:
        handle.write(prometheus_text(registry))
