"""Tracing core: structured spans with near-zero disabled overhead.

A span is one timed region of the pipeline — ``with span("sample",
chunk=3): ...`` — recorded as a :class:`SpanRecord` carrying wall and
CPU time, the process/thread that ran it, a parent link (spans nest via
a thread-local stack), and free-form attributes (task ``strong_id``,
chunk index, payload byte sizes, cache hit/miss tags).

The design constraint is the *disabled* path: collection hot loops call
:func:`span` unconditionally, so when tracing is off it must cost a
single flag test plus returning a shared no-op context manager — no
clocks, no allocation beyond the call's own kwargs.  The engine's
overhead gate (``benchmarks/bench_obs_overhead.py``) holds this to
measurement.

Worker processes buffer their finished spans locally;
:func:`drain_wire_spans` converts the buffer to a picklable tuple that
rides back to the parent on each ``ChunkResult``, where
:func:`absorb_spans` folds it into the parent's buffer.  The pool
initializer ships :func:`wire_config` so spawned workers inherit the
parent's enable flags (forked workers inherit them for free).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "SpanRecord",
    "absorb_spans",
    "configure",
    "disable",
    "drain_spans",
    "drain_wire_spans",
    "enable",
    "event",
    "is_metrics",
    "is_tracing",
    "span",
    "spans_from_wire",
    "spans_to_wire",
    "wire_config",
]


@dataclass
class SpanRecord:
    """One finished span: a named, timed, attributed region."""

    name: str
    start: float  # perf_counter seconds (monotonic, shared per machine)
    duration: float
    cpu: float  # process_time delta over the region
    pid: int
    tid: int
    span_id: str
    parent_id: str | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        """The span-schema dict (see :mod:`repro.obs.schema`)."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "cpu": self.cpu,
            "pid": self.pid,
            "tid": self.tid,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attrs": self.attrs,
        }

    def to_wire(self) -> tuple:
        """A compact picklable tuple (worker -> parent transport)."""
        return (
            self.name,
            self.start,
            self.duration,
            self.cpu,
            self.pid,
            self.tid,
            self.span_id,
            self.parent_id,
            tuple(self.attrs.items()),
        )

    @classmethod
    def from_wire(cls, wire: tuple) -> "SpanRecord":
        name, start, duration, cpu, pid, tid, span_id, parent_id, attrs = wire
        return cls(
            name=name,
            start=start,
            duration=duration,
            cpu=cpu,
            pid=pid,
            tid=tid,
            span_id=span_id,
            parent_id=parent_id,
            attrs=dict(attrs),
        )


class _State:
    __slots__ = ("tracing", "metrics")

    def __init__(self) -> None:
        self.tracing = False
        self.metrics = False


_state = _State()
_lock = threading.Lock()
_finished: list[SpanRecord] = []
_ids = itertools.count(1)
_local = threading.local()


def is_tracing() -> bool:
    """Whether spans are being recorded (the hot-path gate)."""
    return _state.tracing


def is_metrics() -> bool:
    """Whether the metrics registry is being updated."""
    return _state.metrics


def enable(*, tracing: bool = True, metrics: bool = True) -> None:
    """Turn tracing and/or metrics collection on.

    Flags only — existing buffered spans and metric values survive, so
    enabling mid-run never discards telemetry.
    """
    _state.tracing = bool(tracing)
    _state.metrics = bool(metrics)


def disable() -> None:
    """Turn both tracing and metrics off (buffers are kept; see
    :func:`repro.obs.reset` to also clear them)."""
    _state.tracing = False
    _state.metrics = False


def wire_config() -> tuple[bool, bool]:
    """The enable flags as a picklable snapshot (pool ``initargs``)."""
    return (_state.tracing, _state.metrics)


def configure(config: tuple[bool, bool]) -> None:
    """Apply a :func:`wire_config` snapshot (worker-side initializer)."""
    tracing, metrics = config
    _state.tracing = bool(tracing)
    _state.metrics = bool(metrics)


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def _next_id() -> str:
    return f"{os.getpid()}:{next(_ids)}"


class _NoopSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("name", "attrs", "span_id", "parent_id", "_start", "_cpu")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.span_id = _next_id()
        self.parent_id: str | None = None
        self._start = 0.0
        self._cpu = 0.0

    def set(self, **attrs: Any) -> "_Span":
        """Attach attributes discovered inside the region."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        stack = _stack()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self._cpu = time.process_time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        duration = time.perf_counter() - self._start
        cpu = time.process_time() - self._cpu
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        record = SpanRecord(
            name=self.name,
            start=self._start,
            duration=duration,
            cpu=cpu,
            pid=os.getpid(),
            tid=threading.get_ident(),
            span_id=self.span_id,
            parent_id=self.parent_id,
            attrs=self.attrs,
        )
        with _lock:
            _finished.append(record)
        return False


def span(name: str, **attrs: Any):
    """A context manager timing one named region (no-op when disabled).

    Attributes are free-form JSON-compatible values; more can be added
    inside the region via ``.set(**attrs)`` on the yielded span.
    """
    if not _state.tracing:
        return _NOOP
    return _Span(name, attrs)


def event(name: str, **attrs: Any) -> None:
    """Record an instantaneous (zero-duration) span."""
    if not _state.tracing:
        return
    now = time.perf_counter()
    stack = _stack()
    record = SpanRecord(
        name=name,
        start=now,
        duration=0.0,
        cpu=0.0,
        pid=os.getpid(),
        tid=threading.get_ident(),
        span_id=_next_id(),
        parent_id=stack[-1].span_id if stack else None,
        attrs=attrs,
    )
    with _lock:
        _finished.append(record)


def add_record(record: SpanRecord) -> None:
    """Append an externally built span record (timeline-derived spans)."""
    with _lock:
        _finished.append(record)


def drain_spans() -> list[SpanRecord]:
    """Remove and return every buffered finished span."""
    with _lock:
        out = _finished[:]
        _finished.clear()
    return out


def spans_to_wire(records: Iterable[SpanRecord]) -> tuple:
    """Picklable wire form of ``records``."""
    return tuple(record.to_wire() for record in records)


def spans_from_wire(wire: Iterable[tuple]) -> list[SpanRecord]:
    """Decode :func:`spans_to_wire` output."""
    return [SpanRecord.from_wire(entry) for entry in wire]


def drain_wire_spans() -> tuple:
    """Drain the buffer directly to wire form (worker hot path)."""
    return spans_to_wire(drain_spans())


def absorb_spans(wire: Iterable[tuple]) -> None:
    """Fold a worker's shipped spans into this process's buffer."""
    records = spans_from_wire(wire)
    with _lock:
        _finished.extend(records)


def _clear() -> None:
    """Drop buffered spans (used by :func:`repro.obs.reset`)."""
    with _lock:
        _finished.clear()
