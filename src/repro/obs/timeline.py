"""Per-chunk lifecycle timelines: submit -> start -> finish -> yield.

The chunk scheduler (:class:`repro.engine.workers.ChunkRunner`) stamps
four moments for every chunk it runs — when the feeder *submitted* the
spec to the pool, when a worker *started* and *finished* it (shipped
back on the ``ChunkResult``), when the parent *received* the result,
and when the reorder buffer finally *yielded* it downstream.  A
:class:`ChunkTimeline` holds those stamps plus the pickled payload
sizes, and derives the three quantities the workers-N scaling question
needs:

* :attr:`~ChunkTimeline.queue_wait_seconds` — submit to worker start
  (pool queue depth + pickle/transport cost on the way out);
* :attr:`~ChunkTimeline.worker_seconds` — in-worker busy time;
* :attr:`~ChunkTimeline.hold_seconds` — received to yielded (how long
  the order-restoring buffer parked a finished result behind a slow
  head-of-line chunk).

All stamps come from ``time.perf_counter()``, which on the platforms
the engine targets is a system-wide monotonic clock, so parent and
(forked/spawned) worker stamps are directly comparable; derived
durations are clamped at zero to absorb any residual clock skew.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.obs.core import SpanRecord

__all__ = ["ChunkTimeline", "drain_timelines", "peek_timelines", "record_timeline"]


@dataclass(frozen=True)
class ChunkTimeline:
    """One chunk's full lifecycle through the scheduler."""

    task_id: str
    chunk_index: int
    shots: int
    pid: int
    submitted_at: float
    started_at: float
    finished_at: float
    received_at: float
    yielded_at: float
    spec_bytes: int = 0
    result_bytes: int = 0
    #: Which wire carried the chunk: ``"inproc"`` (serial), ``"pickle"``
    #: or ``"shm"`` (header-only pickles, payloads via shared memory).
    transport: str = "inproc"
    #: Which execution attempt produced the result (0 = first try; a
    #: nonzero value means earlier attempts were lost to a worker
    #: crash, an expired lease, or an in-chunk failure and retried).
    attempt: int = 0

    @property
    def queue_wait_seconds(self) -> float:
        """Submit to worker start (transport out + pool queue wait)."""
        return max(0.0, self.started_at - self.submitted_at)

    @property
    def worker_seconds(self) -> float:
        """In-worker busy time (sample + decode + setup)."""
        return max(0.0, self.finished_at - self.started_at)

    @property
    def return_seconds(self) -> float:
        """Worker finish to parent receive (result transport back)."""
        return max(0.0, self.received_at - self.finished_at)

    @property
    def hold_seconds(self) -> float:
        """Time parked in the order-restoring reorder buffer."""
        return max(0.0, self.yielded_at - self.received_at)

    @property
    def latency_seconds(self) -> float:
        """Submit to yield: the chunk's whole pipeline latency."""
        return max(0.0, self.yielded_at - self.submitted_at)

    @property
    def transport_bytes(self) -> int:
        """Pickled payload bytes both ways (0 for in-process runs)."""
        return self.spec_bytes + self.result_bytes

    def to_spans(self) -> list[SpanRecord]:
        """The parent-side phases as span records for trace export.

        The in-worker phase is already traced by the worker's own
        ``chunk``/``sample``/``decode`` spans; these cover the two
        scheduler-side gaps around it.  ``tid`` carries the chunk index
        so a Chrome trace lays sibling chunks out on separate rows.
        """
        attrs = {
            "task": self.task_id,
            "chunk": self.chunk_index,
            "shots": self.shots,
            "worker_pid": self.pid,
        }
        spans = []
        for name, start, duration in (
            ("chunk.queue", self.submitted_at, self.queue_wait_seconds),
            ("chunk.hold", self.received_at, self.hold_seconds),
        ):
            spans.append(
                SpanRecord(
                    name=name,
                    start=start,
                    duration=duration,
                    cpu=0.0,
                    pid=0,  # scheduler pseudo-track, distinct from workers
                    tid=self.chunk_index,
                    span_id=f"tl:{self.task_id[:8]}:{self.chunk_index}:{name}",
                    parent_id=None,
                    attrs=dict(attrs, spec_bytes=self.spec_bytes,
                               result_bytes=self.result_bytes,
                               transport=self.transport),
                )
            )
        return spans


_lock = threading.Lock()
_timelines: list[ChunkTimeline] = []


def record_timeline(timeline: ChunkTimeline) -> None:
    """Buffer one finished chunk's timeline (caller gates on enablement)."""
    with _lock:
        _timelines.append(timeline)


def peek_timelines() -> list[ChunkTimeline]:
    """The buffered timelines, without clearing them."""
    with _lock:
        return _timelines[:]


def drain_timelines() -> list[ChunkTimeline]:
    """Remove and return every buffered timeline."""
    with _lock:
        out = _timelines[:]
        _timelines.clear()
    return out


def _clear() -> None:
    with _lock:
        _timelines.clear()
