"""``repro.obs`` — tracing, metrics and per-chunk timelines.

The pipeline's observability layer, in four small parts:

:mod:`~repro.obs.core`
    ``span("sample", chunk=3)``-style context managers producing
    structured :class:`SpanRecord`\\ s (wall/CPU time, parent link,
    pid/tid, free-form attributes) with near-zero overhead when
    disabled.
:mod:`~repro.obs.metrics`
    A per-process :class:`MetricsRegistry` of counters, gauges and
    fixed-bucket histograms; engine workers update theirs locally and
    ship deltas back piggybacked on each ``ChunkResult``
    (:func:`flush_wire` / :func:`merge_wire`).
:mod:`~repro.obs.timeline`
    :class:`ChunkTimeline` — submit/start/finish/receive/yield stamps
    per chunk, deriving queue wait, worker busy time and reorder-buffer
    hold.
:mod:`~repro.obs.export`
    JSONL span sink, Chrome ``chrome://tracing`` trace-event writer,
    Prometheus text exposition (validated by :mod:`~repro.obs.schema`).

Typical use — trace one collection run::

    from repro import obs
    from repro.study import ExecutionOptions, Sweep

    obs.enable(tracing=True, metrics=True)
    Sweep(codes="repetition").collect(ExecutionOptions(workers=2))
    obs.write_chrome_trace(obs.drain_spans(), "trace.json",
                           timelines=obs.drain_timelines())
    print(obs.prometheus_text(obs.registry()))
    obs.reset()

or from the CLI: ``repro collect --trace trace.json --profile``.
Everything is off by default; the engine's instrumented hot path costs
a flag test per probe when disabled (CI-guarded by
``benchmarks/bench_obs_overhead.py``).
"""

from repro.obs import core as _core
from repro.obs import timeline as _timeline
from repro.obs.core import (
    SpanRecord,
    absorb_spans,
    add_record,
    configure,
    disable,
    drain_spans,
    drain_wire_spans,
    enable,
    event,
    is_metrics,
    is_tracing,
    span,
    spans_from_wire,
    spans_to_wire,
    wire_config,
)
from repro.obs.export import (
    chrome_trace_events,
    prometheus_text,
    write_chrome_trace,
    write_prometheus,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    flush_wire,
    format_rate,
    gauge,
    histogram,
    merge_wire,
    registry,
    safe_rate,
)
from repro.obs.timeline import (
    ChunkTimeline,
    drain_timelines,
    peek_timelines,
    record_timeline,
)

__all__ = [
    "ChunkTimeline",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "absorb_spans",
    "add_record",
    "chrome_trace_events",
    "configure",
    "counter",
    "disable",
    "drain_spans",
    "drain_timelines",
    "drain_wire_spans",
    "enable",
    "event",
    "flush_wire",
    "format_rate",
    "gauge",
    "histogram",
    "is_metrics",
    "is_tracing",
    "merge_wire",
    "peek_timelines",
    "prometheus_text",
    "record_timeline",
    "registry",
    "reset",
    "safe_rate",
    "span",
    "spans_from_wire",
    "spans_to_wire",
    "wire_config",
    "write_chrome_trace",
    "write_prometheus",
    "write_spans_jsonl",
]


def reset() -> None:
    """Disable everything and drop all buffered telemetry.

    The clean-slate teardown between independent runs (and tests):
    flags off, span buffer cleared, timelines cleared, metrics registry
    emptied.
    """
    disable()
    _core._clear()
    _timeline._clear()
    registry().clear()
