"""Process-safe metrics: counters, gauges, histograms, wire shipping.

One :class:`MetricsRegistry` per process.  Engine workers update their
local registry on the chunk hot path and ship the *delta* since the
last chunk back to the parent piggybacked on each ``ChunkResult``
(:meth:`MetricsRegistry.flush_wire`); the parent folds deltas in with
:meth:`MetricsRegistry.merge_wire`.  No cross-process locks, no shared
memory — the transport the chunks already ride is the metrics bus.

Metric identity is ``(name, labels)``: ``counter("repro_stage_seconds_total",
stage="decode", pid="1234")`` and the same name with ``stage="sample"``
are distinct series, exactly like Prometheus label sets (the text
exposition in :mod:`repro.obs.export` renders them as such, and the
future ``repro serve`` health endpoint reads this registry directly).

Histograms use fixed bucket boundaries chosen at creation
(:data:`DEFAULT_BUCKETS` suits second-scale latencies), so worker and
parent histograms of one name always merge bucket-for-bucket.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "flush_wire",
    "format_rate",
    "gauge",
    "histogram",
    "merge_wire",
    "registry",
    "safe_rate",
]

#: Bucket upper bounds (seconds) for latency histograms; +Inf implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelsKey = tuple[tuple[str, str], ...]


def _labels_key(labels: dict[str, Any]) -> LabelsKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value (events, seconds, bytes)."""

    kind = "counter"
    __slots__ = ("value", "_shipped")

    def __init__(self) -> None:
        self.value = 0.0
        self._shipped = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def _wire_payload(self) -> float | None:
        delta = self.value - self._shipped
        if delta == 0.0:
            return None
        self._shipped = self.value
        return delta

    def _merge_payload(self, payload: float) -> None:
        self.value += payload
        # Merged values count as shipped: a parent that also ships
        # onward (future multi-level trees) forwards only its own delta.
        self._shipped += payload


class Gauge:
    """Last-write-wins value (window occupancy, cache entries)."""

    kind = "gauge"
    __slots__ = ("value", "_shipped")

    def __init__(self) -> None:
        self.value = 0.0
        self._shipped = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount

    def _wire_payload(self) -> float | None:
        if self.value == self._shipped:
            return None
        self._shipped = self.value
        return self.value

    def _merge_payload(self, payload: float) -> None:
        self.value = payload
        self._shipped = payload


class Histogram:
    """Fixed-boundary histogram (bucket counts + sum + count)."""

    kind = "histogram"
    __slots__ = ("bounds", "counts", "sum", "count", "_shipped")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        if tuple(bounds) != tuple(sorted(bounds)):
            raise ValueError("histogram bounds must be sorted")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0
        self._shipped = ([0] * (len(self.bounds) + 1), 0.0, 0)

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1

    def _wire_payload(self) -> tuple | None:
        shipped_counts, shipped_sum, shipped_count = self._shipped
        if self.count == shipped_count:
            return None
        delta_counts = tuple(
            c - s for c, s in zip(self.counts, shipped_counts)
        )
        payload = (
            self.bounds,
            delta_counts,
            self.sum - shipped_sum,
            self.count - shipped_count,
        )
        self._shipped = (list(self.counts), self.sum, self.count)
        return payload

    def _merge_payload(self, payload: tuple) -> None:
        bounds, delta_counts, delta_sum, delta_count = payload
        if tuple(bounds) != self.bounds:
            raise ValueError(
                f"histogram bucket boundaries diverge: {bounds} vs "
                f"{self.bounds} (fixed boundaries are the merge contract)"
            )
        for i, delta in enumerate(delta_counts):
            self.counts[i] += delta
        self.sum += delta_sum
        self.count += delta_count
        shipped_counts, shipped_sum, shipped_count = self._shipped
        self._shipped = (
            [s + d for s, d in zip(shipped_counts, delta_counts)],
            shipped_sum + delta_sum,
            shipped_count + delta_count,
        )


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """All metric series of one process, keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelsKey], Any] = {}

    def _get(self, cls, name: str, labels: dict[str, Any], *args):
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(*args)
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        **labels: Any,
    ) -> Histogram:
        return self._get(
            Histogram, name, labels, buckets if buckets else DEFAULT_BUCKETS
        )

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> list[dict[str, Any]]:
        """Every series as a plain dict (kind, name, labels, value[s])."""
        out = []
        with self._lock:
            items = list(self._metrics.items())
        for (name, labels), metric in sorted(items, key=lambda kv: kv[0]):
            entry: dict[str, Any] = {
                "kind": metric.kind,
                "name": name,
                "labels": dict(labels),
            }
            if metric.kind == "histogram":
                entry.update(
                    buckets=list(zip(metric.bounds, metric.counts)),
                    overflow=metric.counts[-1],
                    sum=metric.sum,
                    count=metric.count,
                )
            else:
                entry["value"] = metric.value
            out.append(entry)
        return out

    def value(self, name: str, **labels: Any) -> float | None:
        """A counter/gauge's current value (``None`` if the series does
        not exist); a histogram's observation count."""
        metric = self._metrics.get((name, _labels_key(labels)))
        if metric is None:
            return None
        if metric.kind == "histogram":
            return float(metric.count)
        return metric.value

    def select(
        self, name: str, **fixed: Any
    ) -> list[tuple[dict[str, str], Any]]:
        """Series of ``name`` whose labels include ``fixed``, as
        ``(labels, metric)`` pairs."""
        wanted = _labels_key(fixed)
        out = []
        with self._lock:
            items = list(self._metrics.items())
        for (metric_name, labels), metric in sorted(
            items, key=lambda kv: kv[0]
        ):
            if metric_name != name:
                continue
            if all(pair in labels for pair in wanted):
                out.append((dict(labels), metric))
        return out

    def label_values(self, name: str, label: str) -> list[str]:
        """Sorted distinct values of ``label`` across ``name``'s series."""
        found = set()
        with self._lock:
            keys = list(self._metrics)
        for metric_name, labels in keys:
            if metric_name != name:
                continue
            for key, value in labels:
                if key == label:
                    found.add(value)
        return sorted(found)

    # -- wire shipping ---------------------------------------------------

    def flush_wire(self) -> tuple:
        """The delta since the previous flush, as picklable tuples.

        Series with no change since the last flush are skipped, so a
        warm worker ships only the handful of counters each chunk
        touched.
        """
        out = []
        with self._lock:
            items = list(self._metrics.items())
        for (name, labels), metric in items:
            payload = metric._wire_payload()
            if payload is not None:
                out.append((metric.kind, name, labels, payload))
        return tuple(out)

    def merge_wire(self, wire: Iterable[tuple]) -> None:
        """Fold a worker's :meth:`flush_wire` delta into this registry."""
        for kind, name, labels, payload in wire:
            cls = _KINDS[kind]
            if kind == "histogram":
                metric = self._get(cls, name, dict(labels), payload[0])
            else:
                metric = self._get(cls, name, dict(labels))
            metric._merge_payload(payload)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """This process's global metrics registry."""
    return _REGISTRY


def counter(name: str, **labels: Any) -> Counter:
    """``registry().counter(...)`` (the hot-path spelling)."""
    return _REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    return _REGISTRY.gauge(name, **labels)


def histogram(
    name: str, buckets: tuple[float, ...] | None = None, **labels: Any
) -> Histogram:
    return _REGISTRY.histogram(name, buckets, **labels)


def flush_wire() -> tuple:
    return _REGISTRY.flush_wire()


def merge_wire(wire: Iterable[tuple]) -> None:
    _REGISTRY.merge_wire(wire)


# -- division-safe rate helpers ----------------------------------------------


def safe_rate(count: float, seconds: float) -> float | None:
    """``count / seconds``, or ``None`` when it would be meaningless.

    Zero-shot tasks and ~0-wall-second chunks happen (fully resumed
    runs, trivially small workloads); every rate a benchmark or profile
    table prints goes through here so none of them can raise
    ``ZeroDivisionError`` or report ``inf``.
    """
    if not seconds or seconds <= 0.0 or not math.isfinite(seconds):
        return None
    return count / seconds


def format_rate(count: float, seconds: float, fmt: str = "{:,.0f}") -> str:
    """``safe_rate`` rendered for tables — ``"-"`` when undefined."""
    rate = safe_rate(count, seconds)
    return "-" if rate is None else fmt.format(rate)
