"""Pauli noise channels.

Every channel is normalized into a :class:`SymbolGroup`: ``k`` bit-symbols
with X/Z Pauli actions and one categorical distribution over the ``2^k``
joint bit patterns — exactly the encoding §3.1 of the paper prescribes
(e.g. DEPOLARIZE1 -> ``X^{s1} Z^{s2}`` with pattern probabilities
``(1-p, p/3, p/3, p/3)``).  The symbolic simulator allocates the symbols;
the concrete simulators sample patterns directly.
"""

from repro.noise.channels import (
    SymbolGroup,
    measurement_group,
    noise_groups,
    pattern_bits,
)

__all__ = ["SymbolGroup", "measurement_group", "noise_groups", "pattern_bits"]
