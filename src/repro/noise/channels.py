"""Normalization of noise instructions into symbol groups."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.instructions import Instruction, PauliTarget

# Pauli letter -> (x bit, z bit)
_LETTER_XZ = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}

# Stim's argument order for PAULI_CHANNEL_1 / PAULI_CHANNEL_2.
_PC1_ORDER = ("X", "Y", "Z")
_PC2_ORDER = (
    "IX", "IY", "IZ",
    "XI", "XX", "XY", "XZ",
    "YI", "YX", "YY", "YZ",
    "ZI", "ZX", "ZY", "ZZ",
)


@dataclass(frozen=True)
class SymbolGroup:
    """``k`` jointly-distributed bit-symbols and their Pauli actions.

    ``actions[j]`` lists the ``(pauli_letter, qubit)`` pairs applied when
    symbol ``j`` has value 1.  ``probabilities[pattern]`` is the joint
    probability of the bit pattern whose ``j``-th bit (LSB first) is the
    value of symbol ``j``.
    """

    actions: tuple[tuple[tuple[str, int], ...], ...]
    probabilities: tuple[float, ...]
    kind: str  # "noise" or "measurement"

    @property
    def n_symbols(self) -> int:
        return len(self.actions)

    def sample_patterns(
        self, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n_samples`` joint bit patterns (integers in [0, 2^k))."""
        return sample_patterns_batch(self.probabilities, (n_samples,), rng)


def sample_patterns_batch(
    probabilities: tuple[float, ...] | np.ndarray,
    size: tuple[int, ...],
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw categorical samples by thresholding uniform floats.

    For the small outcome counts of Pauli channels (<= 16) this beats
    ``Generator.choice`` with a probability vector by a wide margin: one
    uniform draw plus ``len(probabilities) - 1`` vectorized comparisons.
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    thresholds = np.cumsum(probs / probs.sum())[:-1]
    uniforms = rng.random(size)
    patterns = np.zeros(size, dtype=np.uint8)  # <= 16 outcomes fit easily
    if thresholds.size == 0:
        return patterns
    # Identical output either way; only the scan strategy differs.  The
    # dense path touches the whole array once per threshold; the sparse
    # path touches it once and then classifies only the entries past the
    # first threshold — at QEC noise strengths (first outcome carries
    # almost all mass) that is a handful of entries per million.
    if (1.0 - thresholds[0]) * thresholds.size < 0.5:
        hot = uniforms >= thresholds[0]
        if hot.any():
            patterns[hot] = np.searchsorted(
                thresholds, uniforms[hot], side="right"
            ).astype(np.uint8)
        return patterns
    for threshold in thresholds:
        patterns += uniforms >= threshold
    return patterns


def pattern_bits(patterns: np.ndarray, symbol: int) -> np.ndarray:
    """Extract one symbol's bit from an array of joint patterns."""
    return ((patterns >> symbol) & 1).astype(np.uint8)


def measurement_group() -> SymbolGroup:
    """The fair-coin group behind one random measurement outcome."""
    return SymbolGroup(actions=((),), probabilities=(0.5, 0.5), kind="measurement")


def _two_symbol_xz(qubit: int) -> tuple[tuple[tuple[str, int], ...], ...]:
    return ((("X", qubit),), (("Z", qubit),))


def _single_qubit_group(
    qubit: int, px: float, py: float, pz: float
) -> SymbolGroup:
    """General 1-qubit Pauli channel as X^{s1} Z^{s2} with joint probs."""
    p_rest = 1.0 - px - py - pz
    # Pattern bit 0 = X symbol, bit 1 = Z symbol; Y sets both.
    probabilities = (p_rest, px, pz, py)
    return SymbolGroup(_two_symbol_xz(qubit), probabilities, "noise")


def _flip_group(qubit: int, letter: str, p: float) -> SymbolGroup:
    """Single-symbol X_ERROR / Y_ERROR / Z_ERROR."""
    return SymbolGroup(
        actions=(((letter, qubit),),),
        probabilities=(1.0 - p, p),
        kind="noise",
    )


def _two_qubit_group(
    qubit_a: int, qubit_b: int, pair_probs: dict[str, float]
) -> SymbolGroup:
    """General 2-qubit Pauli channel: 4 symbols (Xa, Za, Xb, Zb)."""
    actions = (
        (("X", qubit_a),),
        (("Z", qubit_a),),
        (("X", qubit_b),),
        (("Z", qubit_b),),
    )
    probabilities = [0.0] * 16
    total = 0.0
    for pair, prob in pair_probs.items():
        xa, za = _LETTER_XZ[pair[0]]
        xb, zb = _LETTER_XZ[pair[1]]
        pattern = xa | (za << 1) | (xb << 2) | (zb << 3)
        probabilities[pattern] += prob
        total += prob
    probabilities[0] += 1.0 - total
    return SymbolGroup(actions, tuple(probabilities), "noise")


def noise_groups(instruction: Instruction) -> list[SymbolGroup]:
    """Decompose a noise instruction into one SymbolGroup per site.

    Sites are single qubits (1-qubit channels), qubit pairs (2-qubit
    channels) or the whole target list (CORRELATED_ERROR).
    """
    name = instruction.name
    args = instruction.args
    targets = instruction.targets

    if name in ("X_ERROR", "Y_ERROR", "Z_ERROR"):
        letter = name[0]
        return [_flip_group(q, letter, args[0]) for q in targets]

    if name == "DEPOLARIZE1":
        p = args[0]
        return [_single_qubit_group(q, p / 3, p / 3, p / 3) for q in targets]

    if name == "PAULI_CHANNEL_1":
        px, py, pz = args
        return [_single_qubit_group(q, px, py, pz) for q in targets]

    if name == "DEPOLARIZE2":
        p = args[0]
        pair_probs = {
            a + b: p / 15
            for a in "IXYZ"
            for b in "IXYZ"
            if a + b != "II"
        }
        return [
            _two_qubit_group(a, b, pair_probs)
            for a, b in zip(targets[0::2], targets[1::2])
        ]

    if name == "PAULI_CHANNEL_2":
        pair_probs = dict(zip(_PC2_ORDER, args))
        return [
            _two_qubit_group(a, b, pair_probs)
            for a, b in zip(targets[0::2], targets[1::2])
        ]

    if name == "CORRELATED_ERROR":
        action = tuple(
            (t.pauli, t.qubit) for t in targets if isinstance(t, PauliTarget)
        )
        return [
            SymbolGroup(
                actions=(action,),
                probabilities=(1.0 - args[0], args[0]),
                kind="noise",
            )
        ]

    raise ValueError(f"{name} is not a noise instruction")
