"""Benchmark workload generators (the paper's §5 circuit families)."""

from repro.workloads.layered import (
    fig3a_circuit,
    fig3b_circuit,
    fig3c_circuit,
    layered_random_circuit,
)

__all__ = [
    "fig3a_circuit",
    "fig3b_circuit",
    "fig3c_circuit",
    "layered_random_circuit",
]
