"""Layered random interaction circuits (paper Fig. 3).

From the figure caption: each circuit has ``n`` qubits and ``n`` layers;
each layer randomly applies an H, S or I gate to every qubit, then
applies CNOT gates between randomly selected disjoint pairs, then
measures a random 5% of the qubits; every qubit is measured at the end.

* Fig. 3a — 5 CNOT pairs per layer;
* Fig. 3b — ⌊n/2⌋ CNOT pairs per layer;
* Fig. 3c — like 3b, plus single-qubit depolarizing noise on every qubit
  in every layer.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.rng import as_generator

_SINGLE_QUBIT_CHOICES = ("H", "S", "I")


def layered_random_circuit(
    n_qubits: int,
    n_layers: int | None = None,
    cnot_pairs_per_layer: int = 5,
    depolarize_probability: float = 0.0,
    measure_fraction: float = 0.05,
    seed: int | np.random.SeedSequence | np.random.Generator | None = None,
) -> Circuit:
    """Generate one layered random interaction circuit."""
    if n_qubits < 2:
        raise ValueError("need at least two qubits")
    layers = n_layers if n_layers is not None else n_qubits
    rng = as_generator(seed)
    qubits = np.arange(n_qubits)
    circuit = Circuit()

    for _ in range(layers):
        # Random H/S/I on every qubit, grouped per gate name.
        choice = rng.integers(0, len(_SINGLE_QUBIT_CHOICES), size=n_qubits)
        for g, name in enumerate(_SINGLE_QUBIT_CHOICES):
            targets = qubits[choice == g]
            if targets.size and name != "I":
                circuit.append(name, targets.tolist())

        pairs = min(cnot_pairs_per_layer, n_qubits // 2)
        if pairs:
            shuffled = rng.permutation(n_qubits)[: 2 * pairs]
            circuit.cx(*shuffled.tolist())

        if depolarize_probability > 0:
            circuit.depolarize1(depolarize_probability, *range(n_qubits))

        n_measured = max(1, int(round(measure_fraction * n_qubits)))
        measured = np.sort(rng.permutation(n_qubits)[:n_measured])
        circuit.m(*measured.tolist())
        circuit.tick()

    circuit.m(*range(n_qubits))
    return circuit


def fig3a_circuit(n_qubits: int, seed: int | None = None) -> Circuit:
    """Fig. 3a family: 5 CNOT pairs per layer, no noise."""
    return layered_random_circuit(n_qubits, cnot_pairs_per_layer=5, seed=seed)


def fig3b_circuit(n_qubits: int, seed: int | None = None) -> Circuit:
    """Fig. 3b family: ⌊n/2⌋ CNOT pairs per layer, no noise."""
    return layered_random_circuit(
        n_qubits, cnot_pairs_per_layer=n_qubits // 2, seed=seed
    )


def fig3c_circuit(
    n_qubits: int, depolarize_probability: float = 0.001, seed: int | None = None
) -> Circuit:
    """Fig. 3c family: ⌊n/2⌋ CNOT pairs + per-layer depolarization."""
    return layered_random_circuit(
        n_qubits,
        cnot_pairs_per_layer=n_qubits // 2,
        depolarize_probability=depolarize_probability,
        seed=seed,
    )
