"""DEM data model and DEM-level sampling."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rng import as_generator


@dataclass(frozen=True)
class ErrorMechanism:
    """One fault mechanism: probability + syndrome/observable signature."""

    probability: float
    detectors: tuple[int, ...]
    observables: tuple[int, ...]

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"bad probability {self.probability}")

    @property
    def is_graphlike(self) -> bool:
        """Flips at most two detectors (matchable as a graph edge)."""
        return len(self.detectors) <= 2

    def __str__(self) -> str:
        parts = [f"error({self.probability:g})"]
        parts.extend(f"D{d}" for d in self.detectors)
        parts.extend(f"L{o}" for o in self.observables)
        return " ".join(parts)


@dataclass
class DetectorErrorModel:
    """A set of error mechanisms over detectors and logical observables.

    ``groups`` partitions mechanism indices into mutually-exclusive sets
    (the patterns of one noise site); mechanisms in different groups are
    independent.  Sampling with the group structure is exact; the
    flattened independent-mechanism view is the usual DEM approximation.
    """

    n_detectors: int
    n_observables: int
    mechanisms: list[ErrorMechanism] = field(default_factory=list)
    groups: list[list[int]] = field(default_factory=list)

    def add_group(self, mechanisms: list[ErrorMechanism]) -> None:
        start = len(self.mechanisms)
        self.mechanisms.extend(mechanisms)
        self.groups.append(list(range(start, start + len(mechanisms))))

    @property
    def graphlike(self) -> bool:
        return all(m.is_graphlike for m in self.mechanisms)

    def __str__(self) -> str:
        return "\n".join(str(m) for m in self.mechanisms)

    # -- sampling ------------------------------------------------------

    def sample(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample (detectors, observables) directly from the DEM.

        Uses the exact per-group categorical distributions, so on
        circuits whose noise decomposes into the recorded groups this
        reproduces the circuit's detector statistics exactly — a useful
        cross-check of the whole extraction (tested against the circuit
        samplers).
        """
        rng = as_generator(rng)
        detectors = np.zeros((shots, self.n_detectors), dtype=np.uint8)
        observables = np.zeros((shots, self.n_observables), dtype=np.uint8)
        for group in self.groups:
            probs = np.array(
                [self.mechanisms[i].probability for i in group]
            )
            identity = max(0.0, 1.0 - probs.sum())
            full = np.concatenate([[identity], probs])
            full = full / full.sum()
            choice = rng.choice(full.size, size=shots, p=full)
            for slot, mech_index in enumerate(group, start=1):
                hit = choice == slot
                if not hit.any():
                    continue
                mech = self.mechanisms[mech_index]
                for d in mech.detectors:
                    detectors[hit, d] ^= 1
                for o in mech.observables:
                    observables[hit, o] ^= 1
        return detectors, observables

    # -- decoding ------------------------------------------------------

    def compile_decoder(self, decoder: str = "matching"):
        """Compile a registered decoder for this DEM by name.

        ``decoder`` is any :mod:`repro.decoders.registry` name or alias
        (``"matching"``, ``"compiled-matching"``, ``"lookup"``, ...).
        """
        # Import the package, not just the registry module, so the
        # built-in decoder registrations have run.
        from repro.decoders import compile_decoder

        return compile_decoder(self, decoder)

    # -- analysis --------------------------------------------------------

    def merged(self) -> "DetectorErrorModel":
        """Collapse mechanisms with identical (detectors, observables).

        Duplicate signatures *within* a group are mutually exclusive
        patterns of one noise site, so their probabilities add;
        duplicates *across* groups are independent faults whose combined
        effect is the XOR of two coin flips, so their probabilities
        convolve: ``p = p1 (1 - p2) + p2 (1 - p1)`` (both firing cancels
        on every detector and observable).

        Emitting duplicates unmerged skews every downstream decoder —
        MWPM would see two parallel edges, each underweighting the true
        flip probability.  The merged model carries each signature once,
        as its own singleton group; exact for the per-signature marginal
        flip probabilities (the quantity decoders consume), while the
        joint exclusivity between *different* signatures of a shared
        group is approximated as independence.
        """
        combined: dict[
            tuple[tuple[int, ...], tuple[int, ...]], float
        ] = {}
        for group in self.groups:
            within: dict[
                tuple[tuple[int, ...], tuple[int, ...]], float
            ] = {}
            for index in group:
                mech = self.mechanisms[index]
                signature = (mech.detectors, mech.observables)
                within[signature] = (
                    within.get(signature, 0.0) + mech.probability
                )
            for signature, p in within.items():
                if signature in combined:
                    q = combined[signature]
                    combined[signature] = p * (1 - q) + q * (1 - p)
                else:
                    combined[signature] = p
        out = DetectorErrorModel(self.n_detectors, self.n_observables)
        for (detectors, observables), p in combined.items():
            out.add_group(
                [ErrorMechanism(p, detectors, observables)]
            )
        return out

    def detector_error_rates(self) -> np.ndarray:
        """First-order marginal fire probability per detector (exact under
        independence of groups; small-p approximation otherwise)."""
        no_fire = np.ones(self.n_detectors, dtype=np.float64)
        for group in self.groups:
            flip_prob = np.zeros(self.n_detectors)
            for index in group:
                mech = self.mechanisms[index]
                for d in mech.detectors:
                    flip_prob[d] += mech.probability
            no_fire *= 1.0 - np.minimum(flip_prob, 1.0)
        return 1.0 - no_fire

    def filter_graphlike(self) -> "DetectorErrorModel":
        """Drop non-graphlike mechanisms (for matching-based decoders)."""
        out = DetectorErrorModel(self.n_detectors, self.n_observables)
        for group in self.groups:
            kept = [
                self.mechanisms[i]
                for i in group
                if self.mechanisms[i].is_graphlike
            ]
            if kept:
                out.add_group(kept)
        return out
