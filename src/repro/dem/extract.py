"""DEM extraction from the symbolic-phase sampler."""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.core.compiled_sampler import CompiledSampler
from repro.core.simulator import SymPhaseSimulator
from repro.dem.model import DetectorErrorModel, ErrorMechanism
from repro.gf2 import bitops


def extract_dem(
    source: Circuit | CompiledSampler,
    min_probability: float = 0.0,
    merge: bool = True,
) -> DetectorErrorModel:
    """Build the detector error model of a noisy circuit.

    For every noise site (symbol group) and every non-identity joint
    pattern of its symbols, the mechanism's syndrome is the XOR of the
    pattern's symbol columns in the detector matrix — read directly off
    the compiled sampler, no simulation.  Patterns with probability at or
    below ``min_probability`` are dropped.

    Distinct fault patterns frequently share one (detectors,
    observables) signature — e.g. the X and Y legs of a depolarizing
    site, or a final-round data flip and the measurement flip it
    shadows.  With ``merge`` (the default) such duplicates are collapsed
    via :meth:`DetectorErrorModel.merged` so each signature carries its
    true combined flip probability; emitting them as independent entries
    would skew every downstream decoder's edge weights.  Pass
    ``merge=False`` for the raw per-pattern, per-noise-site view (one
    group per site; exact joint sampling).
    """
    if isinstance(source, Circuit):
        sampler = CompiledSampler(SymPhaseSimulator.from_circuit(source))
    else:
        sampler = source

    table = sampler.symbols
    width = sampler.width
    detector_bits = bitops.unpack_rows(sampler.detector_matrix, width)
    observable_bits = bitops.unpack_rows(sampler.observable_matrix, width)

    dem = DetectorErrorModel(sampler.n_detectors, sampler.n_observables)
    for group, offset in zip(table.groups, table.group_offsets):
        if group.kind != "noise":
            continue
        mechanisms = []
        for pattern, probability in enumerate(group.probabilities):
            if pattern == 0 or probability <= min_probability:
                continue
            det = np.zeros(dem.n_detectors, dtype=np.uint8)
            obs = np.zeros(dem.n_observables, dtype=np.uint8)
            for j in range(group.n_symbols):
                if (pattern >> j) & 1:
                    det ^= detector_bits[:, offset + j]
                    obs ^= observable_bits[:, offset + j]
            mechanisms.append(
                ErrorMechanism(
                    probability=float(probability),
                    detectors=tuple(np.nonzero(det)[0].tolist()),
                    observables=tuple(np.nonzero(obs)[0].tolist()),
                )
            )
        if mechanisms:
            dem.add_group(mechanisms)
    return dem.merged() if merge else dem
