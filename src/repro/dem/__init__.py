"""Detector error models (DEMs), extracted from symbolic phases.

Phase symbolization makes DEM extraction trivial: every noise symbol's
column in the detector/observable matrices *is* its syndrome signature,
so a single pass over the symbol table yields, for every fault mechanism
(every non-identity pattern of every noise group), the set of detectors
it flips, the logical observables it flips, and its probability.  No
extra circuit simulation is needed — this is the fault-analysis
application the paper's introduction motivates.
"""

from repro.dem.extract import extract_dem
from repro.dem.model import DetectorErrorModel, ErrorMechanism

__all__ = ["DetectorErrorModel", "ErrorMechanism", "extract_dem"]
