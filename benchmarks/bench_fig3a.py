"""Fig. 3a: layered random circuits, 5 CNOT pairs per layer.

Paper series: (1) time to initialize a sampler, (2) time to generate the
sample batch — for SymPhase vs the Pauli-frame baseline, as n grows.
Expected shape (paper): SymPhase wins (2) at every n, loses (1).
"""

import pytest

from benchmarks.helpers import (
    build_frame_sampler,
    build_symphase_sampler,
    make_rng,
)
from repro.workloads import fig3a_circuit

SIZES = [16, 32, 48]
SHOTS = 2000


@pytest.fixture(scope="module")
def circuits():
    return {n: fig3a_circuit(n, seed=0) for n in SIZES}


@pytest.mark.parametrize("n", SIZES)
def test_init_symphase(benchmark, circuits, n):
    benchmark.group = f"fig3a-init-n{n}"
    benchmark(build_symphase_sampler, circuits[n])


@pytest.mark.parametrize("n", SIZES)
def test_init_frame(benchmark, circuits, n):
    benchmark.group = f"fig3a-init-n{n}"
    benchmark(build_frame_sampler, circuits[n])


@pytest.mark.parametrize("n", SIZES)
def test_sample_symphase(benchmark, circuits, n):
    benchmark.group = f"fig3a-sample-n{n}"
    sampler = build_symphase_sampler(circuits[n])
    rng = make_rng()
    benchmark(sampler.sample, SHOTS, rng)


@pytest.mark.parametrize("n", SIZES)
def test_sample_frame(benchmark, circuits, n):
    benchmark.group = f"fig3a-sample-n{n}"
    sampler = build_frame_sampler(circuits[n])
    rng = make_rng()
    benchmark(sampler.sample, SHOTS, rng)
