"""Ablation bench: the full gadget-evaluation loop (intro's use case).

Compares the per-stage costs — circuit analysis (once), syndrome
sampling (per batch, the paper's headline number), DEM extraction
(once), and decoding (per batch) — showing that with phase
symbolization, sampling stops being the bottleneck the paper's
introduction describes.
"""

import numpy as np
import pytest

from repro.core import CompiledSampler, SymPhaseSimulator
from repro.decoders import compile_decoder
from repro.dem import extract_dem
from repro.qec import repetition_code_memory

SHOTS = 2000


@pytest.fixture(scope="module")
def pipeline():
    circuit = repetition_code_memory(
        7, rounds=7,
        data_flip_probability=0.02,
        measure_flip_probability=0.02,
    )
    sampler = CompiledSampler(SymPhaseSimulator.from_circuit(circuit))
    dem = extract_dem(sampler)
    decoder = compile_decoder(dem, "matching")
    rng = np.random.default_rng(0)
    detectors, _ = sampler.sample_detectors(SHOTS, rng)
    return circuit, sampler, dem, decoder, detectors


def test_stage_analyze(benchmark, pipeline):
    benchmark.group = "gadget-eval-stages"
    circuit = pipeline[0]
    benchmark(
        lambda: CompiledSampler(SymPhaseSimulator.from_circuit(circuit))
    )


def test_stage_sample(benchmark, pipeline):
    benchmark.group = "gadget-eval-stages"
    sampler = pipeline[1]
    rng = np.random.default_rng(1)
    benchmark(sampler.sample_detectors, SHOTS, rng)


def test_stage_extract_dem(benchmark, pipeline):
    benchmark.group = "gadget-eval-stages"
    sampler = pipeline[1]
    benchmark(extract_dem, sampler)


def test_stage_decode(benchmark, pipeline):
    benchmark.group = "gadget-eval-stages"
    decoder, detectors = pipeline[3], pipeline[4]
    benchmark(decoder.decode_batch, detectors)


def test_stage_decode_compiled(benchmark, pipeline):
    benchmark.group = "gadget-eval-stages"
    dem, detectors = pipeline[2], pipeline[4]
    decoder = compile_decoder(dem, "compiled-matching")
    benchmark(decoder.decode_batch, detectors)
