"""Shared benchmark fixtures: circuit builders and sampler constructors.

Sizes are CI-scale (pure Python is ~100x slower than the paper's Julia/
C++ setups); the comparisons — which engine's *sampling* is faster, which
engine's *init* is faster — are size-independent.  EXPERIMENTS.md records
the paper-vs-measured shape for the full sweeps run via
``python -m repro.experiments``.
"""

from __future__ import annotations

import numpy as np

from repro.backends import compile_backend


def build_symphase_sampler(circuit):
    """The paper's Initialization procedure (Algorithm 1, line 1)."""
    return compile_backend(circuit, "symbolic")


def build_frame_sampler(circuit):
    """The baseline's initialization (one lowering pass + reference run)."""
    return compile_backend(circuit, "frame")


def make_rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)
