"""Fig. 3b: layered random circuits, ⌊n/2⌋ CNOT pairs per layer (dense
interaction).  Same series as Fig. 3a on a gate-heavier workload, where
the frame baseline's per-batch gate traversal costs the most."""

import pytest

from benchmarks.helpers import (
    build_frame_sampler,
    build_symphase_sampler,
    make_rng,
)
from repro.workloads import fig3b_circuit

SIZES = [16, 32, 48]
SHOTS = 2000


@pytest.fixture(scope="module")
def circuits():
    return {n: fig3b_circuit(n, seed=0) for n in SIZES}


@pytest.mark.parametrize("n", SIZES)
def test_init_symphase(benchmark, circuits, n):
    benchmark.group = f"fig3b-init-n{n}"
    benchmark(build_symphase_sampler, circuits[n])


@pytest.mark.parametrize("n", SIZES)
def test_init_frame(benchmark, circuits, n):
    benchmark.group = f"fig3b-init-n{n}"
    benchmark(build_frame_sampler, circuits[n])


@pytest.mark.parametrize("n", SIZES)
def test_sample_symphase(benchmark, circuits, n):
    benchmark.group = f"fig3b-sample-n{n}"
    sampler = build_symphase_sampler(circuits[n])
    rng = make_rng()
    benchmark(sampler.sample, SHOTS, rng)


@pytest.mark.parametrize("n", SIZES)
def test_sample_frame(benchmark, circuits, n):
    benchmark.group = f"fig3b-sample-n{n}"
    sampler = build_frame_sampler(circuits[n])
    rng = make_rng()
    benchmark(sampler.sample, SHOTS, rng)
