"""Fig. 2 / §4: data-layout ablation on packed bit-matrices.

Measures the three access patterns of tableau simulation per layout:
column ops (gates), row ops (measurements), and the gate->measure mode
switch (full-matrix reorganization for chp-style storage is a no-op, so
the interesting comparison is tiled-local-transpose cost vs op speed).
"""

import numpy as np
import pytest

from repro.layout import make_layout

N = 1536
N_OPS = 128
KINDS = ["chp", "stim8", "symphase512"]


def _loaded(kind):
    rng = np.random.default_rng(7)
    layout = make_layout(kind, N)
    layout.load_dense((rng.random((N, N)) < 0.5).astype(np.uint8))
    picks = rng.integers(0, N, size=(N_OPS, 2))
    picks = picks[picks[:, 0] != picks[:, 1]]
    return layout, picks


@pytest.mark.parametrize("kind", KINDS)
def test_column_ops(benchmark, kind):
    benchmark.group = "fig2-column-ops"
    layout, picks = _loaded(kind)
    layout.set_mode("gate")

    def run():
        for a, b in picks:
            layout.column_xor(int(a), int(b))

    benchmark(run)


@pytest.mark.parametrize("kind", KINDS)
def test_row_ops(benchmark, kind):
    benchmark.group = "fig2-row-ops"
    layout, picks = _loaded(kind)
    layout.set_mode("measure")

    def run():
        for a, b in picks:
            layout.row_xor(int(a), int(b))

    benchmark(run)


@pytest.mark.parametrize("kind", KINDS)
def test_mode_switch(benchmark, kind):
    benchmark.group = "fig2-mode-switch"
    layout, _ = _loaded(kind)
    state = {"mode": "gate"}
    layout.set_mode("gate")

    def run():
        nxt = "measure" if state["mode"] == "gate" else "gate"
        layout.set_mode(nxt)
        state["mode"] = nxt

    benchmark(run)
