"""Interpreted vs compiled frame sampling: shots/sec per backend to JSON.

The compiled frame program (PR 2's tentpole) must beat the seed's
per-instruction interpreter by >= 3x on a d=7 surface-code memory
circuit at standard frame batch sizes.  This bench measures detector
sampling throughput for every batch-capable backend and records the
numbers to a JSON file the trajectory can track across PRs.

Run:  PYTHONPATH=src python benchmarks/bench_frame.py \\
          [--distance 7] [--shots 1024] [--out benchmarks/results/bench_frame.json]
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.backends import compile_backend, get_backend
from repro.obs import format_rate, safe_rate
from repro.qec import surface_code_memory

BACKENDS = ("frame-interp", "frame", "symbolic")


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def run_bench(
    distance: int,
    rounds: int,
    shots: int,
    p: float,
    repeats: int,
    seed: int,
) -> dict:
    circuit = surface_code_memory(
        distance, rounds,
        after_clifford_depolarization=p,
        before_measure_flip_probability=p,
    )
    stats = circuit.count_operations()
    result = {
        "circuit": {
            "family": "surface_code_memory",
            "distance": distance,
            "rounds": rounds,
            "p": p,
            "n_qubits": circuit.n_qubits,
            **stats,
        },
        "shots_per_batch": shots,
        "repeats": repeats,
        "backends": {},
    }
    rng = np.random.default_rng(seed)
    for name in BACKENDS:
        init_started = time.perf_counter()
        sampler = compile_backend(circuit, name)
        init_seconds = time.perf_counter() - init_started
        sampler.sample_detectors(64, rng)  # warm any lazy state
        sample_seconds = _best_of(
            lambda: sampler.sample_detectors(shots, rng), repeats
        )
        result["backends"][name] = {
            "init_seconds": init_seconds,
            "sample_seconds": sample_seconds,
            # None (JSON null) when the batch timed at ~0s — tiny smoke
            # sizings must not crash or record inf.
            "shots_per_sec": safe_rate(shots, sample_seconds),
            "compile_once": get_backend(name).info.compile_once,
        }
    interp = result["backends"]["frame-interp"]["shots_per_sec"]
    compiled = result["backends"]["frame"]["shots_per_sec"]
    result["compiled_frame_speedup"] = (
        safe_rate(compiled, interp) if compiled is not None else None
    )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--distance", type=int, default=7)
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="memory rounds (default: --distance)",
    )
    parser.add_argument(
        "--shots", type=int, default=1024,
        help="shots per sample_detectors batch (default 1024, one frame "
             "batch of 16 words)",
    )
    parser.add_argument("--p", type=float, default=0.002)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default="benchmarks/results/bench_frame.json",
        help="JSON output path ('' disables writing)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit nonzero unless compiled/interpreted >= this ratio",
    )
    args = parser.parse_args(argv)

    result = run_bench(
        args.distance, args.rounds or args.distance, args.shots,
        args.p, args.repeats, args.seed,
    )

    print(f"d={args.distance} surface-code memory, "
          f"{args.shots} shots/batch, best of {args.repeats}")
    print(f"{'backend':<14} {'init (s)':>10} {'sample (s)':>11} "
          f"{'shots/sec':>12}")
    for name, row in result["backends"].items():
        print(f"{name:<14} {row['init_seconds']:>10.4f} "
              f"{row['sample_seconds']:>11.4f} "
              f"{format_rate(args.shots, row['sample_seconds']):>12}")
    speedup = result["compiled_frame_speedup"]
    print(f"compiled frame speedup over interpreter: "
          f"{'-' if speedup is None else format(speedup, '.2f') + 'x'}")

    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as handle:
            json.dump(result, handle, indent=2)
        print(f"wrote {args.out}")

    if args.min_speedup is not None and (
        speedup is None or speedup < args.min_speedup
    ):
        print(f"FAIL: speedup below required {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
