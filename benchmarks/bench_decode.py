"""Per-shot vs compiled MWPM decoding: syndromes/sec per decoder to JSON.

The compiled matching decoder (PR 3's tentpole) must beat the seed's
per-shot MatchingDecoder by >= 5x on a d=7 surface-code DEM at
1024-shot batches — while predicting bitwise-identically.  This bench
measures decode_batch throughput for every registered matching-class
decoder, verifies the predictions agree, and records the numbers to a
JSON file the trajectory can track across PRs.

Run:  PYTHONPATH=src python benchmarks/bench_decode.py \\
          [--distance 7] [--shots 1024] [--out benchmarks/results/bench_decode.json]
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.decoders import compile_decoder
from repro.obs import format_rate, safe_rate
from repro.qec import surface_code_dem

DECODERS = ("matching", "compiled-matching")
REFERENCE = "matching"


def _best_of(callable_, repeats: int):
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = callable_()
        best = min(best, time.perf_counter() - started)
    return best, value


def run_bench(
    distance: int,
    rounds: int,
    shots: int,
    p: float,
    repeats: int,
    seed: int,
) -> dict:
    extract_started = time.perf_counter()
    dem = surface_code_dem(distance, rounds, p)
    extract_seconds = time.perf_counter() - extract_started
    syndromes, _ = dem.sample(shots, np.random.default_rng(seed))

    result = {
        "dem": {
            "family": "surface_code_memory",
            "distance": distance,
            "rounds": rounds,
            "p": p,
            "n_detectors": dem.n_detectors,
            "n_observables": dem.n_observables,
            "n_mechanisms": len(dem.mechanisms),
            "extract_seconds": extract_seconds,
        },
        "shots_per_batch": shots,
        "mean_defects_per_shot": float(syndromes.sum(axis=1).mean()),
        "repeats": repeats,
        "decoders": {},
    }
    predictions = {}
    for name in DECODERS:
        init_started = time.perf_counter()
        decoder = compile_decoder(dem, name)
        init_seconds = time.perf_counter() - init_started
        decode_seconds, predicted = _best_of(
            lambda: decoder.decode_batch(syndromes), repeats
        )
        predictions[name] = predicted
        result["decoders"][name] = {
            "init_seconds": init_seconds,
            "decode_seconds": decode_seconds,
            # None (JSON null) when the batch timed at ~0s.
            "syndromes_per_sec": safe_rate(shots, decode_seconds),
        }

    reference = predictions[REFERENCE]
    for name in DECODERS:
        identical = bool(np.array_equal(predictions[name], reference))
        result["decoders"][name]["predictions_identical"] = identical
    compiled_rate = result["decoders"]["compiled-matching"]["syndromes_per_sec"]
    reference_rate = result["decoders"][REFERENCE]["syndromes_per_sec"]
    result["compiled_matching_speedup"] = (
        safe_rate(compiled_rate, reference_rate)
        if compiled_rate is not None
        else None
    )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--distance", type=int, default=7)
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="memory rounds (default 3; detectors scale with rounds)",
    )
    parser.add_argument(
        "--shots", type=int, default=1024,
        help="syndromes per decode_batch call (default 1024)",
    )
    parser.add_argument("--p", type=float, default=0.002)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default="benchmarks/results/bench_decode.json",
        help="JSON output path ('' disables writing)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit nonzero unless compiled/reference >= this ratio",
    )
    args = parser.parse_args(argv)

    result = run_bench(
        args.distance, args.rounds, args.shots, args.p, args.repeats,
        args.seed,
    )

    print(f"d={args.distance} surface-code DEM "
          f"({result['dem']['n_detectors']} detectors, "
          f"{result['dem']['n_mechanisms']} mechanisms), "
          f"{args.shots} syndromes/batch, best of {args.repeats}")
    print(f"{'decoder':<18} {'init (s)':>10} {'decode (s)':>11} "
          f"{'syndromes/sec':>14} {'identical':>10}")
    for name, row in result["decoders"].items():
        print(f"{name:<18} {row['init_seconds']:>10.4f} "
              f"{row['decode_seconds']:>11.4f} "
              f"{format_rate(args.shots, row['decode_seconds']):>14} "
              f"{str(row['predictions_identical']):>10}")
    speedup = result["compiled_matching_speedup"]
    print(f"compiled matching speedup over per-shot reference: "
          f"{'-' if speedup is None else format(speedup, '.2f') + 'x'}")

    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as handle:
            json.dump(result, handle, indent=2)
        print(f"wrote {args.out}")

    if not all(
        row["predictions_identical"] for row in result["decoders"].values()
    ):
        print("FAIL: decoder predictions diverge from the reference")
        return 1
    if args.min_speedup is not None and (
        speedup is None or speedup < args.min_speedup
    ):
        print(f"FAIL: speedup below required {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
