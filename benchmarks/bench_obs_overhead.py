"""Observability overhead: disabled probes must be ~free, enabled cheap.

The ``repro.obs`` instrumentation sits on the collection engine's hot
path (every chunk calls ``span()``/``is_metrics()`` several times), so
its *disabled* cost is a correctness property of PR 6, not a nicety.
This bench measures three things:

* **noop probe cost** — ns per ``obs.span(...)`` call and per
  ``obs.is_metrics()`` flag test with everything off (the price every
  untraced run pays, a few dozen times per chunk);
* **disabled workload** — best-of-N wall time of a small end-to-end
  engine collection with telemetry off, run twice so the spread between
  the two disabled legs shows the machine's noise floor;
* **enabled overhead** — the same workload with tracing + metrics on,
  as a percentage over the disabled best.

Gates (for CI): ``--max-noop-ns`` bounds the disabled probe cost,
``--max-enabled-overhead-pct`` bounds the full-telemetry slowdown.

Run:  PYTHONPATH=src python benchmarks/bench_obs_overhead.py \\
          [--fast] [--max-noop-ns 5000] [--max-enabled-overhead-pct 50]
"""

from __future__ import annotations

import argparse
import json
import os
import time

import repro.obs as obs
from repro.engine import ExecutionOptions, Task, collect
from repro.engine.cache import reset_shared_cache
from repro.qec import repetition_code_memory


def _noop_probe_ns(calls: int) -> dict:
    """Per-call cost of the disabled-path probes, in nanoseconds."""
    assert not obs.is_tracing() and not obs.is_metrics()
    started = time.perf_counter()
    for _ in range(calls):
        with obs.span("bench", index=1):
            pass
    span_seconds = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(calls):
        obs.is_metrics()
    flag_seconds = time.perf_counter() - started
    return {
        "calls": calls,
        "span_ns": span_seconds / calls * 1e9,
        "flag_ns": flag_seconds / calls * 1e9,
    }


def _workload_seconds(task: Task, seed: int, repeats: int) -> float:
    """Best-of-``repeats`` wall time of one serial engine collection."""
    best = float("inf")
    for _ in range(repeats):
        # A cold cache each round so every leg pays the same compile;
        # otherwise the first-timed leg looks slower than it is.
        reset_shared_cache()
        started = time.perf_counter()
        collect(
            [task],
            options=ExecutionOptions(
                base_seed=seed, workers=1, chunk_shots=1_000
            ),
        )
        best = min(best, time.perf_counter() - started)
    return best


def run_bench(
    distance: int, p: float, max_shots: int, repeats: int, seed: int
) -> dict:
    circuit = repetition_code_memory(
        distance,
        rounds=distance,
        data_flip_probability=p,
        measure_flip_probability=p,
    )
    task = Task(circuit, decoder="compiled-matching", max_shots=max_shots)

    obs.reset()
    noop = _noop_probe_ns(200_000)
    disabled_a = _workload_seconds(task, seed, repeats)
    disabled_b = _workload_seconds(task, seed, repeats)
    disabled = min(disabled_a, disabled_b)
    noise_pct = (
        abs(disabled_a - disabled_b) / disabled * 100.0 if disabled else 0.0
    )

    obs.enable(tracing=True, metrics=True)
    try:
        enabled = _workload_seconds(task, seed, repeats)
    finally:
        obs.reset()
    overhead_pct = (
        (enabled - disabled) / disabled * 100.0 if disabled else 0.0
    )

    return {
        "workload": {
            "family": "repetition_code_memory",
            "distance": distance,
            "p": p,
            "max_shots": max_shots,
            "repeats": repeats,
        },
        "noop": noop,
        "disabled_seconds": disabled,
        "disabled_noise_pct": noise_pct,
        "enabled_seconds": enabled,
        "enabled_overhead_pct": overhead_pct,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--distance", type=int, default=5)
    parser.add_argument("--p", type=float, default=0.02)
    parser.add_argument("--max-shots", type=int, default=20_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--fast", action="store_true",
        help="CI smoke sizing: smaller budget, fewer repeats",
    )
    parser.add_argument(
        "--out", default="",
        help="JSON output path ('' disables writing)",
    )
    parser.add_argument(
        "--max-noop-ns", type=float, default=None,
        help="exit nonzero if a disabled span() call costs more than this",
    )
    parser.add_argument(
        "--max-enabled-overhead-pct", type=float, default=None,
        help="exit nonzero if full telemetry costs more than this percent",
    )
    args = parser.parse_args(argv)
    if args.fast:
        args.max_shots = min(args.max_shots, 8_000)
        args.repeats = min(args.repeats, 2)

    result = run_bench(
        args.distance, args.p, args.max_shots, args.repeats, args.seed
    )

    noop = result["noop"]
    print(f"disabled probes: span() {noop['span_ns']:.0f} ns/call, "
          f"is_metrics() {noop['flag_ns']:.0f} ns/call "
          f"({noop['calls']:,} calls)")
    print(f"workload disabled: {result['disabled_seconds']:.3f}s "
          f"(noise between disabled legs: "
          f"{result['disabled_noise_pct']:.1f}%)")
    print(f"workload enabled:  {result['enabled_seconds']:.3f}s "
          f"(+{result['enabled_overhead_pct']:.1f}%)")

    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as handle:
            json.dump(result, handle, indent=2)
        print(f"wrote {args.out}")

    if args.max_noop_ns is not None and noop["span_ns"] > args.max_noop_ns:
        print(f"FAIL: disabled span() costs {noop['span_ns']:.0f} ns "
              f"> {args.max_noop_ns} ns")
        return 1
    if (
        args.max_enabled_overhead_pct is not None
        and result["enabled_overhead_pct"] > args.max_enabled_overhead_pct
    ):
        print(f"FAIL: enabled overhead "
              f"{result['enabled_overhead_pct']:.1f}% > "
              f"{args.max_enabled_overhead_pct}%")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
