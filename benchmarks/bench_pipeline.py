"""End-to-end hot path: sample + decode + count, packed vs unpacked.

PR 2 made sampling compile-once, PR 3 made decoding compiled; this
bench measures the whole pipeline — detector sampling, batch decoding,
error counting — as one number (shots/sec), in both wire formats:

* **unpacked** — ``sample_detectors`` -> ``decode_batch`` -> row-any
  compare over ``(shots, n)`` uint8 matrices (the pre-packed-path
  pipeline);
* **packed**   — ``sample_detectors_packed`` ->
  ``decode_batch_packed`` -> ``xor_rows_any`` over shot-major uint64
  rows, never materializing a uint8 matrix.

Both paths draw the same RNG stream and must produce the **same error
count**; the run fails if they disagree.  A pooled leg runs the same
workload through the collection engine's chunked scheduler (the packed
path is what workers execute) for the deployment-shaped number.

Results go to ``BENCH_pipeline.json`` at the repo root so the perf
trajectory is tracked from this PR onward.

Run:  PYTHONPATH=src python benchmarks/bench_pipeline.py \\
          [--distance 7] [--shots 4096] [--fast] [--min-packed-speedup 2]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

import repro.obs as obs
from repro.engine import ExecutionOptions, Task, collect
from repro.gf2 import bitops
from repro.qec import surface_code_memory


def host_info() -> dict:
    """CPU topology facts the scaling numbers are meaningless without.

    ``cpu_affinity`` is what the process may actually use (cgroup/taskset
    limits included); on a single-core runner the workers-2 leg measures
    time-slicing, not scaling, and the JSON should say so.
    """
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        affinity = None
    return {"cpu_count": os.cpu_count(), "cpu_affinity": affinity}


def usable_cores() -> int:
    info = host_info()
    return min(
        info["cpu_count"] or 1,
        info["cpu_affinity"] or (info["cpu_count"] or 1),
    )


def _best_of(callable_, repeats: int):
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = callable_()
        best = min(best, time.perf_counter() - started)
    return best, value


def _unpacked_pipeline(sampler, decoder, shots: int, seed: int) -> int:
    detectors, observables = sampler.sample_detectors(
        shots, np.random.default_rng(seed)
    )
    predictions = decoder.decode_batch(detectors)
    return int((predictions != observables).any(axis=1).sum())


def _packed_pipeline(sampler, decoder, shots: int, seed: int) -> int:
    detectors, observables = sampler.sample_detectors_packed(
        shots, np.random.default_rng(seed)
    )
    predictions = decoder.decode_batch_packed(detectors)
    return int(np.count_nonzero(bitops.xor_rows_any(predictions, observables)))


def run_bench(
    distance: int,
    rounds: int,
    p: float,
    shots: int,
    repeats: int,
    seed: int,
    backend: str,
    workers: int,
    transport: str = "auto",
    engine_chunk_factor: int = 8,
) -> dict:
    circuit = surface_code_memory(
        distance, rounds,
        after_clifford_depolarization=p,
        before_measure_flip_probability=p,
    )
    compiled = circuit.compile(sampler=backend, decoder="compiled-matching")
    compile_started = time.perf_counter()
    sampler = compiled.sampler
    decoder = compiled.decoder
    compile_seconds = time.perf_counter() - compile_started

    # Warm both paths once so neither pays lazy-init costs in the timing.
    _unpacked_pipeline(sampler, decoder, shots, seed)
    _packed_pipeline(sampler, decoder, shots, seed)

    unpacked_seconds, unpacked_errors = _best_of(
        lambda: _unpacked_pipeline(sampler, decoder, shots, seed), repeats
    )
    packed_seconds, packed_errors = _best_of(
        lambda: _packed_pipeline(sampler, decoder, shots, seed), repeats
    )

    detectors, _ = sampler.sample_detectors_packed(
        shots, np.random.default_rng(seed)
    )
    result = {
        "circuit": {
            "family": "surface_code_memory",
            "distance": distance,
            "rounds": rounds,
            "p": p,
            "n_detectors": compiled.dem.n_detectors,
            "n_observables": compiled.dem.n_observables,
        },
        "host": host_info(),
        "backend": backend,
        "decoder": "compiled-matching",
        "transport": transport,
        "shots_per_batch": shots,
        "repeats": repeats,
        "compile_seconds": compile_seconds,
        "mean_defects_per_shot": float(
            bitops.popcount_rows(detectors).mean()
        ),
        "serial": {
            "unpacked": {
                "seconds": unpacked_seconds,
                "shots_per_sec": obs.safe_rate(shots, unpacked_seconds),
                "errors": unpacked_errors,
            },
            "packed": {
                "seconds": packed_seconds,
                "shots_per_sec": obs.safe_rate(shots, packed_seconds),
                "errors": packed_errors,
            },
        },
        "errors_identical": packed_errors == unpacked_errors,
        "packed_speedup": obs.safe_rate(unpacked_seconds, packed_seconds),
    }

    # Deployment-shaped leg: a multi-chunk budget through the collection
    # engine's chunked scheduler (workers run the packed path).  Wall
    # time includes pool spin-up and any per-worker compile, which is
    # why it needs several chunks per worker to say anything.
    task = Task(
        circuit, decoder="compiled-matching", sampler=backend,
        max_shots=shots * engine_chunk_factor,
    )
    for pool_workers in (1, workers):
        # Each engine leg runs profiled (repro.obs metrics on), so the
        # JSON records where pooled time actually goes: per-worker
        # decode seconds, queue wait, and the pickled transport volume.
        # The metrics probes cost <2% (CI-gated by
        # bench_obs_overhead.py) — a fair price for attributable legs.
        obs.reset()
        obs.enable(tracing=False, metrics=True)
        try:
            started = time.perf_counter()
            stats = collect(
                [task],
                options=ExecutionOptions(
                    base_seed=seed, workers=pool_workers, chunk_shots=shots,
                    transport=transport,
                ),
            )[0]
            wall = time.perf_counter() - started
            reg = obs.registry()
            per_worker_decode = {
                pid: reg.value(
                    "repro_stage_seconds_total", stage="decode", pid=pid
                )
                or 0.0
                for pid in reg.label_values("repro_chunks_total", "pid")
            }
            spec_bytes = int(
                reg.value("repro_transport_spec_bytes_total") or 0
            )
            result_bytes = int(
                reg.value("repro_transport_result_bytes_total") or 0
            )
        finally:
            obs.reset()
        result[f"engine_workers_{pool_workers}"] = {
            "shots": stats.shots,
            "errors": stats.errors,
            "wall_seconds": wall,
            "shots_per_sec": obs.safe_rate(stats.shots, wall),
            "sample_seconds": stats.sample_seconds,
            "decode_seconds": stats.decode_seconds,
            "queue_wait_seconds": stats.queue_wait_seconds,
            "hold_seconds": stats.hold_seconds,
            "transport": {
                "spec_bytes": spec_bytes,
                "result_bytes": result_bytes,
                "total_bytes": stats.transport_bytes,
            },
            "per_worker_decode_seconds": per_worker_decode,
        }
    serial_rate = result["engine_workers_1"]["shots_per_sec"]
    pooled_rate = result[f"engine_workers_{workers}"]["shots_per_sec"]
    result["scaling_efficiency"] = (
        pooled_rate / serial_rate
        if workers > 1 and serial_rate and pooled_rate
        else None
    )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--distance", type=int, default=7)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--p", type=float, default=0.002)
    parser.add_argument("--shots", type=int, default=4096)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", default="frame")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--transport", choices=["auto", "pickle", "shm"], default="auto",
        help="engine-leg wire (same option as `repro collect --transport`)",
    )
    parser.add_argument(
        "--engine-chunk-factor", type=int, default=8,
        help=(
            "engine-leg budget in chunks (max_shots = shots * factor); "
            "raise it so pooled legs amortize pool spin-up when gating "
            "scaling efficiency"
        ),
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="CI smoke sizing: fewer shots and repeats, same circuit",
    )
    parser.add_argument(
        "--out", default="BENCH_pipeline.json",
        help="JSON output path ('' disables writing; default: repo root)",
    )
    parser.add_argument(
        "--min-packed-speedup", type=float, default=None,
        help="exit nonzero unless packed/unpacked >= this ratio",
    )
    parser.add_argument(
        "--min-scaling-efficiency", type=float, default=None,
        help=(
            "exit nonzero unless pooled/serial engine throughput >= this "
            "ratio; auto-skipped (recorded as skipped_single_core) when "
            "fewer than 2 usable cores"
        ),
    )
    args = parser.parse_args(argv)
    if args.fast:
        args.shots = min(args.shots, 2048)
        args.repeats = min(args.repeats, 3)

    result = run_bench(
        args.distance, args.rounds, args.p, args.shots, args.repeats,
        args.seed, args.backend, args.workers,
        transport=args.transport,
        engine_chunk_factor=args.engine_chunk_factor,
    )
    # Single-core runners time-slice the pooled leg; their workers-2
    # numbers measure contention, not scaling, and the JSON says so.
    result["scaling_gate"] = (
        "skipped_single_core" if usable_cores() < 2 else "measured"
    )
    if result["scaling_gate"] == "skipped_single_core":
        # On stderr so CI logs surface the skip even when stdout is
        # piped into a JSON consumer.
        print(
            "scaling gate skipped_single_core: fewer than 2 usable cores; "
            "workers-2 numbers would measure time-slicing, not scaling",
            file=sys.stderr,
        )

    meta = result["circuit"]
    print(f"d={meta['distance']} surface-code memory "
          f"({meta['n_detectors']} detectors, p={meta['p']}), "
          f"{args.shots} shots/batch, backend={args.backend}, "
          f"best of {args.repeats}")
    print(f"{'pipeline':<20} {'seconds':>9} {'shots/sec':>12} {'errors':>7}")
    for name in ("unpacked", "packed"):
        row = result["serial"][name]
        print(f"serial {name:<13} {row['seconds']:>9.4f} "
              f"{obs.format_rate(args.shots, row['seconds']):>12} "
              f"{row['errors']:>7}")
    for key in sorted(k for k in result if k.startswith("engine_workers_")):
        row = result[key]
        print(f"{key:<20} {row['wall_seconds']:>9.4f} "
              f"{obs.format_rate(row['shots'], row['wall_seconds']):>12} "
              f"{row['errors']:>7}")
        transport = row["transport"]
        print(f"{'':<20} queue-wait {row['queue_wait_seconds']:.2f}s, "
              f"hold {row['hold_seconds']:.2f}s, "
              f"transport {transport['total_bytes']:,} B, "
              f"decode/worker "
              + "+".join(
                  f"{seconds:.2f}s"
                  for seconds in row["per_worker_decode_seconds"].values()
              ))
    speedup = result["packed_speedup"]
    print(f"packed end-to-end speedup: "
          f"{'-' if speedup is None else format(speedup, '.2f') + 'x'} "
          f"(errors identical: {result['errors_identical']})")
    efficiency = result["scaling_efficiency"]
    print(f"scaling efficiency (workers={args.workers}, "
          f"transport={args.transport}): "
          f"{'-' if efficiency is None else format(efficiency, '.2f') + 'x'} "
          f"[{result['scaling_gate']}, "
          f"cpu_count={result['host']['cpu_count']}, "
          f"affinity={result['host']['cpu_affinity']}]")

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result, handle, indent=2)
        print(f"wrote {args.out}")

    if not result["errors_identical"]:
        print("FAIL: packed and unpacked error counts diverge")
        return 1
    if args.min_packed_speedup is not None and (
        speedup is None or speedup < args.min_packed_speedup
    ):
        print(f"FAIL: packed speedup below required "
              f"{args.min_packed_speedup}x")
        return 1
    if args.min_scaling_efficiency is not None:
        if result["scaling_gate"] == "skipped_single_core":
            print(
                "scaling gate skipped (skipped_single_core): fewer than 2 "
                "usable cores",
                file=sys.stderr,
            )
        elif efficiency is None or efficiency < args.min_scaling_efficiency:
            print(f"FAIL: scaling efficiency below required "
                  f"{args.min_scaling_efficiency}x")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
