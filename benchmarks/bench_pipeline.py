"""End-to-end hot path: sample + decode + count, packed vs unpacked.

PR 2 made sampling compile-once, PR 3 made decoding compiled; this
bench measures the whole pipeline — detector sampling, batch decoding,
error counting — as one number (shots/sec), in both wire formats:

* **unpacked** — ``sample_detectors`` -> ``decode_batch`` -> row-any
  compare over ``(shots, n)`` uint8 matrices (the pre-packed-path
  pipeline);
* **packed**   — ``sample_detectors_packed`` ->
  ``decode_batch_packed`` -> ``xor_rows_any`` over shot-major uint64
  rows, never materializing a uint8 matrix.

Both paths draw the same RNG stream and must produce the **same error
count**; the run fails if they disagree.  A pooled leg runs the same
workload through the collection engine's chunked scheduler (the packed
path is what workers execute) for the deployment-shaped number.

Results go to ``BENCH_pipeline.json`` at the repo root so the perf
trajectory is tracked from this PR onward.

Run:  PYTHONPATH=src python benchmarks/bench_pipeline.py \\
          [--distance 7] [--shots 4096] [--fast] [--min-packed-speedup 2]
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

import repro.obs as obs
from repro.engine import ExecutionOptions, Task, collect
from repro.gf2 import bitops
from repro.qec import surface_code_memory


def _best_of(callable_, repeats: int):
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = callable_()
        best = min(best, time.perf_counter() - started)
    return best, value


def _unpacked_pipeline(sampler, decoder, shots: int, seed: int) -> int:
    detectors, observables = sampler.sample_detectors(
        shots, np.random.default_rng(seed)
    )
    predictions = decoder.decode_batch(detectors)
    return int((predictions != observables).any(axis=1).sum())


def _packed_pipeline(sampler, decoder, shots: int, seed: int) -> int:
    detectors, observables = sampler.sample_detectors_packed(
        shots, np.random.default_rng(seed)
    )
    predictions = decoder.decode_batch_packed(detectors)
    return int(np.count_nonzero(bitops.xor_rows_any(predictions, observables)))


def run_bench(
    distance: int,
    rounds: int,
    p: float,
    shots: int,
    repeats: int,
    seed: int,
    backend: str,
    workers: int,
) -> dict:
    circuit = surface_code_memory(
        distance, rounds,
        after_clifford_depolarization=p,
        before_measure_flip_probability=p,
    )
    compiled = circuit.compile(sampler=backend, decoder="compiled-matching")
    compile_started = time.perf_counter()
    sampler = compiled.sampler
    decoder = compiled.decoder
    compile_seconds = time.perf_counter() - compile_started

    # Warm both paths once so neither pays lazy-init costs in the timing.
    _unpacked_pipeline(sampler, decoder, shots, seed)
    _packed_pipeline(sampler, decoder, shots, seed)

    unpacked_seconds, unpacked_errors = _best_of(
        lambda: _unpacked_pipeline(sampler, decoder, shots, seed), repeats
    )
    packed_seconds, packed_errors = _best_of(
        lambda: _packed_pipeline(sampler, decoder, shots, seed), repeats
    )

    detectors, _ = sampler.sample_detectors_packed(
        shots, np.random.default_rng(seed)
    )
    result = {
        "circuit": {
            "family": "surface_code_memory",
            "distance": distance,
            "rounds": rounds,
            "p": p,
            "n_detectors": compiled.dem.n_detectors,
            "n_observables": compiled.dem.n_observables,
        },
        "backend": backend,
        "decoder": "compiled-matching",
        "shots_per_batch": shots,
        "repeats": repeats,
        "compile_seconds": compile_seconds,
        "mean_defects_per_shot": float(
            bitops.popcount_rows(detectors).mean()
        ),
        "serial": {
            "unpacked": {
                "seconds": unpacked_seconds,
                "shots_per_sec": obs.safe_rate(shots, unpacked_seconds),
                "errors": unpacked_errors,
            },
            "packed": {
                "seconds": packed_seconds,
                "shots_per_sec": obs.safe_rate(shots, packed_seconds),
                "errors": packed_errors,
            },
        },
        "errors_identical": packed_errors == unpacked_errors,
        "packed_speedup": obs.safe_rate(unpacked_seconds, packed_seconds),
    }

    # Deployment-shaped leg: a multi-chunk budget through the collection
    # engine's chunked scheduler (workers run the packed path).  Wall
    # time includes pool spin-up and any per-worker compile, which is
    # why it needs several chunks per worker to say anything.
    task = Task(
        circuit, decoder="compiled-matching", sampler=backend,
        max_shots=shots * 8,
    )
    for pool_workers in (1, workers):
        # Each engine leg runs profiled (repro.obs metrics on), so the
        # JSON records where pooled time actually goes: per-worker
        # decode seconds, queue wait, and the pickled transport volume.
        # The metrics probes cost <2% (CI-gated by
        # bench_obs_overhead.py) — a fair price for attributable legs.
        obs.reset()
        obs.enable(tracing=False, metrics=True)
        try:
            started = time.perf_counter()
            stats = collect(
                [task],
                options=ExecutionOptions(
                    base_seed=seed, workers=pool_workers, chunk_shots=shots
                ),
            )[0]
            wall = time.perf_counter() - started
            reg = obs.registry()
            per_worker_decode = {
                pid: reg.value(
                    "repro_stage_seconds_total", stage="decode", pid=pid
                )
                or 0.0
                for pid in reg.label_values("repro_chunks_total", "pid")
            }
            spec_bytes = int(
                reg.value("repro_transport_spec_bytes_total") or 0
            )
            result_bytes = int(
                reg.value("repro_transport_result_bytes_total") or 0
            )
        finally:
            obs.reset()
        result[f"engine_workers_{pool_workers}"] = {
            "shots": stats.shots,
            "errors": stats.errors,
            "wall_seconds": wall,
            "shots_per_sec": obs.safe_rate(stats.shots, wall),
            "sample_seconds": stats.sample_seconds,
            "decode_seconds": stats.decode_seconds,
            "queue_wait_seconds": stats.queue_wait_seconds,
            "hold_seconds": stats.hold_seconds,
            "transport": {
                "spec_bytes": spec_bytes,
                "result_bytes": result_bytes,
                "total_bytes": stats.transport_bytes,
            },
            "per_worker_decode_seconds": per_worker_decode,
        }
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--distance", type=int, default=7)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--p", type=float, default=0.002)
    parser.add_argument("--shots", type=int, default=4096)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", default="frame")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--fast", action="store_true",
        help="CI smoke sizing: fewer shots and repeats, same circuit",
    )
    parser.add_argument(
        "--out", default="BENCH_pipeline.json",
        help="JSON output path ('' disables writing; default: repo root)",
    )
    parser.add_argument(
        "--min-packed-speedup", type=float, default=None,
        help="exit nonzero unless packed/unpacked >= this ratio",
    )
    args = parser.parse_args(argv)
    if args.fast:
        args.shots = min(args.shots, 2048)
        args.repeats = min(args.repeats, 3)

    result = run_bench(
        args.distance, args.rounds, args.p, args.shots, args.repeats,
        args.seed, args.backend, args.workers,
    )

    meta = result["circuit"]
    print(f"d={meta['distance']} surface-code memory "
          f"({meta['n_detectors']} detectors, p={meta['p']}), "
          f"{args.shots} shots/batch, backend={args.backend}, "
          f"best of {args.repeats}")
    print(f"{'pipeline':<20} {'seconds':>9} {'shots/sec':>12} {'errors':>7}")
    for name in ("unpacked", "packed"):
        row = result["serial"][name]
        print(f"serial {name:<13} {row['seconds']:>9.4f} "
              f"{obs.format_rate(args.shots, row['seconds']):>12} "
              f"{row['errors']:>7}")
    for key in sorted(k for k in result if k.startswith("engine_workers_")):
        row = result[key]
        print(f"{key:<20} {row['wall_seconds']:>9.4f} "
              f"{obs.format_rate(row['shots'], row['wall_seconds']):>12} "
              f"{row['errors']:>7}")
        transport = row["transport"]
        print(f"{'':<20} queue-wait {row['queue_wait_seconds']:.2f}s, "
              f"hold {row['hold_seconds']:.2f}s, "
              f"transport {transport['total_bytes']:,} B, "
              f"decode/worker "
              + "+".join(
                  f"{seconds:.2f}s"
                  for seconds in row["per_worker_decode_seconds"].values()
              ))
    speedup = result["packed_speedup"]
    print(f"packed end-to-end speedup: "
          f"{'-' if speedup is None else format(speedup, '.2f') + 'x'} "
          f"(errors identical: {result['errors_identical']})")

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result, handle, indent=2)
        print(f"wrote {args.out}")

    if not result["errors_identical"]:
        print("FAIL: packed and unpacked error counts diverge")
        return 1
    if args.min_packed_speedup is not None and (
        speedup is None or speedup < args.min_packed_speedup
    ):
        print(f"FAIL: packed speedup below required "
              f"{args.min_packed_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
