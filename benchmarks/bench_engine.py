"""Collection-engine bench: serial vs pooled shot throughput.

The engine's pitch is that a collection run pays Algorithm 1's
Initialization once (sampler cache) and then fans pure Eq. 4 sampling +
decoding chunks across processes.  These benches measure the end-to-end
chunk stream — sample, decode, aggregate — for one warm task on a live
runner, serial and pooled, so the ratio is the scheduling + IPC overhead
versus the parallel speedup (on CI-scale circuits the chunks are small,
so pooled wins grow with --benchmark-scale and with circuit size).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_engine.py
"""

import pytest

from repro.engine import ChunkRunner, plan_chunks, run_chunk
from repro.qec import repetition_code_memory

SHOTS = 16_000
CHUNK_SHOTS = 1_000
SEED = 0


@pytest.fixture(scope="module")
def chunk_specs():
    task = repetition_code_memory(
        7, rounds=7,
        data_flip_probability=0.02,
        measure_flip_probability=0.02,
    ).compile(decoder="matching").task(
        max_shots=SHOTS, metadata={"d": 7, "p": 0.02},
    )
    specs = plan_chunks(task, SEED, CHUNK_SHOTS)
    # Warm the in-process cache so the serial bench times sampling +
    # decoding, not one-off initialization.
    run_chunk(specs[0])
    return specs


def _drain(runner, specs):
    shots = errors = 0
    for result in runner.run(specs):
        shots += result.shots
        errors += result.errors
    return shots, errors


def test_engine_serial(benchmark, chunk_specs):
    benchmark.group = "engine-throughput"
    with ChunkRunner(workers=1) as runner:
        shots, _ = benchmark(lambda: _drain(runner, chunk_specs))
    assert shots == SHOTS


@pytest.mark.parametrize("workers", [2, 4])
def test_engine_pooled(benchmark, chunk_specs, workers):
    benchmark.group = "engine-throughput"
    with ChunkRunner(workers=workers) as runner:
        _drain(runner, chunk_specs)  # warm each worker's sampler cache
        shots, _ = benchmark(lambda: _drain(runner, chunk_specs))
    assert shots == SHOTS


def test_engine_serial_equals_pooled(chunk_specs):
    """The determinism contract the bench relies on: identical counts."""
    with ChunkRunner(workers=1) as serial:
        counts_serial = _drain(serial, chunk_specs)
    with ChunkRunner(workers=2) as pooled:
        counts_pooled = _drain(pooled, chunk_specs)
    assert counts_serial == counts_pooled
