"""Ablation: word-parallel packed tableau vs per-row uint8 tableau.

The §4 layout claims become simulator-level numbers here: gate
application on the qubit-major packed form updates 64 generators per
word, and the gate->measure transition costs one bit-transpose.
"""

import numpy as np
import pytest

from repro.tableau import Tableau
from repro.tableau.packed import PackedTableau

N = 512
N_GATES = 400


def _gate_list(n, rng):
    singles = ("H", "S", "SQRT_X", "C_XYZ")
    gates = []
    for _ in range(N_GATES):
        if rng.random() < 0.4:
            a, b = rng.choice(n, 2, replace=False)
            gates.append(("CX", (int(a), int(b))))
        else:
            gates.append((str(rng.choice(singles)), (int(rng.integers(n)),)))
    return gates


@pytest.fixture(scope="module")
def gates():
    return _gate_list(N, np.random.default_rng(0))


def test_gates_unpacked(benchmark, gates):
    benchmark.group = "tableau-gate-throughput"
    tableau = Tableau(N)

    def run():
        for name, targets in gates:
            tableau.apply_gate(name, targets)

    benchmark(run)


def test_gates_packed(benchmark, gates):
    benchmark.group = "tableau-gate-throughput"
    packed = PackedTableau(N)

    def run():
        for name, targets in gates:
            packed.apply_gate(name, targets)

    benchmark(run)


def test_mode_switch_cost(benchmark):
    benchmark.group = "tableau-mode-switch"
    packed = PackedTableau(N)
    benchmark(packed.to_tableau)
