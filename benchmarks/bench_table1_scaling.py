"""Table 1: asymptotic sampling-cost comparison.

Two sweeps isolate the two claims:

* gate sweep — SymPhase's per-batch sampling cost is *independent of the
  gate count* n_g; the frame baseline's grows linearly with it;
* shot sweep — both are linear in n_smp (the constant differs).
"""

import pytest

from benchmarks.helpers import (
    build_frame_sampler,
    build_symphase_sampler,
    make_rng,
)
from repro.workloads import layered_random_circuit

N_QUBITS = 24
LAYER_SWEEP = [10, 40, 160]
SHOT_SWEEP = [500, 2000]
BASE_SHOTS = 1000


@pytest.fixture(scope="module")
def gate_sweep_circuits():
    return {
        layers: layered_random_circuit(
            N_QUBITS, n_layers=layers, cnot_pairs_per_layer=5, seed=0
        )
        for layers in LAYER_SWEEP
    }


@pytest.mark.parametrize("layers", LAYER_SWEEP)
def test_sample_vs_gates_symphase(benchmark, gate_sweep_circuits, layers):
    benchmark.group = f"table1-gates-L{layers}"
    sampler = build_symphase_sampler(gate_sweep_circuits[layers])
    rng = make_rng()
    benchmark(sampler.sample, BASE_SHOTS, rng)


@pytest.mark.parametrize("layers", LAYER_SWEEP)
def test_sample_vs_gates_frame(benchmark, gate_sweep_circuits, layers):
    benchmark.group = f"table1-gates-L{layers}"
    sampler = build_frame_sampler(gate_sweep_circuits[layers])
    rng = make_rng()
    benchmark(sampler.sample, BASE_SHOTS, rng)


@pytest.fixture(scope="module")
def fixed_circuit():
    return layered_random_circuit(
        N_QUBITS, n_layers=40, cnot_pairs_per_layer=5, seed=0
    )


@pytest.mark.parametrize("shots", SHOT_SWEEP)
def test_sample_vs_shots_symphase(benchmark, fixed_circuit, shots):
    benchmark.group = f"table1-shots-{shots}"
    sampler = build_symphase_sampler(fixed_circuit)
    rng = make_rng()
    benchmark(sampler.sample, shots, rng)


@pytest.mark.parametrize("shots", SHOT_SWEEP)
def test_sample_vs_shots_frame(benchmark, fixed_circuit, shots):
    benchmark.group = f"table1-shots-{shots}"
    sampler = build_frame_sampler(fixed_circuit)
    rng = make_rng()
    benchmark(sampler.sample, shots, rng)


@pytest.mark.parametrize("layers", LAYER_SWEEP)
def test_init_vs_gates_symphase(benchmark, gate_sweep_circuits, layers):
    """Init cost grows with n_g for both engines (Table 1 rows 1 and 3)."""
    benchmark.group = f"table1-init-L{layers}"
    benchmark(build_symphase_sampler, gate_sweep_circuits[layers])


@pytest.mark.parametrize("layers", LAYER_SWEEP)
def test_init_vs_gates_frame(benchmark, gate_sweep_circuits, layers):
    benchmark.group = f"table1-init-L{layers}"
    benchmark(build_frame_sampler, gate_sweep_circuits[layers])
