"""§5's sparse-circuit claim: on QEC circuits the measurement matrix is
column-sparse, and the sparse column-XOR kernel beats the dense packed
matmul (Table 1's O(n_smp * n_m) footnote)."""

import pytest

from benchmarks.helpers import build_symphase_sampler, make_rng
from repro.qec import repetition_code_memory, surface_code_memory

SHOTS = 5000


@pytest.fixture(scope="module")
def surface_sampler():
    circuit = surface_code_memory(
        5, 5,
        after_clifford_depolarization=0.002,
        before_measure_flip_probability=0.002,
    )
    return build_symphase_sampler(circuit)


@pytest.fixture(scope="module")
def repetition_sampler():
    circuit = repetition_code_memory(
        11, 11, data_flip_probability=0.01, measure_flip_probability=0.01
    )
    return build_symphase_sampler(circuit)


def test_surface_sparse(benchmark, surface_sampler):
    benchmark.group = "sparse-surface-d5"
    rng = make_rng()
    benchmark(surface_sampler.sample, SHOTS, rng, "sparse")


def test_surface_dense(benchmark, surface_sampler):
    benchmark.group = "sparse-surface-d5"
    rng = make_rng()
    benchmark(surface_sampler.sample, SHOTS, rng, "dense")


def test_surface_auto_picks_sparse(surface_sampler):
    assert surface_sampler.choose_strategy() == "sparse"


def test_repetition_sparse(benchmark, repetition_sampler):
    benchmark.group = "sparse-repetition-d11"
    rng = make_rng()
    benchmark(repetition_sampler.sample, SHOTS, rng, "sparse")


def test_repetition_dense(benchmark, repetition_sampler):
    benchmark.group = "sparse-repetition-d11"
    rng = make_rng()
    benchmark(repetition_sampler.sample, SHOTS, rng, "dense")


def test_detector_sampling(benchmark, surface_sampler):
    benchmark.group = "sparse-detectors"
    rng = make_rng()
    benchmark(surface_sampler.sample_detectors, SHOTS, rng)
