"""Fig. 3c: Fig. 3b's workload plus single-qubit depolarization on every
qubit in every layer — the noisy case where the frame baseline must also
re-sample noise per batch while SymPhase folds it into the symbol draw."""

import pytest

from benchmarks.helpers import (
    build_frame_sampler,
    build_symphase_sampler,
    make_rng,
)
from repro.workloads import fig3c_circuit

SIZES = [16, 32]
SHOTS = 2000


@pytest.fixture(scope="module")
def circuits():
    return {n: fig3c_circuit(n, seed=0) for n in SIZES}


@pytest.mark.parametrize("n", SIZES)
def test_init_symphase(benchmark, circuits, n):
    benchmark.group = f"fig3c-init-n{n}"
    benchmark(build_symphase_sampler, circuits[n])


@pytest.mark.parametrize("n", SIZES)
def test_init_frame(benchmark, circuits, n):
    benchmark.group = f"fig3c-init-n{n}"
    benchmark(build_frame_sampler, circuits[n])


@pytest.mark.parametrize("n", SIZES)
def test_sample_symphase(benchmark, circuits, n):
    benchmark.group = f"fig3c-sample-n{n}"
    sampler = build_symphase_sampler(circuits[n])
    rng = make_rng()
    benchmark(sampler.sample, SHOTS, rng)


@pytest.mark.parametrize("n", SIZES)
def test_sample_frame(benchmark, circuits, n):
    benchmark.group = f"fig3c-sample-n{n}"
    sampler = build_frame_sampler(circuits[n])
    rng = make_rng()
    benchmark(sampler.sample, SHOTS, rng)
