"""Shared fixtures."""

import numpy as np
import pytest

import repro.obs as obs


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def _obs_clean_slate():
    """Telemetry state is process-global; no test may leak it."""
    obs.reset()
    yield
    obs.reset()
