"""Tests for the symbolic-phase simulator, including the paper's own
worked examples (§3.1 and Fig. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Circuit
from repro.core import (
    SymPhaseSimulator,
    concrete_replay,
    random_assignment,
    substituted_record,
)
from tests.helpers import random_clifford_circuit


def supports(sim, k):
    return set(sim.measurement_support(k).tolist())


class TestPaperSection31Example:
    """The 2-qubit worked example of §3.1:

        |0> -H-.--X^s1--M
        |0> ---X--X^s2--M

    yields m1 = s3 (fresh coin) and m2 = s1 ^ s2 ^ s3.
    """

    @pytest.fixture()
    def sim(self):
        c = Circuit.from_text(
            "H 0\nCNOT 0 1\nX_ERROR(0.5) 0\nX_ERROR(0.5) 1\nM 0 1"
        )
        return SymPhaseSimulator.from_circuit(c)

    def test_symbol_inventory(self, sim):
        kinds = [info.kind for info in sim.symbols.infos]
        assert kinds == ["noise", "noise", "measurement"]

    def test_m1_is_fresh_coin(self, sim):
        assert supports(sim, 0) == {3}

    def test_m2_is_s1_xor_s2_xor_s3(self, sim):
        assert supports(sim, 1) == {1, 2, 3}


class TestPaperFig1Example:
    """Fig. 1's exact content: after the GHZ prep and the faults
    Z^{s1} X^{s2} X^{s3} X^{s4}, the stabilizer tableau is

        (-1)^{s1}      XXXX
        (-1)^{s2}      ZZII
        (-1)^{s2+s3}   IZZI
        (-1)^{s3+s4}   IIZZ

    i.e. the faults accumulate *explicitly* in the phases.  (The figure's
    measurement column idealizes away the collapse coin; the measurement
    semantics are covered exactly by the §3.1 example above and by the
    linearity tests below.)
    """

    @pytest.fixture()
    def sim(self):
        c = Circuit.from_text("""
            H 0
            CNOT 0 1
            CNOT 1 2
            CNOT 2 3
            Z_ERROR(0.5) 0
            X_ERROR(0.5) 1
            X_ERROR(0.5) 2
            X_ERROR(0.5) 3
        """)
        return SymPhaseSimulator.from_circuit(c)

    def test_stabilizer_paulis_match_figure(self, sim):
        n = sim.n
        rows = ["".join(
            "IXZY"[int(x) + 2 * int(z)]
            for x, z in zip(sim.xs[n + i], sim.zs[n + i])
        ) for i in range(n)]
        assert rows == ["XXXX", "ZZII", "IZZI", "IIZZ"]

    def test_phase_expressions_match_figure(self, sim):
        n = sim.n
        phase_supports = [
            set(sim.phases.row_support(n + i).tolist()) for i in range(n)
        ]
        assert phase_supports == [{1}, {2}, {2, 3}, {3, 4}]

    def test_symbols_are_all_noise(self, sim):
        assert [info.kind for info in sim.symbols.infos] == ["noise"] * 4


class TestControlFlowFacts:
    def test_fact2_xz_blocks_independent_of_noise(self):
        """Fact 2: the X/Z bit blocks evolve independently of the phases,
        so adding noise must not change them."""
        clean = Circuit().h(0).cx(0, 1).m(0, 1)
        noisy = Circuit().h(0).depolarize1(0.4, 0).cx(0, 1).x_error(0.2, 1).m(0, 1)
        a = SymPhaseSimulator.from_circuit(clean)
        b = SymPhaseSimulator.from_circuit(noisy)
        assert np.array_equal(a.xs, b.xs)
        assert np.array_equal(a.zs, b.zs)

    def test_deterministic_circuit_constant_expressions(self):
        c = Circuit().x(0).cx(0, 1).m(0, 1)
        sim = SymPhaseSimulator.from_circuit(c)
        assert supports(sim, 0) == {0}  # constant 1
        assert supports(sim, 1) == {0}

    def test_expression_string_format(self):
        c = Circuit().h(0).m(0)
        sim = SymPhaseSimulator.from_circuit(c)
        assert sim.measurement_expression(0) == "m0(q0)"

    def test_zero_expression_renders(self):
        c = Circuit().m(0)
        sim = SymPhaseSimulator.from_circuit(c)
        assert sim.measurement_expression(0) == "0"


class TestLinearity:
    """The paper's central claim (Facts 1+2): substituting any concrete
    symbol values into the symbolic expressions reproduces exactly the
    record of a concrete simulation with those faults and coins."""

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_substitution_equals_concrete_replay(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        circuit = random_clifford_circuit(
            rng, n, depth=30, p_noise=0.2, p_measure=0.12, p_reset=0.08
        )
        sim = SymPhaseSimulator.from_circuit(circuit)
        for _ in range(3):
            assignment = random_assignment(sim, rng)
            assert np.array_equal(
                substituted_record(sim, assignment),
                concrete_replay(circuit, sim, assignment),
            )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_linearity_with_feedback(self, seed):
        """Same property with classically-controlled Paulis mixed in —
        the §6 extension must preserve the substitution theorem."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        circuit = random_clifford_circuit(
            rng, n, depth=35,
            p_noise=0.15, p_measure=0.15, p_reset=0.05, p_feedback=0.1,
        )
        sim = SymPhaseSimulator.from_circuit(circuit)
        for _ in range(3):
            assignment = random_assignment(sim, rng)
            assert np.array_equal(
                substituted_record(sim, assignment),
                concrete_replay(circuit, sim, assignment),
            )

    def test_exhaustive_small_circuit(self):
        """All 2^n assignments on a circuit small enough to enumerate."""
        circuit = Circuit.from_text("""
            H 0
            CX 0 1
            X_ERROR(0.5) 0
            Z_ERROR(0.5) 0
            M 0
            CX 1 0
            MR 1
            M 0
        """)
        sim = SymPhaseSimulator.from_circuit(circuit)
        width = sim.symbols.width
        for bits in range(2 ** (width - 1)):
            assignment = np.zeros(width, dtype=np.uint8)
            assignment[0] = 1
            for j in range(width - 1):
                assignment[j + 1] = (bits >> j) & 1
            assert np.array_equal(
                substituted_record(sim, assignment),
                concrete_replay(circuit, sim, assignment),
            ), f"assignment {assignment} diverged"

    def test_assignment_validation(self):
        sim = SymPhaseSimulator.from_circuit(Circuit().h(0).m(0))
        bad = np.zeros(sim.symbols.width, dtype=np.uint8)  # constant = 0
        with pytest.raises(ValueError):
            substituted_record(sim, bad)
        with pytest.raises(ValueError):
            substituted_record(sim, np.ones(99, dtype=np.uint8))


class TestDetectorsAndObservables:
    def test_detector_lookback_resolution(self):
        c = Circuit().h(0).m(0).m(0).detector(-1, -2)
        sim = SymPhaseSimulator.from_circuit(c)
        assert list(sim.detectors[0]) == [1, 0]

    def test_observable_accumulates(self):
        c = Circuit().m(0).observable_include(0, -1).m(0).observable_include(0, -1)
        sim = SymPhaseSimulator.from_circuit(c)
        assert sim.observables[0] == [0, 1]

    def test_lookback_before_start_rejected(self):
        c = Circuit().m(0).detector(-2)
        with pytest.raises(ValueError):
            SymPhaseSimulator.from_circuit(c)

    def test_repeated_measurement_of_collapsed_qubit(self):
        c = Circuit().h(0).m(0).m(0).m(0)
        sim = SymPhaseSimulator.from_circuit(c)
        # All three must be the same expression: one coin, re-read twice.
        assert supports(sim, 0) == supports(sim, 1) == supports(sim, 2)
