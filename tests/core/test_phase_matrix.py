"""Tests for the growable packed phase matrix."""

import numpy as np
import pytest

from repro.core.phase_matrix import PhaseMatrix
from repro.gf2 import bitops


class TestGrowth:
    def test_initial_width(self):
        pm = PhaseMatrix(4)
        assert pm.width == 1
        assert pm.capacity_bits >= 64

    def test_ensure_width_grows_capacity(self):
        pm = PhaseMatrix(2)
        pm.ensure_width(200)
        assert pm.capacity_bits >= 200
        assert pm.width == 200

    def test_growth_preserves_content(self):
        pm = PhaseMatrix(3)
        pm.xor_symbol(np.array([1]), 5)
        pm.ensure_width(1000)
        assert bitops.get_bit(pm.words[1], 5) == 1
        assert bitops.get_bit(pm.words[0], 5) == 0

    def test_width_never_shrinks(self):
        pm = PhaseMatrix(1)
        pm.ensure_width(100)
        pm.ensure_width(10)
        assert pm.width == 100

    def test_needs_rows(self):
        with pytest.raises(ValueError):
            PhaseMatrix(0)


class TestRowOps:
    def test_xor_constant(self):
        pm = PhaseMatrix(4)
        pm.xor_constant(np.array([0, 2]))
        assert [bitops.get_bit(pm.words[i], 0) for i in range(4)] == [1, 0, 1, 0]

    def test_xor_symbol_twice_cancels(self):
        pm = PhaseMatrix(2)
        pm.xor_symbol(np.array([0]), 7)
        pm.xor_symbol(np.array([0]), 7)
        assert bitops.get_bit(pm.words[0], 7) == 0

    def test_xor_rows(self):
        pm = PhaseMatrix(3)
        pm.xor_symbol(np.array([0]), 3)
        pm.xor_constant(np.array([0]))
        pm.xor_rows(np.array([1, 2]), 0)
        for row in (1, 2):
            assert bitops.get_bit(pm.words[row], 3) == 1
            assert bitops.get_bit(pm.words[row], 0) == 1

    def test_copy_and_clear_row(self):
        pm = PhaseMatrix(2)
        pm.xor_symbol(np.array([0]), 9)
        pm.copy_row(0, 1)
        assert bitops.get_bit(pm.words[1], 9) == 1
        pm.clear_row(0)
        assert not pm.words[0].any()
        assert bitops.get_bit(pm.words[1], 9) == 1

    def test_xor_vector(self):
        pm = PhaseMatrix(3)
        pm.ensure_width(70)
        vec = np.zeros(2, dtype=np.uint64)
        bitops.set_bit(vec, 65, 1)
        pm.xor_vector(np.array([0, 2]), vec)
        assert bitops.get_bit(pm.words[0], 65) == 1
        assert bitops.get_bit(pm.words[1], 65) == 0
        assert bitops.get_bit(pm.words[2], 65) == 1

    def test_row_vector_trimmed(self):
        pm = PhaseMatrix(1)
        pm.ensure_width(130)
        assert pm.row_vector(0).size == bitops.words_for(130)

    def test_row_support(self):
        pm = PhaseMatrix(1)
        pm.xor_symbol(np.array([0]), 4)
        pm.xor_constant(np.array([0]))
        assert list(pm.row_support(0)) == [0, 4]
