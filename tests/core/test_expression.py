"""Tests for the SymbolicExpression wrapper."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.core import SymbolicExpression, SymPhaseSimulator


@pytest.fixture()
def sim():
    return SymPhaseSimulator.from_circuit(Circuit.from_text(
        "H 0\nCNOT 0 1\nX_ERROR(0.5) 0\nX_ERROR(0.5) 1\nM 0 1"
    ))


class TestConstruction:
    def test_zero(self, sim):
        zero = SymbolicExpression.zero(sim.symbols)
        assert str(zero) == "0"
        assert not zero

    def test_constant_one(self, sim):
        one = SymbolicExpression.constant_one(sim.symbols)
        assert one.is_constant
        assert one.constant_part == 1

    def test_of_symbol(self, sim):
        expr = SymbolicExpression.of_symbol(sim.symbols, 1)
        assert list(expr.support) == [1]

    def test_of_symbol_range_check(self, sim):
        with pytest.raises(ValueError):
            SymbolicExpression.of_symbol(sim.symbols, 99)


class TestFromSimulator:
    def test_measurement_expression_object(self, sim):
        expr = sim.expression(1)
        assert set(expr.support.tolist()) == {1, 2, 3}
        assert str(expr) == sim.measurement_expression(1)

    def test_xor_cancels(self, sim):
        m0, m1 = sim.expression(0), sim.expression(1)
        xored = m0 ^ m1
        # m0 = coin; m1 = X0^X1^coin  =>  m0^m1 = X0^X1.
        assert set(xored.support.tolist()) == {1, 2}

    def test_detector_expression(self):
        c = Circuit.from_text(
            "X_ERROR(0.5) 0\nMR 0\nMR 0\nDETECTOR rec[-1] rec[-2]"
        )
        sim = SymPhaseSimulator.from_circuit(c)
        det = sim.detector_expression(0)
        assert list(det.support) == [1]


class TestAlgebra:
    def test_self_inverse(self, sim):
        expr = sim.expression(1)
        assert not (expr ^ expr)

    def test_equality_and_hash(self, sim):
        a = sim.expression(0)
        b = sim.expression(0)
        assert a == b
        assert len({a, b}) == 1

    def test_cross_table_rejected(self, sim):
        other = SymPhaseSimulator.from_circuit(Circuit().h(0).m(0))
        with pytest.raises(ValueError):
            sim.expression(0) ^ other.expression(0)

    def test_evaluate(self, sim):
        expr = sim.expression(1)  # X0 ^ X1 ^ coin
        assignment = np.array([1, 1, 0, 1], dtype=np.uint8)
        assert expr.evaluate(assignment) == 0  # 1 ^ 0 ^ 1

    def test_evaluate_validates(self, sim):
        with pytest.raises(ValueError):
            sim.expression(0).evaluate(np.zeros(4, dtype=np.uint8))
        with pytest.raises(ValueError):
            sim.expression(0).evaluate(np.array([1], dtype=np.uint8))

    def test_repr(self, sim):
        assert "SymbolicExpression" in repr(sim.expression(0))
