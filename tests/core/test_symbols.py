"""Tests for the symbol table and joint symbol sampling."""

import numpy as np

from repro.circuit.instructions import Instruction
from repro.core.symbols import SymbolTable
from repro.gf2 import bitops
from repro.gf2.transpose import transpose_bitmatrix
from repro.noise.channels import measurement_group, noise_groups


def _dep1_group(p=0.3, qubit=0):
    return noise_groups(Instruction("DEPOLARIZE1", (qubit,), (p,)))[0]


class TestAllocation:
    def test_indices_start_at_one(self):
        table = SymbolTable()
        indices = table.allocate(measurement_group())
        assert list(indices) == [1]

    def test_sequential_groups(self):
        table = SymbolTable()
        first = table.allocate(_dep1_group())
        second = table.allocate(measurement_group())
        assert list(first) == [1, 2]
        assert list(second) == [3]
        assert table.n_symbols == 3
        assert table.width == 4

    def test_labels_recorded(self):
        table = SymbolTable()
        table.allocate(_dep1_group(), ["a", "b"])
        assert table.label(1) == "a"
        assert table.label(2) == "b"
        assert table.label(0) == "1"

    def test_noise_symbol_indices(self):
        table = SymbolTable()
        table.allocate(_dep1_group())
        table.allocate(measurement_group())
        table.allocate(_dep1_group())
        assert list(table.noise_symbol_indices()) == [1, 2, 4, 5]


class TestSampling:
    def test_constant_row_all_ones(self, rng):
        table = SymbolTable()
        table.allocate(measurement_group())
        out = table.sample_symbol_major(100, rng)
        assert np.array_equal(
            bitops.unpack_bits(out[0], 100), np.ones(100, dtype=np.uint8)
        )

    def test_constant_row_padding_clear(self, rng):
        table = SymbolTable()
        table.allocate(measurement_group())
        out = table.sample_symbol_major(70, rng)
        assert bitops.popcount(out[0]).sum() == 70

    def test_measurement_symbols_fair(self, rng):
        table = SymbolTable()
        table.allocate(measurement_group())
        out = table.sample_symbol_major(40000, rng)
        density = bitops.popcount(out[1]).sum() / 40000
        assert 0.48 < density < 0.52

    def test_noise_symbols_follow_joint_distribution(self, rng):
        table = SymbolTable()
        table.allocate(_dep1_group(p=0.3))
        out = table.sample_symbol_major(60000, rng)
        x_bits = bitops.unpack_bits(out[1], 60000)
        z_bits = bitops.unpack_bits(out[2], 60000)
        # Marginals of the (1-p, p/3, p/3, p/3) joint: P(x)=2p/3, P(z)=2p/3,
        # P(x & z)=p/3.
        assert abs(x_bits.mean() - 0.2) < 0.01
        assert abs(z_bits.mean() - 0.2) < 0.01
        assert abs((x_bits & z_bits).mean() - 0.1) < 0.01

    def test_shot_major_is_transpose_of_symbol_major(self, rng):
        table = SymbolTable()
        table.allocate(_dep1_group())
        table.allocate(measurement_group())
        seed_rng = np.random.default_rng(99)
        symbol_major = table.sample_symbol_major(130, seed_rng)
        seed_rng = np.random.default_rng(99)
        shot_major = table.sample_shot_major(130, seed_rng)
        expected = transpose_bitmatrix(symbol_major, table.width, 130)
        assert np.array_equal(shot_major, expected)
