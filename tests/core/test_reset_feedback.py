"""Tests for the §6 extension: resets as symbolic-exponent conditional
Paulis (X^m with m a measurement expression)."""

import numpy as np

from repro.circuit import Circuit
from repro.core import (
    SymPhaseSimulator,
    compile_sampler,
    concrete_replay,
    random_assignment,
    substituted_record,
)


class TestResetSemantics:
    def test_reset_after_superposition_gives_zero(self):
        c = Circuit().h(0).r(0).m(0)
        records = compile_sampler(c).sample(200, np.random.default_rng(0))
        assert not records.any()

    def test_reset_after_x_gives_zero(self):
        c = Circuit().x(0).r(0).m(0)
        records = compile_sampler(c).sample(50, np.random.default_rng(0))
        assert not records.any()

    def test_reset_after_noise_gives_zero(self):
        c = Circuit().x_error(0.5, 0).r(0).m(0)
        records = compile_sampler(c).sample(500, np.random.default_rng(0))
        assert not records.any()

    def test_reset_decouples_entanglement(self):
        # After resetting half a Bell pair, its partner stays uniformly
        # random but the reset qubit reads 0.
        c = Circuit().h(0).cx(0, 1).r(0).m(0, 1)
        records = compile_sampler(c).sample(20000, np.random.default_rng(0))
        assert not records[:, 0].any()
        assert 0.47 < records[:, 1].mean() < 0.53

    def test_mr_preserves_record_then_resets(self):
        c = Circuit().x(0).mr(0).m(0)
        records = compile_sampler(c).sample(100, np.random.default_rng(0))
        assert records[:, 0].all()
        assert not records[:, 1].any()

    def test_mr_on_entangled_qubit_records_coin(self):
        c = Circuit().h(0).cx(0, 1).mr(0).m(0, 1)
        records = compile_sampler(c).sample(20000, np.random.default_rng(0))
        # First readout is the coin; re-measurement after reset is 0;
        # partner correlates with the coin.
        assert 0.47 < records[:, 0].mean() < 0.53
        assert not records[:, 1].any()
        assert np.array_equal(records[:, 0], records[:, 2])

    def test_rx_reset(self):
        c = Circuit().append("RX", [0]).append("MX", [0])
        records = compile_sampler(c).sample(100, np.random.default_rng(0))
        assert not records.any()

    def test_ry_reset(self):
        c = Circuit().append("RY", [0]).append("MY", [0])
        records = compile_sampler(c).sample(100, np.random.default_rng(0))
        assert not records.any()


class TestFeedbackLinearity:
    def test_reset_heavy_circuit_linearity(self):
        """Resets insert symbolic conditional Paulis; substitution must
        still match concrete replay bit for bit."""
        rng = np.random.default_rng(3)
        c = Circuit.from_text("""
            H 0
            CX 0 1
            X_ERROR(0.5) 1
            MR 0
            CX 1 0
            R 1
            H 1
            M 0 1
            MR 0
            M 0
        """)
        sim = SymPhaseSimulator.from_circuit(c)
        for _ in range(10):
            assignment = random_assignment(sim, rng)
            assert np.array_equal(
                substituted_record(sim, assignment),
                concrete_replay(c, sim, assignment),
            )

    def test_reset_symbol_becomes_inert(self):
        # R on a random qubit consumes a coin that must not leak into
        # later expressions.
        c = Circuit().h(0).r(0).h(0).m(0)
        sim = SymPhaseSimulator.from_circuit(c)
        final = set(sim.measurement_support(0).tolist())
        # The final measurement's coin is the *second* symbol; the reset
        # coin (first symbol) must be absent.
        assert 1 not in final
