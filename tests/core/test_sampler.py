"""Tests for the compiled (Eq. 4) sampler."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.core import compile_sampler


def bell_with_noise(p=0.3):
    return Circuit.from_text(
        f"H 0\nCNOT 0 1\nX_ERROR({p}) 0\nX_ERROR({p}) 1\nM 0 1"
    )


class TestStrategiesAgree:
    def test_dense_and_sparse_same_distribution(self, rng):
        sampler = compile_sampler(bell_with_noise())
        dense = sampler.sample(30000, np.random.default_rng(1), strategy="dense")
        sparse = sampler.sample(30000, np.random.default_rng(2), strategy="sparse")
        assert np.allclose(dense.mean(axis=0), sparse.mean(axis=0), atol=0.02)
        xor_dense = (dense[:, 0] ^ dense[:, 1]).mean()
        xor_sparse = (sparse[:, 0] ^ sparse[:, 1]).mean()
        assert abs(xor_dense - xor_sparse) < 0.02

    def test_unknown_strategy_rejected(self):
        sampler = compile_sampler(bell_with_noise())
        with pytest.raises(ValueError):
            sampler.sample(10, strategy="magic")

    def test_zero_shots_rejected(self):
        with pytest.raises(ValueError):
            compile_sampler(bell_with_noise()).sample(0)


class TestStatistics:
    def test_marginals_uniform_for_random_measurements(self):
        sampler = compile_sampler(bell_with_noise())
        records = sampler.sample(40000, np.random.default_rng(0))
        assert np.allclose(records.mean(axis=0), 0.5, atol=0.01)

    def test_xor_matches_theory(self):
        # m0 ^ m1 flips iff exactly one X fault fired: 2 p (1-p).
        p = 0.3
        sampler = compile_sampler(bell_with_noise(p))
        records = sampler.sample(60000, np.random.default_rng(0))
        xor_rate = (records[:, 0] ^ records[:, 1]).mean()
        assert abs(xor_rate - 2 * p * (1 - p)) < 0.01

    def test_deterministic_circuit_constant_samples(self):
        sampler = compile_sampler(Circuit().x(0).cx(0, 1).m(0, 1))
        records = sampler.sample(100, np.random.default_rng(0))
        assert np.array_equal(records, np.ones((100, 2), dtype=np.uint8))

    def test_y_error_flips_z_measurement(self):
        sampler = compile_sampler(
            Circuit.from_text("Y_ERROR(1) 0\nM 0")
        )
        records = sampler.sample(50, np.random.default_rng(0))
        assert records.all()


class TestShapes:
    def test_sample_shape(self):
        sampler = compile_sampler(bell_with_noise())
        assert sampler.sample(17, np.random.default_rng(0)).shape == (17, 2)

    def test_no_measurement_circuit(self):
        sampler = compile_sampler(Circuit().h(0))
        assert sampler.sample(5, np.random.default_rng(0)).shape == (5, 0)

    def test_detector_shapes(self):
        c = Circuit().x_error(0.5, 0).m(0).detector(-1).observable_include(0, -1)
        sampler = compile_sampler(c)
        det, obs = sampler.sample_detectors(23, np.random.default_rng(0))
        assert det.shape == (23, 1)
        assert obs.shape == (23, 1)
        assert np.array_equal(det, obs)  # same single measurement


class TestDetectorSampling:
    def test_detector_fires_at_error_rate(self):
        p = 0.2
        c = Circuit().x_error(p, 0).mr(0).mr(0).detector(-1, -2)
        sampler = compile_sampler(c)
        det, _ = sampler.sample_detectors(50000, np.random.default_rng(0))
        # Detector = m0 ^ m1 = first X flip only.
        assert abs(det.mean() - p) < 0.01

    def test_noiseless_detectors_silent(self):
        c = Circuit().mr(0).mr(0).detector(-1, -2)
        det, _ = compile_sampler(c).sample_detectors(
            500, np.random.default_rng(0)
        )
        assert not det.any()

    def test_shared_randomness_between_detectors_and_observables(self):
        # Observable == detector here, so they must agree shot by shot.
        c = (
            Circuit()
            .x_error(0.5, 0)
            .mr(0)
            .detector(-1)
            .observable_include(0, -1)
        )
        det, obs = compile_sampler(c).sample_detectors(
            1000, np.random.default_rng(0)
        )
        assert np.array_equal(det[:, 0], obs[:, 0])


class TestStrategySelection:
    def test_small_width_picks_dense(self):
        sampler = compile_sampler(bell_with_noise())
        assert sampler.choose_strategy() == "dense"

    def test_sparse_circuit_picks_sparse(self):
        c = Circuit()
        for q in range(80):
            c.x_error(0.01, q).mr(q)
        sampler = compile_sampler(c)
        assert sampler.symbols.width > 64
        assert sampler.choose_strategy() == "sparse"
        assert sampler.average_support() <= 3

    def test_supports_cached(self):
        sampler = compile_sampler(bell_with_noise())
        assert sampler.supports() is sampler.supports()
