"""The decoder registry: resolution, capabilities, wiring."""

import numpy as np
import pytest

from repro.decoders import (
    CompiledMatchingDecoder,
    DecoderInfo,
    LookupDecoder,
    MatchingDecoder,
    available_decoders,
    canonical_name,
    compile_decoder,
    decoder_choices,
    get_decoder,
    register_decoder,
)
from repro.decoders.registry import SyndromeDecoder
from repro.dem import DetectorErrorModel, ErrorMechanism


def line_dem() -> DetectorErrorModel:
    dem = DetectorErrorModel(n_detectors=2, n_observables=1)
    dem.add_group([ErrorMechanism(0.1, (0,), (0,))])
    dem.add_group([ErrorMechanism(0.1, (0, 1), ())])
    dem.add_group([ErrorMechanism(0.1, (1,), ())])
    return dem


class TestResolution:
    def test_builtins_registered(self):
        assert {"matching", "compiled-matching", "lookup"} <= set(
            available_decoders()
        )

    def test_aliases_resolve(self):
        assert canonical_name("mwpm") == "matching"
        assert canonical_name("cmwpm") == "compiled-matching"
        assert canonical_name("batch-matching") == "compiled-matching"
        assert canonical_name("table") == "lookup"

    def test_choices_include_aliases(self):
        choices = decoder_choices()
        assert "mwpm" in choices and "compiled-matching" in choices

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="compiled-matching"):
            canonical_name("union-find")

    def test_compile_by_name(self):
        dem = line_dem()
        assert isinstance(compile_decoder(dem, "matching"), MatchingDecoder)
        assert isinstance(
            compile_decoder(dem, "cmwpm"), CompiledMatchingDecoder
        )
        assert isinstance(compile_decoder(dem, "lookup"), LookupDecoder)

    def test_dem_compile_decoder_method(self):
        decoder = line_dem().compile_decoder("compiled-matching")
        assert isinstance(decoder, CompiledMatchingDecoder)
        assert isinstance(decoder, SyndromeDecoder)


class TestCapabilities:
    def test_matching_flags(self):
        info = get_decoder("matching").info
        assert info.graphlike_only and not info.batched and not info.exact

    def test_compiled_matching_flags(self):
        info = get_decoder("compiled-matching").info
        assert info.graphlike_only and info.batched and info.compile_once

    def test_lookup_flags(self):
        info = get_decoder("lookup").info
        assert info.exact and not info.graphlike_only


class TestRegistration:
    def test_alias_may_not_shadow_canonical(self):
        with pytest.raises(ValueError, match="shadows"):
            register_decoder(
                DecoderInfo(name="throwaway", description=""),
                MatchingDecoder,
                aliases=("matching",),
            )

    def test_every_registered_decoder_decodes(self):
        dem = line_dem()
        syndrome = np.array([1, 0], dtype=np.uint8)
        for name in available_decoders():
            decoder = compile_decoder(dem, name)
            single = decoder.decode(syndrome)
            assert single.shape == (dem.n_observables,)
            batch = decoder.decode_batch(syndrome[None, :])
            assert np.array_equal(batch[0], single)
