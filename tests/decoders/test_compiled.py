"""CompiledMatchingDecoder: bitwise equivalence with the reference.

The compiled decoder's whole contract is "same predictions, much
faster": all-pairs Dijkstra at compile time must reproduce the
reference's per-shot path-finding exactly, including tie-breaking
between equal-weight paths (middle-of-the-code defects genuinely tie).
"""

import numpy as np
import pytest

from repro.decoders import CompiledMatchingDecoder, MatchingDecoder
from repro.dem import DetectorErrorModel, ErrorMechanism
from repro.qec import repetition_code_dem, surface_code_dem


@pytest.fixture(scope="module")
def surface_dems():
    return {
        d: surface_code_dem(d, rounds=2, probability=0.004)
        for d in (3, 5, 7)
    }


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("distance", [3, 5, 7])
    def test_surface_code_predictions_identical(self, surface_dems, distance):
        dem = surface_dems[distance]
        reference = MatchingDecoder(dem)
        compiled = CompiledMatchingDecoder(dem)
        shots = 512 if distance < 7 else 192
        syndromes, _ = dem.sample(shots, np.random.default_rng(distance))
        assert np.array_equal(
            compiled.decode_batch(syndromes),
            reference.decode_batch(syndromes),
        )

    def test_repetition_code_predictions_identical(self):
        dem = repetition_code_dem(5, rounds=4, probability=0.08)
        reference = MatchingDecoder(dem)
        compiled = CompiledMatchingDecoder(dem)
        syndromes, _ = dem.sample(2000, np.random.default_rng(0))
        assert np.array_equal(
            compiled.decode_batch(syndromes),
            reference.decode_batch(syndromes),
        )

    def test_every_defect_parity_path(self, surface_dems):
        """Zero, single (odd -> boundary), pair, and many-defect
        syndromes all agree shot by shot."""
        dem = surface_dems[3]
        reference = MatchingDecoder(dem)
        compiled = CompiledMatchingDecoder(dem)
        rows = [np.zeros(dem.n_detectors, dtype=np.uint8)]
        for k in (1, 2, 3, 4, 5, 7):
            row = np.zeros(dem.n_detectors, dtype=np.uint8)
            row[np.random.default_rng(k).choice(
                dem.n_detectors, size=k, replace=False
            )] = 1
            rows.append(row)
        for row in rows:
            assert np.array_equal(
                compiled.decode(row), reference.decode(row)
            ), f"defect count {int(row.sum())}"


class TestEdgeCases:
    def test_zero_shots(self, surface_dems):
        dem = surface_dems[3]
        for decoder in (MatchingDecoder(dem), CompiledMatchingDecoder(dem)):
            empty = np.zeros((0, dem.n_detectors), dtype=np.uint8)
            out = decoder.decode_batch(empty)
            assert out.shape == (0, dem.n_observables)
            assert out.dtype == np.uint8

    def test_zero_defect_batch(self, surface_dems):
        dem = surface_dems[3]
        decoder = CompiledMatchingDecoder(dem)
        out = decoder.decode_batch(
            np.zeros((5, dem.n_detectors), dtype=np.uint8)
        )
        assert out.shape == (5, dem.n_observables)
        assert not out.any()

    def test_unreachable_defect_decodes_to_zeros(self):
        # Two disconnected components, no boundary edges: a defect pair
        # split across components cannot be matched.
        dem = DetectorErrorModel(n_detectors=4, n_observables=1)
        dem.add_group([ErrorMechanism(0.1, (0, 1), (0,))])
        dem.add_group([ErrorMechanism(0.1, (2, 3), ())])
        reference = MatchingDecoder(dem)
        compiled = CompiledMatchingDecoder(dem)
        syndromes = np.array(
            [
                [1, 0, 1, 0],  # unmatched pair across components
                [1, 1, 0, 0],  # matched within the first component
                [1, 0, 0, 0],  # odd, boundary unreachable
                [1, 1, 1, 0],  # odd with one cross-component defect
            ],
            dtype=np.uint8,
        )
        assert np.array_equal(
            compiled.decode_batch(syndromes),
            reference.decode_batch(syndromes),
        )

    def test_single_detector_dem(self):
        dem = DetectorErrorModel(n_detectors=1, n_observables=1)
        dem.add_group([ErrorMechanism(0.2, (0,), (0,))])
        compiled = CompiledMatchingDecoder(dem)
        assert compiled.decode(np.array([1], dtype=np.uint8)).tolist() == [1]
        assert compiled.decode(np.array([0], dtype=np.uint8)).tolist() == [0]


class TestParallelEdgeProbabilities:
    def test_equal_mask_parallel_edges_xor_convolve(self):
        # Two independent mechanisms on the same detector pair with the
        # same observable signature: the edge must carry
        # p1(1-p2) + p2(1-p1), i.e. be *more* likely than either alone.
        dem_two = DetectorErrorModel(n_detectors=2, n_observables=0)
        dem_two.add_group([ErrorMechanism(0.1, (0, 1), ())])
        dem_two.add_group([ErrorMechanism(0.2, (0, 1), ())])
        graph = MatchingDecoder(dem_two).graph
        assert graph[0][1]["probability"] == pytest.approx(
            0.1 * 0.8 + 0.2 * 0.9
        )

    def test_differing_mask_keeps_lighter_edge(self):
        dem = DetectorErrorModel(n_detectors=2, n_observables=1)
        dem.add_group([ErrorMechanism(0.05, (0, 1), (0,))])
        dem.add_group([ErrorMechanism(0.2, (0, 1), ())])
        graph = MatchingDecoder(dem).graph
        assert graph[0][1]["probability"] == pytest.approx(0.2)
        assert graph[0][1]["mask"].tolist() == [0]

    def test_convolved_edge_changes_decoding(self):
        # Without the parallel-edge fix the direct (D0, D1) edge keeps
        # only p=0.12 (weight 1.99) and loses to the two boundary edges
        # (combined weight 1.93); with XOR convolution it carries
        # p~0.216 and wins, flipping the prediction.
        dem = DetectorErrorModel(n_detectors=2, n_observables=1)
        dem.add_group([ErrorMechanism(0.12, (0, 1), ())])
        dem.add_group([ErrorMechanism(0.12, (0, 1), ())])
        dem.add_group([ErrorMechanism(0.275, (0,), (0,))])
        dem.add_group([ErrorMechanism(0.275, (1,), ())])
        for decoder in (MatchingDecoder(dem), CompiledMatchingDecoder(dem)):
            assert decoder.decode(np.array([1, 1])).tolist() == [0]
