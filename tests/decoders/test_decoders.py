"""Tests for the matching and lookup decoders."""

import numpy as np
import pytest

from repro.decoders import LookupDecoder, MatchingDecoder, logical_error_rate
from repro.dem import DetectorErrorModel, ErrorMechanism, extract_dem
from repro.qec import repetition_code_memory, surface_code_memory


def tiny_dem() -> DetectorErrorModel:
    """Three-detector line: boundary - D0 - D1 - D2 - boundary."""
    dem = DetectorErrorModel(n_detectors=3, n_observables=1)
    dem.add_group([ErrorMechanism(0.1, (0,), (0,))])      # left boundary
    dem.add_group([ErrorMechanism(0.1, (0, 1), ())])
    dem.add_group([ErrorMechanism(0.1, (1, 2), ())])
    dem.add_group([ErrorMechanism(0.1, (2,), ())])        # right boundary
    return dem


class TestMatchingDecoderBasics:
    def test_trivial_syndrome(self):
        decoder = MatchingDecoder(tiny_dem())
        assert not decoder.decode(np.zeros(3, dtype=np.uint8)).any()

    def test_single_defect_matches_to_boundary(self):
        decoder = MatchingDecoder(tiny_dem())
        # Defect at D0: cheapest explanation is the left-boundary fault,
        # which flips the observable.
        assert decoder.decode(np.array([1, 0, 0])).tolist() == [1]
        # Defect at D2: right boundary, no observable flip.
        assert decoder.decode(np.array([0, 0, 1])).tolist() == [0]

    def test_defect_pair_matches_internally(self):
        decoder = MatchingDecoder(tiny_dem())
        assert decoder.decode(np.array([1, 1, 0])).tolist() == [0]

    def test_batch_matches_single(self):
        decoder = MatchingDecoder(tiny_dem())
        syndromes = np.array(
            [[0, 0, 0], [1, 0, 0], [1, 1, 0], [1, 0, 1]], dtype=np.uint8
        )
        batch = decoder.decode_batch(syndromes)
        singles = np.stack([decoder.decode(s) for s in syndromes])
        assert np.array_equal(batch, singles)

    def test_weights_favor_likely_mechanisms(self):
        dem = DetectorErrorModel(n_detectors=2, n_observables=1)
        # Two explanations for defect pair (D0, D1): a likely direct edge
        # with no logical flip vs an unlikely boundary-boundary pair that
        # flips the observable.
        dem.add_group([ErrorMechanism(0.2, (0, 1), ())])
        dem.add_group([ErrorMechanism(0.001, (0,), (0,))])
        dem.add_group([ErrorMechanism(0.001, (1,), ())])
        decoder = MatchingDecoder(dem)
        assert decoder.decode(np.array([1, 1])).tolist() == [0]


class TestLookupDecoder:
    def test_exact_on_tiny_dem(self):
        decoder = LookupDecoder(tiny_dem(), max_weight=2)
        assert decoder.decode(np.array([1, 0, 0])).tolist() == [1]
        assert decoder.decode(np.array([1, 1, 0])).tolist() == [0]

    def test_unknown_syndrome_returns_zeros(self):
        decoder = LookupDecoder(tiny_dem(), max_weight=1)
        # weight-1 enumeration cannot reach (1, 0, 1)
        assert decoder.decode(np.array([1, 0, 1])).tolist() == [0]

    def test_agrees_with_matching_on_repetition_code(self):
        circuit = repetition_code_memory(
            3, 2, data_flip_probability=0.05, measure_flip_probability=0.05
        )
        dem = extract_dem(circuit)
        lookup = LookupDecoder(dem, max_weight=2)
        matching = MatchingDecoder(dem)
        rng = np.random.default_rng(0)
        det, _ = dem.sample(300, rng)
        agreements = sum(
            np.array_equal(lookup.decode(s), matching.decode(s))
            for s in det
        )
        # MAP and MWPM may differ on rare degenerate syndromes only.
        assert agreements >= 290

    def test_map_score_uses_log_odds(self):
        """Regression: sum-log-p and sum-log-odds rank these fault sets
        differently, and only log-odds is the true MAP ranking.

        Syndrome (D0, D1) is explained by mechanism a (p=0.4, no flip)
        or by {b, c} (p=0.49 each, flips L0).  Raw likelihoods favor a
        (log 0.4 > log 0.49 + log 0.49) but the posterior odds favor
        {b, c}: logit(0.49) + logit(0.49) = -0.08 > logit(0.4) = -0.41.
        """
        dem = DetectorErrorModel(n_detectors=2, n_observables=1)
        dem.add_group([ErrorMechanism(0.4, (0, 1), ())])       # a
        dem.add_group([ErrorMechanism(0.49, (0,), (0,))])      # b
        dem.add_group([ErrorMechanism(0.49, (1,), ())])        # c
        decoder = LookupDecoder(dem, max_weight=2)
        assert decoder.decode(np.array([1, 1])).tolist() == [1]

    @pytest.mark.parametrize(
        "p,min_agree", [(0.01, 298), (0.05, 293), (0.12, 283)]
    )
    def test_agrees_with_matching_across_p(self, p, min_agree):
        """MWPM minimizes the same sum-of-log-odds objective the fixed
        lookup score maximizes, so they agree except on degenerate
        syndromes and (at high p) syndromes beyond the enumeration cap.
        """
        circuit = repetition_code_memory(
            3, 2, data_flip_probability=p, measure_flip_probability=p
        )
        dem = extract_dem(circuit)
        lookup = LookupDecoder(dem, max_weight=3)
        matching = MatchingDecoder(dem)
        det, _ = dem.sample(300, np.random.default_rng(int(p * 1000)))
        agreements = sum(
            np.array_equal(lookup.decode(s), matching.decode(s))
            for s in det
        )
        assert agreements >= min_agree

    def test_zero_shot_batch(self):
        decoder = LookupDecoder(tiny_dem())
        out = decoder.decode_batch(np.zeros((0, 3), dtype=np.uint8))
        assert out.shape == (0, 1)
        assert out.dtype == np.uint8

    def test_table_size_grows_with_weight(self):
        dem = extract_dem(repetition_code_memory(
            3, 2, data_flip_probability=0.05
        ))
        small = LookupDecoder(dem, max_weight=1)
        large = LookupDecoder(dem, max_weight=2)
        assert large.n_syndromes > small.n_syndromes


class TestLogicalErrorRates:
    def test_repetition_code_suppression_with_distance(self):
        rates = []
        for d in (3, 5):
            circuit = repetition_code_memory(
                d, rounds=3,
                data_flip_probability=0.05,
                measure_flip_probability=0.05,
            )
            decoder = MatchingDecoder(extract_dem(circuit))
            rates.append(
                logical_error_rate(
                    circuit, decoder, 3000, np.random.default_rng(1)
                )
            )
        assert rates[1] < rates[0]
        assert rates[0] < 0.15

    def test_decoding_beats_no_decoding(self):
        circuit = repetition_code_memory(
            5, rounds=3, data_flip_probability=0.08
        )
        decoder = MatchingDecoder(extract_dem(circuit))
        decoded = logical_error_rate(
            circuit, decoder, 3000, np.random.default_rng(2)
        )
        from repro.core import compile_sampler
        _, obs = compile_sampler(circuit).sample_detectors(
            3000, np.random.default_rng(2)
        )
        undecoded = obs.any(axis=1).mean()
        assert decoded < undecoded

    def test_surface_code_decodes(self):
        circuit = surface_code_memory(
            3, rounds=3,
            after_clifford_depolarization=0.002,
            before_measure_flip_probability=0.002,
        )
        decoder = MatchingDecoder(extract_dem(circuit))
        rate = logical_error_rate(
            circuit, decoder, 1000, np.random.default_rng(3)
        )
        assert rate < 0.05
