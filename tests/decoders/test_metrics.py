"""Statistics helpers: Wilson intervals and shots-per-error."""

import math

import numpy as np
import pytest

from repro.decoders import (
    LookupDecoder,
    logical_error_rate,
    shots_per_error,
    wilson_interval,
)
from repro.dem import extract_dem
from repro.qec import repetition_code_memory


class TestWilsonInterval:
    def test_known_values(self):
        # References computed from the closed-form Wilson score formula.
        assert wilson_interval(0, 100) == pytest.approx(
            (0.0, 0.03699480747600191)
        )
        assert wilson_interval(1, 10) == pytest.approx(
            (0.01787574951572113, 0.4041563854975721)
        )
        assert wilson_interval(5, 100) == pytest.approx(
            (0.02154336145631356, 0.11175196527208817)
        )
        assert wilson_interval(50, 100) == pytest.approx(
            (0.40382982859014716, 0.5961701714098528)
        )

    def test_custom_z(self):
        assert wilson_interval(5, 100, z=2.576) == pytest.approx(
            (0.01684719918486203, 0.13915838003087888)
        )

    def test_symmetric_at_half(self):
        low, high = wilson_interval(50, 100)
        assert low + high == pytest.approx(1.0)

    def test_zero_errors_has_zero_lower_bound(self):
        # Exactly 0.0 for every shot count, not 1e-19 fp residue.
        for shots in (10, 3_000, 10_000):
            low, high = wilson_interval(0, shots)
            assert low == 0.0
            assert 0 < high < 1

    def test_all_errors_has_unit_upper_bound(self):
        low, high = wilson_interval(100, 100)
        assert high == pytest.approx(1.0)
        assert low > 0.9

    def test_interval_always_contains_point_estimate(self):
        for errors, shots in [(0, 7), (3, 7), (7, 7), (13, 1000)]:
            low, high = wilson_interval(errors, shots)
            assert low <= errors / shots <= high

    def test_zero_shots_unconstrained(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(-1, 4)


class TestShotsPerError:
    def test_basic_ratio(self):
        assert shots_per_error(4, 1000) == pytest.approx(250.0)

    def test_no_errors_is_infinite(self):
        assert shots_per_error(0, 1000) == math.inf

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            shots_per_error(-1, 10)


class TestLogicalErrorRateSeeding:
    def test_int_seed_matches_generator(self):
        circuit = repetition_code_memory(
            3, rounds=2,
            data_flip_probability=0.1,
            measure_flip_probability=0.1,
        )
        decoder = LookupDecoder(extract_dem(circuit))
        from_seed = logical_error_rate(circuit, decoder, 500, 42)
        from_rng = logical_error_rate(
            circuit, decoder, 500, np.random.default_rng(42)
        )
        assert from_seed == from_rng
