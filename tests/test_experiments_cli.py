"""Tests for the experiments command-line entry point and timing utils."""

import pytest

from repro.experiments.__main__ import main
from repro.experiments.timing import format_table, time_call


class TestTiming:
    def test_time_call_returns_result(self):
        elapsed, result = time_call(lambda: 41 + 1)
        assert result == 42
        assert elapsed >= 0

    def test_best_of_repeats(self):
        calls = []

        def work():
            calls.append(1)
            return len(calls)

        elapsed, result = time_call(work, repeats=3)
        assert len(calls) == 3
        assert result == 3

    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.23456], ["b", 2]],
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "alpha" in lines[2]
        assert "1.2346" in lines[2]  # floats to 4 decimals
        # All rows equally wide.
        assert len(set(len(line) for line in lines)) == 1


class TestExperimentsCli:
    def test_fig3a_tiny(self, capsys):
        assert main(["fig3a", "--sizes", "8", "--shots", "50"]) == 0
        assert "fig3a" in capsys.readouterr().out

    def test_sparse(self, capsys):
        assert main(["sparse", "--shots", "200"]) == 0
        out = capsys.readouterr().out
        assert "sparse" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig9"])
