"""Tests for the vectorized categorical sampler behind noise draws."""

import numpy as np

from repro.noise.channels import sample_patterns_batch


class TestShapes:
    def test_1d(self, rng):
        out = sample_patterns_batch((0.5, 0.5), (100,), rng)
        assert out.shape == (100,)
        assert out.dtype == np.uint8

    def test_2d(self, rng):
        out = sample_patterns_batch((0.25,) * 4, (7, 50), rng)
        assert out.shape == (7, 50)

    def test_values_in_range(self, rng):
        out = sample_patterns_batch((0.1, 0.2, 0.3, 0.4), (5000,), rng)
        assert out.min() >= 0
        assert out.max() <= 3


class TestDistributions:
    def test_bernoulli(self, rng):
        out = sample_patterns_batch((0.7, 0.3), (100_000,), rng)
        assert abs(out.mean() - 0.3) < 0.01

    def test_categorical_16(self, rng):
        probs = [0.85] + [0.01] * 15
        out = sample_patterns_batch(tuple(probs), (200_000,), rng)
        freqs = np.bincount(out, minlength=16) / 200_000
        assert np.allclose(freqs, probs, atol=0.005)

    def test_degenerate_certain(self, rng):
        out = sample_patterns_batch((0.0, 1.0), (100,), rng)
        assert (out == 1).all()

    def test_unnormalized_probabilities_renormalized(self, rng):
        out = sample_patterns_batch((2.0, 2.0), (50_000,), rng)
        assert abs(out.mean() - 0.5) < 0.02

    def test_rows_independent(self, rng):
        out = sample_patterns_batch((0.5, 0.5), (2, 50_000), rng)
        agreement = (out[0] == out[1]).mean()
        assert 0.48 < agreement < 0.52
