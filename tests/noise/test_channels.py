"""Tests for noise-channel normalization into symbol groups."""

import numpy as np
import pytest

from repro.circuit.instructions import Instruction, PauliTarget
from repro.noise.channels import (
    measurement_group,
    noise_groups,
    pattern_bits,
)


def _group(name, targets, args):
    return noise_groups(Instruction(name, tuple(targets), tuple(args)))


class TestFlipChannels:
    def test_x_error_single_symbol(self):
        groups = _group("X_ERROR", [3], [0.2])
        assert len(groups) == 1
        g = groups[0]
        assert g.n_symbols == 1
        assert g.actions == ((("X", 3),),)
        assert g.probabilities == (0.8, 0.2)

    def test_y_error_action(self):
        g = _group("Y_ERROR", [1], [0.5])[0]
        assert g.actions == ((("Y", 1),),)

    def test_one_group_per_target(self):
        groups = _group("Z_ERROR", [0, 1, 2], [0.1])
        assert len(groups) == 3
        assert groups[2].actions[0][0] == ("Z", 2)


class TestDepolarize1:
    def test_paper_distribution(self):
        # §3.1: X^{s1} Z^{s2} with probabilities (1-p, p/3, p/3, p/3).
        g = _group("DEPOLARIZE1", [0], [0.3])[0]
        assert g.n_symbols == 2
        assert np.allclose(g.probabilities, (0.7, 0.1, 0.1, 0.1))

    def test_actions_are_x_then_z(self):
        g = _group("DEPOLARIZE1", [5], [0.3])[0]
        assert g.actions == ((("X", 5),), (("Z", 5),))

    def test_probabilities_sum_to_one(self):
        g = _group("DEPOLARIZE1", [0], [0.123])[0]
        assert np.isclose(sum(g.probabilities), 1.0)


class TestPauliChannel1:
    def test_pattern_placement(self):
        g = _group("PAULI_CHANNEL_1", [0], [0.1, 0.2, 0.3])[0]
        # patterns: 0=I, 1=X, 2=Z, 3=Y (bit0=X symbol, bit1=Z symbol)
        assert np.allclose(g.probabilities, (0.4, 0.1, 0.3, 0.2))


class TestDepolarize2:
    def test_sixteen_patterns(self):
        g = _group("DEPOLARIZE2", [0, 1], [0.15])[0]
        assert g.n_symbols == 4
        assert len(g.probabilities) == 16
        assert np.isclose(g.probabilities[0], 0.85)
        assert np.allclose(g.probabilities[1:], 0.01)

    def test_pairs_split_into_groups(self):
        groups = _group("DEPOLARIZE2", [0, 1, 2, 3], [0.1])
        assert len(groups) == 2
        assert groups[1].actions[0] == (("X", 2),)


class TestPauliChannel2:
    def test_named_pair_lands_on_pattern(self):
        args = [0.0] * 15
        args[3] = 0.25  # "XI": X on first qubit only
        g = _group("PAULI_CHANNEL_2", [4, 7], args)[0]
        # pattern with only Xa bit set is index 1
        assert np.isclose(g.probabilities[1], 0.25)
        assert np.isclose(g.probabilities[0], 0.75)

    def test_iz_pattern(self):
        args = [0.0] * 15
        args[2] = 0.5  # "IZ": Z on second qubit
        g = _group("PAULI_CHANNEL_2", [0, 1], args)[0]
        assert np.isclose(g.probabilities[0b1000], 0.5)


class TestCorrelatedError:
    def test_single_group_multi_qubit_action(self):
        inst = Instruction(
            "CORRELATED_ERROR",
            (PauliTarget("X", 0), PauliTarget("Z", 2)),
            (0.25,),
        )
        groups = noise_groups(inst)
        assert len(groups) == 1
        assert groups[0].actions == ((("X", 0), ("Z", 2)),)
        assert groups[0].probabilities == (0.75, 0.25)


class TestSampling:
    def test_measurement_group_is_fair(self, rng):
        g = measurement_group()
        patterns = g.sample_patterns(20000, rng)
        assert 0.48 < patterns.mean() < 0.52

    def test_pattern_frequencies(self, rng):
        g = _group("DEPOLARIZE1", [0], [0.3])[0]
        patterns = g.sample_patterns(60000, rng)
        freqs = np.bincount(patterns, minlength=4) / 60000
        assert np.allclose(freqs, (0.7, 0.1, 0.1, 0.1), atol=0.01)

    def test_pattern_bits_extraction(self):
        patterns = np.array([0b00, 0b01, 0b10, 0b11])
        assert np.array_equal(pattern_bits(patterns, 0), [0, 1, 0, 1])
        assert np.array_equal(pattern_bits(patterns, 1), [0, 0, 1, 1])

    def test_non_noise_rejected(self):
        with pytest.raises(ValueError):
            noise_groups(Instruction("H", (0,)))
