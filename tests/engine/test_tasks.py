"""Task identity and deterministic chunk planning."""

import pytest

from repro.engine import Task, plan_chunks
from repro.qec import repetition_code_memory


def make_circuit(p=0.05):
    return repetition_code_memory(
        3, rounds=2, data_flip_probability=p, measure_flip_probability=p
    )


class TestTask:
    def test_rejects_unknown_decoder(self):
        with pytest.raises(ValueError):
            Task(make_circuit(), decoder="tensor-network")

    def test_rejects_unknown_sampler(self):
        with pytest.raises(ValueError):
            Task(make_circuit(), sampler="quantum")

    def test_rejects_empty_budget(self):
        with pytest.raises(ValueError):
            Task(make_circuit(), max_shots=0)

    def test_strong_id_stable_across_reconstruction(self):
        a = Task(make_circuit(), metadata={"d": 3, "p": 0.05})
        b = Task(make_circuit(), metadata={"d": 3, "p": 0.05})
        assert a.strong_id() == b.strong_id()

    def test_strong_id_ignores_budget(self):
        a = Task(make_circuit(), max_shots=100)
        b = Task(make_circuit(), max_shots=9999, max_errors=5)
        assert a.strong_id() == b.strong_id()

    def test_strong_id_separates_decoder_and_metadata(self):
        base = Task(make_circuit())
        ids = {
            base.strong_id(),
            Task(make_circuit(), decoder="lookup").strong_id(),
            Task(make_circuit(), sampler="frame").strong_id(),
            Task(make_circuit(), metadata={"d": 3}).strong_id(),
            Task(make_circuit(0.06)).strong_id(),
        }
        assert len(ids) == 5

    def test_describe_uses_metadata(self):
        task = Task(make_circuit(), metadata={"d": 3, "p": 0.05})
        assert task.describe() == "d=3,p=0.05"


class TestPlanChunks:
    def test_budget_split_exact(self):
        task = Task(make_circuit(), max_shots=5_000)
        specs = plan_chunks(task, base_seed=0, chunk_shots=2_000)
        assert [s.shots for s in specs] == [2_000, 2_000, 1_000]
        assert [s.chunk_index for s in specs] == [0, 1, 2]

    def test_specs_deterministic(self):
        task = Task(make_circuit(), max_shots=4_000)
        again = Task(make_circuit(), max_shots=4_000)
        assert plan_chunks(task, 7, 1_000) == plan_chunks(again, 7, 1_000)

    def test_chunk_seed_entropy_matches_fingerprint(self):
        task = Task(make_circuit())
        specs = plan_chunks(task, 0, 1_000)
        assert all(s.task_entropy == task.seed_entropy() for s in specs)
        assert all(s.fingerprint == task.circuit_fingerprint() for s in specs)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            plan_chunks(Task(make_circuit()), 0, 0)
