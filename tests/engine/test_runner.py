"""The barrier-free chunk scheduler: ordering, overrun, clean shutdown."""

import multiprocessing
import time

import pytest

from repro.engine import ChunkRunner, plan_chunks
from repro.engine.tasks import Task
from repro.engine.workers import ChunkResult
from repro.qec import repetition_code_memory


def make_specs(n_chunks=8, chunk_shots=100):
    circuit = repetition_code_memory(
        3, rounds=2, data_flip_probability=0.05, measure_flip_probability=0.05
    )
    task = Task(
        circuit, decoder="compiled-matching",
        max_shots=n_chunks * chunk_shots,
    )
    return plan_chunks(task, 3, chunk_shots)


class TestSubmissionOrder:
    def test_serial_order(self):
        specs = make_specs()
        with ChunkRunner(workers=1) as runner:
            indices = [r.chunk_index for r in runner.run(specs)]
        assert indices == list(range(len(specs)))

    def test_pooled_reorder_buffer_restores_order(self):
        specs = make_specs(n_chunks=12)
        with ChunkRunner(workers=2) as runner:
            results = list(runner.run(specs))
        assert [r.chunk_index for r in results] == list(range(len(specs)))
        assert all(isinstance(r, ChunkResult) for r in results)

    def test_pooled_matches_serial_counts(self):
        specs = make_specs(n_chunks=10)
        with ChunkRunner(workers=1) as serial:
            expected = [(r.chunk_index, r.shots, r.errors)
                        for r in serial.run(specs)]
        with ChunkRunner(workers=2) as pooled:
            observed = [(r.chunk_index, r.shots, r.errors)
                        for r in pooled.run(specs)]
        assert observed == expected


class TestEarlyStopShutdown:
    def test_abandoned_run_exits_cleanly(self):
        """Breaking out of a pooled run must not deadlock close/join —
        the in-flight window's feeder has to be released."""
        specs = make_specs(n_chunks=30, chunk_shots=50)
        started = time.time()
        with ChunkRunner(workers=2) as runner:
            for result in runner.run(specs):
                assert result.chunk_index == 0
                break
        assert time.time() - started < 60

    def test_bounded_speculative_overrun(self, monkeypatch):
        """The feeder may not eagerly submit the whole budget: after an
        early stop at the first result, at most one consumed chunk plus
        one in-flight window of speculative chunks ever started."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("tracking hook requires fork inheritance")
        import repro.engine.workers as workers_mod

        executed = multiprocessing.Manager().list()
        real_run_chunk = workers_mod.run_chunk

        def tracking_run_chunk(spec):
            executed.append(spec.chunk_index)
            return real_run_chunk(spec)

        # Patched before __enter__ so forked workers inherit the hook.
        monkeypatch.setattr(workers_mod, "run_chunk", tracking_run_chunk)
        specs = make_specs(n_chunks=40, chunk_shots=50)
        with ChunkRunner(workers=2) as runner:
            window = 2 * runner.workers
            for _ in runner.run(specs):
                break
        assert len(executed) <= 1 + window, list(executed)
        assert len(executed) < len(specs)

    def test_second_run_after_abandoned_run(self):
        """The runner survives an abandoned run and serves the next."""
        specs = make_specs(n_chunks=6)
        with ChunkRunner(workers=2) as runner:
            for _ in runner.run(specs):
                break
            indices = [r.chunk_index for r in runner.run(specs)]
        assert indices == list(range(len(specs)))

    def test_exception_in_consumer_terminates_pool(self):
        specs = make_specs(n_chunks=6)
        with pytest.raises(RuntimeError, match="consumer failed"):
            with ChunkRunner(workers=2) as runner:
                for _ in runner.run(specs):
                    raise RuntimeError("consumer failed")

    def test_clean_exit_stops_workers_gracefully(self):
        """Clean exit must let workers drain and exit on the stop
        sentinel rather than be terminated: a graceful exit (code 0)
        proves no worker died mid-chunk, so forked children flushed
        coverage and never dropped a leased chunk.  (Explicit empty
        fault plan: the CI chaos leg exports REPRO_FAULTS, and an
        injected SIGKILL would make exit codes meaningless here.)"""
        with ChunkRunner(workers=2, fault_plan="") as runner:
            pool = runner._pool
            processes = [
                pool._handles[slot].process for slot in pool.live_slots()
            ]
            list(runner.run(make_specs(n_chunks=4)))
        # After a clean __exit__ the pool is stopped and detached...
        assert runner._pool is None
        # ...and every worker exited voluntarily (exit code 0), not via
        # SIGTERM (which would show as a negative exitcode).
        for process in processes:
            assert not process.is_alive()
            assert process.exitcode == 0, process.exitcode

    def test_stale_generator_cleanup_spares_newer_run(self):
        """Finalizing an abandoned older run() generator must not trip
        the stop event of a newer run on the same runner.

        The older run covers fewer chunks than the in-flight window so
        its feeder finishes on its own (a *stalled* open feeder would
        hold the pool's shared task queue — one active pooled run at a
        time is the runner's contract; the collector honors it).
        """
        with ChunkRunner(workers=2) as runner:
            older = runner.run(make_specs(n_chunks=3))
            assert next(older).chunk_index == 0
            specs = make_specs(n_chunks=8)
            newer = runner.run(specs)
            first = next(newer)
            older.close()  # old cleanup fires mid-consumption of newer
            rest = list(newer)
        indices = [first.chunk_index] + [r.chunk_index for r in rest]
        assert indices == list(range(len(specs)))
