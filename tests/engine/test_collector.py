"""Collection orchestration: equivalence, early stop, resume, store."""

import json

import pytest

from repro.engine import (
    ResultStore,
    Task,
    TaskStats,
    collect,
    plan_chunks,
    run_chunk,
)
from repro.engine.cache import reset_shared_cache, shared_cache
from repro.qec import repetition_code_memory

SEED = 11


def make_task(p=0.08, max_shots=2_000, max_errors=None):
    circuit = repetition_code_memory(
        3, rounds=2, data_flip_probability=p, measure_flip_probability=p
    )
    return Task(
        circuit,
        decoder="matching",
        max_shots=max_shots,
        max_errors=max_errors,
        metadata={"d": 3, "p": p},
    )


class TestSerialPoolEquivalence:
    def test_counts_bitwise_identical(self):
        tasks = [make_task(0.05), make_task(0.10)]
        serial = collect(tasks, base_seed=SEED, workers=1, chunk_shots=500)
        pooled = collect(tasks, base_seed=SEED, workers=2, chunk_shots=500)
        for s, p in zip(serial, pooled):
            assert (s.shots, s.errors, s.chunks) == (p.shots, p.errors, p.chunks)
            assert s.task_id == p.task_id

    def test_early_stop_identical_across_workers(self):
        tasks = [make_task(0.15, max_shots=4_000, max_errors=30)]
        serial = collect(tasks, base_seed=SEED, workers=1, chunk_shots=400)
        pooled = collect(tasks, base_seed=SEED, workers=3, chunk_shots=400)
        assert (serial[0].shots, serial[0].errors) == (
            pooled[0].shots, pooled[0].errors
        )

    def test_chunk_reproducible_in_isolation(self):
        """Chunk i alone reproduces its contribution to a full run."""
        task = make_task(0.08)
        specs = plan_chunks(task, SEED, 500)
        isolated = [run_chunk(s) for s in specs]
        again = [run_chunk(s) for s in reversed(specs)]
        by_index = {r.chunk_index: r for r in again}
        for result in isolated:
            other = by_index[result.chunk_index]
            assert (result.shots, result.errors) == (other.shots, other.errors)
        stats = collect([task], base_seed=SEED, workers=1, chunk_shots=500)[0]
        assert stats.errors == sum(r.errors for r in isolated)
        assert stats.shots == sum(r.shots for r in isolated)


class TestEarlyStopping:
    def test_stops_at_max_errors_chunk_boundary(self):
        task = make_task(0.20, max_shots=10_000, max_errors=10)
        stats = collect([task], base_seed=SEED, workers=1, chunk_shots=250)[0]
        assert stats.errors >= 10
        assert stats.shots < 10_000
        assert stats.shots == stats.chunks * 250
        # The stop is the *first* crossing chunk: all but the last chunk
        # must be strictly below the threshold.
        specs = plan_chunks(task, SEED, 250)
        running = 0
        for spec in specs[: stats.chunks - 1]:
            running += run_chunk(spec).errors
        assert running < 10

    def test_no_stop_without_max_errors(self):
        task = make_task(0.20, max_shots=1_500, max_errors=None)
        stats = collect([task], base_seed=SEED, workers=1, chunk_shots=400)[0]
        assert stats.shots == 1_500


class TestResume:
    def test_resume_skips_completed_rows(self, tmp_path, monkeypatch):
        store_path = tmp_path / "results.jsonl"
        tasks = [make_task(0.05), make_task(0.10)]
        first = collect(
            tasks, base_seed=SEED, workers=1, chunk_shots=500,
            store=store_path,
        )
        assert all(not s.resumed for s in first)

        # A resumed run must not sample a single chunk.
        import repro.engine.workers as workers_module

        def forbidden(spec):
            raise AssertionError("resume re-ran a completed chunk")

        monkeypatch.setattr(workers_module, "run_chunk", forbidden)
        second = collect(
            tasks, base_seed=SEED, workers=1, chunk_shots=500,
            store=store_path,
        )
        assert all(s.resumed for s in second)
        for a, b in zip(first, second):
            assert (a.shots, a.errors, a.task_id) == (b.shots, b.errors, b.task_id)

    def test_partial_store_runs_only_missing_tasks(self, tmp_path):
        store_path = tmp_path / "results.jsonl"
        done, pending = make_task(0.05), make_task(0.10)
        collect([done], base_seed=SEED, chunk_shots=500, store=store_path)
        both = collect(
            [done, pending], base_seed=SEED, chunk_shots=500, store=store_path
        )
        assert both[0].resumed and not both[1].resumed
        rows = [json.loads(line) for line in store_path.read_text().splitlines()]
        assert len(rows) == 2

    def test_changed_seed_recollects(self, tmp_path):
        """Rows satisfy a resume only under the base seed that produced
        them — a different --seed must yield fresh, independent counts."""
        store_path = tmp_path / "results.jsonl"
        task = make_task(0.05)
        first = collect(
            [task], base_seed=SEED, chunk_shots=500, store=store_path
        )
        reseeded = collect(
            [task], base_seed=SEED + 1, chunk_shots=500, store=store_path
        )
        assert not reseeded[0].resumed
        assert reseeded[0].base_seed == SEED + 1
        # Same seed still resumes (latest row wins in the store).
        again = collect(
            [task], base_seed=SEED + 1, chunk_shots=500, store=store_path
        )
        assert again[0].resumed
        assert first[0].base_seed == SEED

    def test_store_keeps_latest_duplicate(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(TaskStats("t1", "matching", "symphase", shots=10, errors=1))
        store.append(TaskStats("t1", "matching", "symphase", shots=99, errors=9))
        assert store.load()["t1"].shots == 99

    def test_row_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        stats = TaskStats(
            "t1", "lookup", "frame",
            metadata={"d": 3}, shots=1000, errors=7, seconds=1.5, chunks=2,
        )
        store.append(stats)
        loaded = store.load()["t1"]
        assert loaded.resumed
        assert (loaded.decoder, loaded.sampler) == ("lookup", "frame")
        assert loaded.metadata == {"d": 3}
        assert (loaded.shots, loaded.errors, loaded.chunks) == (1000, 7, 2)
        assert loaded.wilson() == stats.wilson()

    def test_missing_store_loads_empty(self, tmp_path):
        assert ResultStore(tmp_path / "absent.jsonl").load() == {}

    def test_torn_trailing_line_skipped(self, tmp_path, capsys):
        """A killed run leaves a truncated last line; resume must survive
        it and simply re-collect that task."""
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(TaskStats("t1", "matching", "symphase", shots=10, errors=1))
        with open(store.path, "a") as handle:
            handle.write('{"task_id": "t2", "shots": 5')  # torn mid-row
        loaded = store.load()
        assert list(loaded) == ["t1"]
        assert "corrupt row" in capsys.readouterr().err


class TestCacheIntegration:
    def test_chunks_share_one_compiled_sampler(self):
        reset_shared_cache()
        try:
            task = make_task(0.05)
            collect([task], base_seed=SEED, workers=1, chunk_shots=250)
            cache = shared_cache()
            fingerprint = task.circuit_fingerprint()
            assert ("sampler", fingerprint, "symbolic") in cache
            assert ("decoder", fingerprint, "matching") in cache
            # 8 chunks -> 1 miss + 7 hits for each cached artifact kind.
            assert cache.hits > cache.misses
        finally:
            reset_shared_cache()

    def test_compiled_decoder_counts_match_reference(self):
        """Same seed + same sampler => same syndromes; the compiled
        matcher's bitwise-identical predictions must therefore yield
        bitwise-identical error counts through the whole engine."""
        circuit = repetition_code_memory(
            3, rounds=2,
            data_flip_probability=0.08, measure_flip_probability=0.08,
        )
        counts = {}
        for decoder in ("matching", "compiled-matching"):
            stats = collect(
                [Task(circuit, decoder=decoder, max_shots=2_000)],
                base_seed=SEED, chunk_shots=500,
            )[0]
            counts[decoder] = (stats.shots, stats.errors)
        assert counts["matching"] == counts["compiled-matching"]

    def test_decoder_alias_resolves_to_canonical_task(self):
        task = Task(repetition_code_memory(3, 2), decoder="cmwpm")
        assert task.decoder == "compiled-matching"
        canonical = Task(
            repetition_code_memory(3, 2), decoder="compiled-matching"
        )
        assert task.strong_id() == canonical.strong_id()

    def test_decoder_none_counts_raw_observable_flips(self):
        task = Task(
            repetition_code_memory(
                3, rounds=2,
                data_flip_probability=0.3,
                measure_flip_probability=0.3,
            ),
            decoder="none",
            max_shots=500,
        )
        stats = collect([task], base_seed=SEED, chunk_shots=500)[0]
        assert 0 < stats.errors <= 500


class TestWilsonAggregation:
    def test_stats_expose_wilson_interval(self):
        stats = TaskStats("t", "matching", "symphase", shots=100, errors=5)
        low, high = stats.wilson()
        assert low == pytest.approx(0.02154336145631356)
        assert high == pytest.approx(0.11175196527208817)
        assert stats.error_rate == pytest.approx(0.05)
