"""Collection orchestration: equivalence, early stop, resume, store."""

import json

import pytest

from repro.engine import (
    ExecutionOptions,
    ResultStore,
    Task,
    TaskStats,
    collect,
    plan_chunks,
    run_chunk,
)
from repro.engine.cache import reset_shared_cache, shared_cache
from repro.qec import repetition_code_memory

SEED = 11


def make_task(p=0.08, max_shots=2_000, max_errors=None):
    circuit = repetition_code_memory(
        3, rounds=2, data_flip_probability=p, measure_flip_probability=p
    )
    return Task(
        circuit,
        decoder="matching",
        max_shots=max_shots,
        max_errors=max_errors,
        metadata={"d": 3, "p": p},
    )


class TestSerialPoolEquivalence:
    def test_counts_bitwise_identical(self):
        tasks = [make_task(0.05), make_task(0.10)]
        serial = collect(tasks, base_seed=SEED, workers=1, chunk_shots=500)
        pooled = collect(tasks, base_seed=SEED, workers=2, chunk_shots=500)
        for s, p in zip(serial, pooled):
            assert (s.shots, s.errors, s.chunks) == (p.shots, p.errors, p.chunks)
            assert s.task_id == p.task_id

    def test_early_stop_identical_across_workers(self):
        tasks = [make_task(0.15, max_shots=4_000, max_errors=30)]
        serial = collect(tasks, base_seed=SEED, workers=1, chunk_shots=400)
        pooled = collect(tasks, base_seed=SEED, workers=3, chunk_shots=400)
        assert (serial[0].shots, serial[0].errors) == (
            pooled[0].shots, pooled[0].errors
        )

    def test_chunk_reproducible_in_isolation(self):
        """Chunk i alone reproduces its contribution to a full run."""
        task = make_task(0.08)
        specs = plan_chunks(task, SEED, 500)
        isolated = [run_chunk(s) for s in specs]
        again = [run_chunk(s) for s in reversed(specs)]
        by_index = {r.chunk_index: r for r in again}
        for result in isolated:
            other = by_index[result.chunk_index]
            assert (result.shots, result.errors) == (other.shots, other.errors)
        stats = collect([task], base_seed=SEED, workers=1, chunk_shots=500)[0]
        assert stats.errors == sum(r.errors for r in isolated)
        assert stats.shots == sum(r.shots for r in isolated)


class TestEarlyStopping:
    def test_stops_at_max_errors_chunk_boundary(self):
        task = make_task(0.20, max_shots=10_000, max_errors=10)
        stats = collect([task], base_seed=SEED, workers=1, chunk_shots=250)[0]
        assert stats.errors >= 10
        assert stats.shots < 10_000
        assert stats.shots == stats.chunks * 250
        # The stop is the *first* crossing chunk: all but the last chunk
        # must be strictly below the threshold.
        specs = plan_chunks(task, SEED, 250)
        running = 0
        for spec in specs[: stats.chunks - 1]:
            running += run_chunk(spec).errors
        assert running < 10

    def test_no_stop_without_max_errors(self):
        task = make_task(0.20, max_shots=1_500, max_errors=None)
        stats = collect([task], base_seed=SEED, workers=1, chunk_shots=400)[0]
        assert stats.shots == 1_500


class TestResume:
    def test_resume_skips_completed_rows(self, tmp_path, monkeypatch):
        store_path = tmp_path / "results.jsonl"
        tasks = [make_task(0.05), make_task(0.10)]
        first = collect(
            tasks, base_seed=SEED, workers=1, chunk_shots=500,
            store=store_path,
        )
        assert all(not s.resumed for s in first)

        # A resumed run must not sample a single chunk.
        import repro.engine.workers as workers_module

        def forbidden(spec):
            raise AssertionError("resume re-ran a completed chunk")

        monkeypatch.setattr(workers_module, "run_chunk", forbidden)
        second = collect(
            tasks, base_seed=SEED, workers=1, chunk_shots=500,
            store=store_path,
        )
        assert all(s.resumed for s in second)
        for a, b in zip(first, second):
            assert (a.shots, a.errors, a.task_id) == (b.shots, b.errors, b.task_id)

    def test_partial_store_runs_only_missing_tasks(self, tmp_path):
        store_path = tmp_path / "results.jsonl"
        done, pending = make_task(0.05), make_task(0.10)
        collect([done], base_seed=SEED, chunk_shots=500, store=store_path)
        both = collect(
            [done, pending], base_seed=SEED, chunk_shots=500, store=store_path
        )
        assert both[0].resumed and not both[1].resumed
        rows = [json.loads(line) for line in store_path.read_text().splitlines()]
        assert len(rows) == 2

    def test_changed_seed_recollects(self, tmp_path):
        """Rows satisfy a resume only under the base seed that produced
        them — a different --seed must yield fresh, independent counts."""
        store_path = tmp_path / "results.jsonl"
        task = make_task(0.05)
        first = collect(
            [task], base_seed=SEED, chunk_shots=500, store=store_path
        )
        reseeded = collect(
            [task], base_seed=SEED + 1, chunk_shots=500, store=store_path
        )
        assert not reseeded[0].resumed
        assert reseeded[0].base_seed == SEED + 1
        # Same seed still resumes (latest row wins in the store).
        again = collect(
            [task], base_seed=SEED + 1, chunk_shots=500, store=store_path
        )
        assert again[0].resumed
        assert first[0].base_seed == SEED

    def test_store_keeps_latest_duplicate(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(TaskStats("t1", "matching", "symphase", shots=10, errors=1))
        store.append(TaskStats("t1", "matching", "symphase", shots=99, errors=9))
        assert store.load()["t1"].shots == 99

    def test_row_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        stats = TaskStats(
            "t1", "lookup", "frame",
            metadata={"d": 3}, shots=1000, errors=7, seconds=1.5, chunks=2,
        )
        store.append(stats)
        loaded = store.load()["t1"]
        assert loaded.resumed
        assert (loaded.decoder, loaded.sampler) == ("lookup", "frame")
        assert loaded.metadata == {"d": 3}
        assert (loaded.shots, loaded.errors, loaded.chunks) == (1000, 7, 2)
        assert loaded.wilson() == stats.wilson()

    def test_pre_telemetry_row_defaults_new_fields(self, tmp_path):
        """A store written before the telemetry fields existed must
        resume cleanly, with queue-wait/hold/transport at zero."""
        path = tmp_path / "old.jsonl"
        path.write_text(
            '{"task_id": "t1", "decoder": "matching", "sampler": '
            '"symphase", "metadata": {"d": 3}, "shots": 1000, "errors": 7,'
            ' "seconds": 1.5, "chunks": 2, "base_seed": 11,'
            ' "worker_seconds": 1.2, "sample_seconds": 0.4,'
            ' "decode_seconds": 0.7, "error_rate": 0.007,'
            ' "wilson_low": 0.003, "wilson_high": 0.014}\n'
        )
        loaded = ResultStore(path).load()["t1"]
        assert loaded.resumed
        assert (loaded.shots, loaded.errors) == (1000, 7)
        assert loaded.queue_wait_seconds == 0.0
        assert loaded.hold_seconds == 0.0
        assert loaded.transport_bytes == 0

    def test_telemetry_fields_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        stats = TaskStats(
            "t1", "matching", "symphase", shots=100, errors=1,
            queue_wait_seconds=0.25, hold_seconds=0.125,
            transport_bytes=4096,
        )
        store.append(stats)
        loaded = store.load()["t1"]
        assert loaded.queue_wait_seconds == 0.25
        assert loaded.hold_seconds == 0.125
        assert loaded.transport_bytes == 4096

    def test_missing_store_loads_empty(self, tmp_path):
        assert ResultStore(tmp_path / "absent.jsonl").load() == {}

    def test_torn_trailing_line_recovered_silently(self, tmp_path, capsys):
        """A killed run leaves a truncated, newline-less last line; the
        fsync-per-append durability contract makes that the *expected*
        crash signature, so resume recovers without a warning and simply
        re-collects that task."""
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(TaskStats("t1", "matching", "symphase", shots=10, errors=1))
        with open(store.path, "a") as handle:
            handle.write('{"task_id": "t2", "shots": 5')  # torn mid-row
        loaded = store.load()
        assert list(loaded) == ["t1"]
        assert capsys.readouterr().err == ""

    def test_malformed_rows_skipped_not_raised(self, tmp_path, capsys):
        """Every flavour of corruption — raw garbage bytes, valid JSON
        that is not an object, objects missing required fields or with
        wrong types — is warned about and skipped; only the torn final
        line (no trailing newline) is silent crash recovery."""
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(TaskStats("t1", "matching", "symphase", shots=10, errors=1))
        with open(store.path, "ab") as handle:
            handle.write(b"\x00\xfe\xffgarbage bytes, not JSON\n")
            handle.write(b'["valid", "json", "wrong", "shape"]\n')
            handle.write(b'{"shots": 5, "errors": 1}\n')  # no task_id
            handle.write(b'{"task_id": "t3", "shots": "many", "errors": 0}\n')
            handle.write(
                b'{"task_id": "t4", "shots": 5, "errors": 0, '
                b'"metadata": "junk"}\n'
            )
            handle.write(b'{"task_id": "t2", "shots": 5')  # torn mid-row
        loaded = store.load()
        assert list(loaded) == ["t1"]
        # Five mid-file corruptions warn; the torn tail does not.
        assert capsys.readouterr().err.count("corrupt row") == 5

    def test_resume_after_garbage_append(self, tmp_path):
        """The regression the hardening guards: a store with trailing
        garbage still resumes its intact rows and re-collects the rest."""
        store_path = tmp_path / "results.jsonl"
        done, torn = make_task(0.05), make_task(0.10)
        collect([done], base_seed=SEED, chunk_shots=500, store=store_path)
        collect([torn], base_seed=SEED, chunk_shots=500, store=store_path)
        lines = store_path.read_bytes().splitlines(keepends=True)
        store_path.write_bytes(lines[0] + lines[1][:37] + b"\xff\x00 torn!")
        both = collect(
            [done, torn], base_seed=SEED, chunk_shots=500, store=store_path
        )
        assert both[0].resumed
        assert not both[1].resumed
        assert both[1].shots == torn.max_shots

    def test_unseeded_run_accepts_any_stored_row(self, tmp_path):
        """base_seed=None means "a sample", not a specific one: stored
        rows satisfy it regardless of the seed that produced them."""
        store_path = tmp_path / "results.jsonl"
        task = make_task(0.05)
        seeded = collect(
            [task], base_seed=SEED, chunk_shots=500, store=store_path
        )
        unseeded = collect(
            [task], base_seed=None, chunk_shots=500, store=store_path
        )
        assert unseeded[0].resumed
        assert unseeded[0].errors == seeded[0].errors

    def test_unseeded_run_records_drawn_seed(self):
        task = make_task(0.05, max_shots=500)
        stats = collect([task], base_seed=None, chunk_shots=500)[0]
        assert isinstance(stats.base_seed, int)
        # The drawn word reproduces the run exactly.
        again = collect(
            [task], base_seed=stats.base_seed, chunk_shots=500
        )[0]
        assert (again.shots, again.errors) == (stats.shots, stats.errors)


class TestExecutionOptions:
    def test_options_equivalent_to_loose_kwargs(self, tmp_path):
        task = make_task(0.10)
        loose = collect(
            [task], base_seed=SEED, workers=1, chunk_shots=400,
            store=tmp_path / "a.jsonl",
        )[0]
        typed = collect(
            [task],
            options=ExecutionOptions(
                base_seed=SEED, workers=1, chunk_shots=400,
                store=tmp_path / "b.jsonl",
            ),
        )[0]
        assert (loose.task_id, loose.shots, loose.errors, loose.chunks) == (
            typed.task_id, typed.shots, typed.errors, typed.chunks
        )

    def test_default_max_errors_policy(self):
        """Options-level max_errors applies to tasks without their own."""
        task = make_task(0.20, max_shots=10_000, max_errors=None)
        stats = collect(
            [task],
            options=ExecutionOptions(
                base_seed=SEED, chunk_shots=250, max_errors=10
            ),
        )[0]
        assert stats.errors >= 10
        assert stats.shots < 10_000

    def test_task_max_errors_wins_over_policy(self):
        task = make_task(0.20, max_shots=2_000, max_errors=150)
        with_policy = collect(
            [task],
            options=ExecutionOptions(
                base_seed=SEED, chunk_shots=250, max_errors=10
            ),
        )[0]
        without = collect([task], base_seed=SEED, chunk_shots=250)[0]
        assert (with_policy.shots, with_policy.errors) == (
            without.shots, without.errors
        )

    def test_options_alongside_loose_kwargs_rejected(self):
        """Loose kwargs must not be silently dropped when options= is
        also given — that combination is an immediate error."""
        with pytest.raises(TypeError, match="not both"):
            collect([], options=ExecutionOptions(), workers=2)
        with pytest.raises(TypeError, match="store"):
            collect([], options=ExecutionOptions(), store="out.jsonl")

    def test_explicit_default_valued_kwargs_also_rejected(self):
        """Passing a kwarg that happens to equal its default alongside
        options= still conflicts (sentinel, not value comparison)."""
        with pytest.raises(TypeError, match="base_seed"):
            collect([], options=ExecutionOptions(base_seed=7), base_seed=0)
        with pytest.raises(TypeError, match="workers"):
            collect([], options=ExecutionOptions(), workers=1)

    def test_replace_returns_patched_copy(self):
        options = ExecutionOptions(base_seed=1, workers=2)
        patched = options.replace(workers=4)
        assert patched.workers == 4
        assert patched.base_seed == 1
        assert options.workers == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionOptions(workers=0)
        with pytest.raises(ValueError):
            ExecutionOptions(chunk_shots=0)
        with pytest.raises(ValueError):
            ExecutionOptions(max_errors=0)


class TestCacheIntegration:
    def test_chunks_share_one_compiled_sampler(self):
        reset_shared_cache()
        try:
            task = make_task(0.05)
            collect([task], base_seed=SEED, workers=1, chunk_shots=250)
            cache = shared_cache()
            fingerprint = task.circuit_fingerprint()
            assert ("sampler", fingerprint, "symbolic") in cache
            assert ("decoder", fingerprint, "matching") in cache
            # 8 chunks -> 1 miss + 7 hits for each cached artifact kind.
            assert cache.hits > cache.misses
        finally:
            reset_shared_cache()

    def test_compiled_decoder_counts_match_reference(self):
        """Same seed + same sampler => same syndromes; the compiled
        matcher's bitwise-identical predictions must therefore yield
        bitwise-identical error counts through the whole engine."""
        circuit = repetition_code_memory(
            3, rounds=2,
            data_flip_probability=0.08, measure_flip_probability=0.08,
        )
        counts = {}
        for decoder in ("matching", "compiled-matching"):
            stats = collect(
                [Task(circuit, decoder=decoder, max_shots=2_000)],
                base_seed=SEED, chunk_shots=500,
            )[0]
            counts[decoder] = (stats.shots, stats.errors)
        assert counts["matching"] == counts["compiled-matching"]

    def test_decoder_alias_resolves_to_canonical_task(self):
        task = Task(repetition_code_memory(3, 2), decoder="cmwpm")
        assert task.decoder == "compiled-matching"
        canonical = Task(
            repetition_code_memory(3, 2), decoder="compiled-matching"
        )
        assert task.strong_id() == canonical.strong_id()

    def test_decoder_none_counts_raw_observable_flips(self):
        task = Task(
            repetition_code_memory(
                3, rounds=2,
                data_flip_probability=0.3,
                measure_flip_probability=0.3,
            ),
            decoder="none",
            max_shots=500,
        )
        stats = collect([task], base_seed=SEED, chunk_shots=500)[0]
        assert 0 < stats.errors <= 500


class TestWilsonAggregation:
    def test_stats_expose_wilson_interval(self):
        stats = TaskStats("t", "matching", "symphase", shots=100, errors=5)
        low, high = stats.wilson()
        assert low == pytest.approx(0.02154336145631356)
        assert high == pytest.approx(0.11175196527208817)
        assert stats.error_rate == pytest.approx(0.05)
