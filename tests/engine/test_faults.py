"""Chaos suite: injected faults never change the collected counts.

The grid runs one small sweep three ways — serial (the uninjected
reference), pooled clean, and pooled with a fault plan firing — across
both transports, and asserts the ``(shots, errors)`` counts and the
task ``strong_id``s are bitwise identical everywhere.  Recovery is
asserted through the supervisor's metrics (deaths, retries, expired
leases), and the quarantine/resume round-trip is exercised end to end
through a :class:`ResultStore`.
"""

import os

import pytest

import repro.obs as obs
from repro.engine import ChunkRunner, Task, collect, plan_chunks
from repro.engine import shm
from repro.engine.collector import ResultStore
from repro.engine.faults import (
    ENV_VAR,
    NOOP,
    FaultClause,
    FaultPlan,
    active_plan,
    install,
    plan_from_env,
    resolve_plan,
)
from repro.qec import repetition_code_memory


def make_task(max_shots=4_000, p=0.02, distance=3):
    circuit = repetition_code_memory(
        distance, rounds=3,
        data_flip_probability=p, measure_flip_probability=p,
    )
    return Task(
        circuit, decoder="compiled-matching", sampler="frame",
        max_shots=max_shots, metadata={"p": p},
    )


def counts(stats_list):
    return [(s.shots, s.errors) for s in stats_list]


# -- plan parsing and resolution ---------------------------------------------


class TestFaultPlan:
    def test_parse_single_clause(self):
        plan = FaultPlan.parse("kill@2")
        assert plan.clauses == (FaultClause("kill", 2),)

    def test_parse_arg_and_attempts(self):
        plan = FaultPlan.parse("delay@5:0.25x3")
        assert plan.clauses == (FaultClause("delay", 5, 0.25, 3),)

    def test_parse_always_fires(self):
        (clause,) = FaultPlan.parse("raise@1x*").clauses
        assert clause.attempts is None
        assert clause.fires("raise", 1, 0)
        assert clause.fires("raise", 1, 99)

    def test_parse_multiple_clauses(self):
        plan = FaultPlan.parse("kill@0, corrupt-slot@3 ,delay@2:1.5")
        assert [c.action for c in plan.clauses] == [
            "kill", "corrupt-slot", "delay"
        ]

    def test_default_fires_first_attempt_only(self):
        (clause,) = FaultPlan.parse("kill@2").clauses
        assert clause.fires("kill", 2, 0)
        assert not clause.fires("kill", 2, 1)
        assert not clause.fires("kill", 3, 0)
        assert not clause.fires("delay", 2, 0)

    def test_round_trip_str(self):
        for text in ("kill@2", "delay@5:0.25x3", "raise@1x*"):
            assert str(FaultPlan.parse(text)) == text

    def test_bad_action_rejected(self):
        with pytest.raises(ValueError, match="bad fault clause"):
            FaultPlan.parse("explode@2")

    def test_bad_chunk_rejected(self):
        with pytest.raises(ValueError, match="bad fault clause"):
            FaultPlan.parse("kill@two")

    def test_empty_string_is_noop(self):
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse("  ,  ")

    def test_env_plan(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "kill@1")
        assert plan_from_env().clauses == (FaultClause("kill", 1),)
        monkeypatch.setenv(ENV_VAR, "")
        assert plan_from_env() is NOOP

    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "kill@9")
        explicit = FaultPlan.parse("delay@1:0.1")
        assert resolve_plan(explicit) is explicit
        assert resolve_plan("raise@2").clauses[0].action == "raise"
        assert resolve_plan(None).clauses == (FaultClause("kill", 9),)

    def test_install_and_active(self):
        install("raise@1")
        try:
            assert active_plan().match("raise", 1, 0) is not None
        finally:
            install(NOOP)
        assert active_plan() is NOOP

    def test_faults_never_fire_outside_workers(self):
        """Armed plan + parent process = every hook is a noop; serial
        runs are the chaos grid's clean reference by construction."""
        from repro.engine import faults

        install("kill@0x*,raise@0x*,delay@0:5x*,corrupt-slot@0x*")
        try:
            faults.on_chunk_start(0, 0, in_worker=False)  # no SIGKILL
            faults.on_decode(0, 0, in_worker=False)  # no raise
            assert not faults.corrupt_slot(0, 0, in_worker=False)
        finally:
            install(NOOP)


# -- the chaos grid ----------------------------------------------------------

FAULT_CASES = {
    # Worker SIGKILLed right before chunk 1: its leases requeue onto
    # the replenished pool.
    "kill": dict(fault_plan="kill@1"),
    # Chunk 2 stalls past its lease deadline: the supervisor kills the
    # holder and requeues.
    "timeout": dict(fault_plan="delay@2:3.0", chunk_timeout_seconds=0.5,
                    retry_backoff=0.01),
    # Chunk 1's decode raises in-worker: the error message travels back
    # and the chunk retries.
    "raise": dict(fault_plan="raise@1", retry_backoff=0.01),
}

TRANSPORTS = ["pickle"] + (["shm"] if shm.shm_available() else [])


@pytest.mark.parametrize("transport", TRANSPORTS)
@pytest.mark.parametrize("fault", sorted(FAULT_CASES))
def test_faulted_pooled_counts_match_serial(transport, fault):
    task = make_task()
    # 500-shot chunks -> chunk indices 0..7, so every clause's target
    # chunk actually exists (chunk_shots is shared: it is part of the
    # statistical protocol, and all three runs must draw the same shots).
    serial = collect([task], base_seed=11, workers=1, chunk_shots=500)
    pooled = collect(
        [task], base_seed=11, workers=2, transport=transport,
        chunk_shots=500,
    )
    faulted = collect(
        [task], base_seed=11, workers=2, transport=transport,
        chunk_shots=500, **FAULT_CASES[fault],
    )
    assert counts(faulted) == counts(pooled) == counts(serial)
    assert (
        [s.task_id for s in faulted]
        == [s.task_id for s in pooled]
        == [s.task_id for s in serial]
    )
    assert all(s.failed_chunks == 0 for s in faulted)


@pytest.mark.skipif(not shm.shm_available(), reason="no shared memory")
def test_corrupt_slot_degrades_but_counts_hold():
    """A scribbled shm result slot only ever loses telemetry: the run
    degrades to the pickle wire and the counts still match serial."""
    obs.enable(tracing=False, metrics=True)
    task = make_task()
    serial = collect([task], base_seed=11, workers=1)
    faulted = collect(
        [task], base_seed=11, workers=2, transport="shm",
        fault_plan="corrupt-slot@1",
    )
    assert counts(faulted) == counts(serial)
    degraded = obs.registry().value("repro_transport_degraded_total")
    assert degraded == 1.0


def test_worker_death_metrics_recorded():
    obs.enable(tracing=False, metrics=True)
    task = make_task()
    stats = collect(
        [task], base_seed=3, workers=2, fault_plan="kill@1",
        retry_backoff=0.01,
    )
    assert stats[0].failed_chunks == 0
    reg = obs.registry()
    assert reg.value("repro_worker_deaths_total") >= 1.0
    assert reg.value("repro_chunk_retries_total") >= 1.0


def test_lease_expiry_metrics_recorded():
    obs.enable(tracing=False, metrics=True)
    task = make_task()
    stats = collect(
        [task], base_seed=3, workers=2, chunk_shots=500,
        fault_plan="delay@2:3.0", chunk_timeout_seconds=0.5,
        retry_backoff=0.01,
    )
    assert stats[0].failed_chunks == 0
    reg = obs.registry()
    assert reg.value("repro_lease_expired_total") >= 1.0
    assert reg.value("repro_chunk_retries_total") >= 1.0


def test_env_plan_drives_pooled_run(monkeypatch):
    """REPRO_FAULTS reaches forked workers without any options plumbing."""
    monkeypatch.setenv(ENV_VAR, "raise@1")
    obs.enable(tracing=False, metrics=True)
    task = make_task()
    faulted = collect([task], base_seed=11, workers=2, retry_backoff=0.01)
    monkeypatch.setenv(ENV_VAR, "")
    serial = collect([task], base_seed=11, workers=1)
    assert counts(faulted) == counts(serial)
    assert obs.registry().value("repro_chunk_retries_total") >= 1.0


def test_retry_replays_identical_chunk():
    """The determinism argument, directly: a retried chunk's result is
    bitwise identical to the same chunk run serially, because the RNG
    derives from (base_seed, entropy, chunk_index) — never attempt."""
    task = make_task(max_shots=2_000)
    specs = plan_chunks(task, base_seed=17, chunk_shots=500)
    with ChunkRunner(workers=1) as runner:
        reference = {r.chunk_index: (r.shots, r.errors)
                     for r in runner.run(specs)}
    with ChunkRunner(
        workers=2, fault_plan="raise@1,raise@2", retry_backoff=0.01,
    ) as runner:
        retried = {r.chunk_index: (r.shots, r.errors)
                   for r in runner.run(specs)}
    assert retried == reference


# -- quarantine and resume ---------------------------------------------------


class TestQuarantine:
    def test_poison_chunk_quarantined(self, tmp_path):
        """A chunk that fails on every attempt is given up on: a
        structured failure row lands in the store, no task row is
        written, and the run still completes with the healthy chunks'
        shots counted."""
        store_path = tmp_path / "results.jsonl"
        task = make_task()
        stats = collect(
            [task], base_seed=11, workers=2, store=store_path,
            fault_plan="raise@1x*", max_chunk_retries=1,
            retry_backoff=0.01,
        )
        assert stats[0].failed_chunks == 1
        assert stats[0].shots == task.max_shots - 2_000  # one chunk lost

        store = ResultStore(store_path)
        failures = store.load_failures()
        assert len(failures) == 1
        assert failures[0]["chunk_index"] == 1
        assert failures[0]["attempts"] == 2  # initial try + one retry
        assert "FaultInjected" in failures[0]["error"]
        # No task row: the task is incomplete and must not resume as done.
        assert store.load() == {}

    def test_resume_reattempts_quarantined_chunks(self, tmp_path):
        """Rerunning the same store with the fault gone completes the
        task and matches the serial reference exactly."""
        store_path = tmp_path / "results.jsonl"
        task = make_task()
        poisoned = collect(
            [task], base_seed=11, workers=2, store=store_path,
            fault_plan="raise@1x*", max_chunk_retries=1,
            retry_backoff=0.01,
        )
        assert poisoned[0].failed_chunks == 1

        healed = collect(
            [task], base_seed=11, workers=2, store=store_path,
            fault_plan=NOOP,
        )
        serial = collect([task], base_seed=11, workers=1)
        assert counts(healed) == counts(serial)
        assert healed[0].failed_chunks == 0
        assert not healed[0].resumed

        # Third run resumes off the now-complete task row.
        resumed = collect([task], base_seed=11, workers=2, store=store_path)
        assert resumed[0].resumed
        assert counts(resumed) == counts(serial)

    def test_quarantine_gauge_recorded(self, tmp_path):
        obs.enable(tracing=False, metrics=True)
        collect(
            [make_task()], base_seed=11, workers=2,
            store=tmp_path / "r.jsonl", fault_plan="raise@1x*",
            max_chunk_retries=0, retry_backoff=0.01,
        )
        assert obs.registry().value("repro_chunks_quarantined") == 1.0


class TestDurability:
    def test_appends_reach_disk_immediately(self, tmp_path):
        """Rows are flushed + fsynced per append: a reader (or a
        post-crash resume) sees every completed row without waiting for
        interpreter exit."""
        store_path = tmp_path / "results.jsonl"
        store = ResultStore(store_path)
        task = make_task(max_shots=1_000)
        stats = collect([task], base_seed=5, store=store)
        # Read through a fresh fd while the writing handle stays open.
        fd = os.open(store_path, os.O_RDONLY)
        try:
            on_disk = os.read(fd, 1 << 20).decode()
        finally:
            os.close(fd)
        assert on_disk.endswith("\n")
        assert str(stats[0].shots) and '"shots": 1000' in on_disk
