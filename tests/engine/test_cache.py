"""SamplerCache LRU semantics and build-on-miss accounting."""

import pytest

from repro.engine import SamplerCache
from repro.engine.cache import reset_shared_cache, shared_cache


class TestSamplerCache:
    def test_miss_builds_then_hit_reuses(self):
        cache = SamplerCache(capacity=4)
        builds = []

        def build():
            builds.append(1)
            return object()

        first = cache.get_or_build("k", build)
        second = cache.get_or_build("k", build)
        assert first is second
        assert len(builds) == 1
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_lru_evicts_least_recently_used(self):
        cache = SamplerCache(capacity=2)
        cache.get_or_build("a", lambda: "A")
        cache.get_or_build("b", lambda: "B")
        cache.get_or_build("a", lambda: "A")  # refresh a; b is now LRU
        cache.get_or_build("c", lambda: "C")  # evicts b
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert len(cache) == 2

    def test_evicted_entry_rebuilds(self):
        cache = SamplerCache(capacity=1)
        cache.get_or_build("a", lambda: "first")
        cache.get_or_build("b", lambda: "B")
        assert cache.get_or_build("a", lambda: "rebuilt") == "rebuilt"

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SamplerCache(capacity=0)

    def test_clear_resets_counters(self):
        cache = SamplerCache()
        cache.get_or_build("a", lambda: 1)
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}


class TestSharedCache:
    def test_process_global_singleton(self):
        reset_shared_cache()
        try:
            assert shared_cache() is shared_cache()
        finally:
            reset_shared_cache()

    def test_reset_drops_instance(self):
        first = shared_cache()
        reset_shared_cache()
        try:
            assert shared_cache() is not first
        finally:
            reset_shared_cache()
