"""Per-chunk timeline invariants from the instrumented scheduler.

These tests exercise the telemetry the scheduler attaches to every
``ChunkResult`` when metrics are on: the submit→start→finish→receive→
yield stamps must be monotone, the derived queue-wait/hold seconds
non-negative, and none of it may leak into runs with telemetry off.
"""

import pytest

import repro.obs as obs
from repro.engine import ChunkRunner, plan_chunks
from repro.engine.tasks import Task
from repro.qec import repetition_code_memory


def make_specs(n_chunks=6, chunk_shots=200):
    circuit = repetition_code_memory(
        3, rounds=2, data_flip_probability=0.05, measure_flip_probability=0.05
    )
    task = Task(
        circuit, decoder="compiled-matching",
        max_shots=n_chunks * chunk_shots,
    )
    return plan_chunks(task, 3, chunk_shots)


def run_with_telemetry(workers, specs):
    obs.enable(tracing=True, metrics=True)
    with ChunkRunner(workers=workers) as runner:
        return list(runner.run(specs))


class TestTelemetryOff:
    def test_results_carry_no_telemetry(self):
        with ChunkRunner(workers=1) as runner:
            results = list(runner.run(make_specs()))
        for result in results:
            assert result.queue_wait_seconds == 0.0
            assert result.hold_seconds == 0.0
            assert result.spec_bytes == 0
            assert result.result_bytes == 0
            assert result.spans == ()
            assert result.metrics == ()
        assert obs.drain_timelines() == []

    def test_pooled_off_records_no_timelines(self):
        with ChunkRunner(workers=2) as runner:
            list(runner.run(make_specs()))
        assert obs.drain_timelines() == []


@pytest.mark.parametrize("workers", [1, 2])
class TestTimelineInvariants:
    def test_one_timeline_per_chunk(self, workers):
        specs = make_specs()
        run_with_telemetry(workers, specs)
        timelines = obs.drain_timelines()
        assert sorted(t.chunk_index for t in timelines) == list(
            range(len(specs))
        )
        assert all(t.task_id == specs[0].task_id for t in timelines)
        assert all(t.shots == specs[0].shots for t in timelines)

    def test_stamps_monotone(self, workers):
        run_with_telemetry(workers, make_specs())
        for t in obs.drain_timelines():
            assert t.submitted_at <= t.started_at <= t.finished_at
            assert t.finished_at <= t.received_at <= t.yielded_at

    def test_derived_seconds_non_negative_and_consistent(self, workers):
        run_with_telemetry(workers, make_specs())
        for t in obs.drain_timelines():
            for value in (
                t.queue_wait_seconds, t.worker_seconds,
                t.return_seconds, t.hold_seconds,
            ):
                assert value >= 0.0
            parts = (
                t.queue_wait_seconds + t.worker_seconds
                + t.return_seconds + t.hold_seconds
            )
            assert parts == pytest.approx(t.latency_seconds, abs=1e-9)

    def test_results_mirror_timelines(self, workers):
        results = run_with_telemetry(workers, make_specs())
        by_chunk = {t.chunk_index: t for t in obs.drain_timelines()}
        for result in results:
            timeline = by_chunk[result.chunk_index]
            assert result.queue_wait_seconds == pytest.approx(
                timeline.queue_wait_seconds
            )
            assert result.hold_seconds == pytest.approx(
                timeline.hold_seconds
            )
            # Worker piggyback payloads are consumed by the scheduler,
            # never re-yielded to the caller.
            assert result.spans == ()
            assert result.metrics == ()

    def test_aggregate_counters_match_results(self, workers):
        specs = make_specs()
        results = run_with_telemetry(workers, specs)
        reg = obs.registry()
        shots = sum(
            metric.value
            for _, metric in reg.select("repro_shots_total")
        )
        assert shots == sum(r.shots for r in results)
        queue_wait = reg.value("repro_queue_wait_seconds_total")
        assert queue_wait == pytest.approx(
            sum(r.queue_wait_seconds for r in results)
        )


class TestTransportAccounting:
    def test_serial_run_has_no_transport(self):
        results = run_with_telemetry(1, make_specs())
        assert all(r.spec_bytes == 0 for r in results)
        assert all(r.result_bytes == 0 for r in results)
        assert obs.registry().value("repro_transport_spec_bytes_total") is None

    def test_pooled_run_counts_bytes_both_ways(self):
        results = run_with_telemetry(2, make_specs())
        assert all(r.spec_bytes > 0 for r in results)
        assert all(r.result_bytes > 0 for r in results)
        reg = obs.registry()
        assert reg.value("repro_transport_spec_bytes_total") == sum(
            r.spec_bytes for r in results
        )
        assert reg.value("repro_transport_result_bytes_total") == sum(
            r.result_bytes for r in results
        )

    def test_pooled_metrics_arrive_from_worker_pids(self):
        run_with_telemetry(2, make_specs())
        import os

        pids = obs.registry().label_values("repro_chunks_total", "pid")
        assert pids  # at least one worker reported
        assert str(os.getpid()) not in pids
